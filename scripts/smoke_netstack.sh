#!/usr/bin/env sh
# End-to-end netstack smoke test: boots a real SMOKE_N-node cluster from
# the release `btnode` binary (SMOKE_N OS processes talking TCP on
# loopback — not the in-process test harness), waits for every node to
# decide, and feeds node 0's JSONL trace through the release `btreport`
# binary.
#
# Exercises the full shipped surface: CLI parsing, listener binding,
# cross-process dial/handshake/ack flow, decision detection, trace
# writing, report rendering — and the admin telemetry endpoints, scraped
# mid-run with `btstat --once` (no curl needed). Since the event-driven
# rewrite it also guards the thread budget: each node runs its sockets on
# ONE poll-loop thread, so a node's OS thread count must stay constant in
# cluster size (the old thread-per-connection stack needed ~2+2(n-1)).
# Skips (exit 0, with a note) where the sandbox forbids binding loopback
# sockets.
#
# Usage: scripts/smoke_netstack.sh
#   SMOKE_N=50 scripts/smoke_netstack.sh   # nightly-sized cluster
set -eu

cd "$(dirname "$0")/.."

# Cluster size: default 4 keeps the gate fast; nightly runs set 50 to
# prove a full-size cluster decides with O(n) threads in total.
SMOKE_N=${SMOKE_N:-4}
if [ "$SMOKE_N" -lt 4 ]; then
    echo "SMOKE_N must be at least 4 (malicious protocol, k=1)" >&2
    exit 2
fi
# Ceiling on threads per btnode process, independent of SMOKE_N: main +
# poll loop + admin server + slack for the runtime. The pre-rewrite stack
# needed 2+2(n-1) socket threads alone, so it fails this even at n=4.
MAX_THREADS_PER_NODE=8

BTNODE=target/release/btnode
BTREPORT=target/release/btreport
BTSTAT=target/release/btstat
if [ ! -x "$BTNODE" ] || [ ! -x "$BTREPORT" ] || [ ! -x "$BTSTAT" ]; then
    echo "==> building release binaries for the smoke run"
    cargo build --release -q --workspace
fi

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# Derive a port block from the PID so parallel runs rarely collide; a
# bind failure is reported by btnode and treated as a skip below.
BASE=$((21000 + $$ % 20000))
PEERS=""
i=0
while [ "$i" -lt "$SMOKE_N" ]; do
    PEERS="$PEERS --peer 127.0.0.1:$((BASE + i))"
    i=$((i + 1))
done

# Admin (telemetry) ports sit just above the protocol block.
ADMIN0=$((BASE + SMOKE_N))
ADMIN1=$((BASE + SMOKE_N + 1))

boot_node() {
    i=$1
    shift
    # shellcheck disable=SC2086 # PEERS and extra flags word-split on purpose
    "$BTNODE" --id "$i" --n "$SMOKE_N" --k 1 --proto malicious --input 1 \
        --listen "127.0.0.1:$((BASE + i))" $PEERS \
        --seed 42 --timeout 60 "$@" \
        >"$TMP/node$i.log" 2>&1 &
    PIDS="$PIDS $!"
}

# Stage the boot: with two nodes held back the protocol cannot decide
# (it needs n-k = SMOKE_N-1 participants), so the cluster is guaranteed
# to still be running when btstat scrapes it — a genuine mid-run scrape,
# not a race against the decision.
LAST=$((SMOKE_N - 1))
PENULT=$((SMOKE_N - 2))
echo "==> booting nodes 0-$((PENULT - 1)) (malicious protocol, n=$SMOKE_N k=1, ports $BASE-$((BASE + LAST)))"
boot_node 0 --jsonl "$TMP/node0.jsonl" --admin "$ADMIN0"
boot_node 1 --admin "$ADMIN1"
i=2
while [ "$i" -lt "$PENULT" ]; do
    boot_node "$i"
    i=$((i + 1))
done
sleep 1

if grep -q "cannot bind" "$TMP"/node*.log 2>/dev/null; then
    echo "==> skipping: sandbox forbids binding loopback sockets"
    exit 0
fi

echo "==> scraping the live admin endpoints with btstat --once"
if ! "$BTSTAT" --once \
    --node "127.0.0.1:$ADMIN0" --node "127.0.0.1:$ADMIN1" \
    --expect bt_frames_sent_total,bt_msgs_sent_total,bt_msgs_delivered_total,bt_send_queue_depth,bt_ack_rtt_us,bt_msg_encode_us,bt_msg_decode_us,bt_loop_ticks_total,bt_poll_wakeups_total \
    >"$TMP/btstat.log" 2>&1; then
    echo "==> FAIL: btstat scrape failed or expected metric families missing" >&2
    cat "$TMP/btstat.log" >&2
    exit 1
fi
cat "$TMP/btstat.log"

# The O(n)-threads guard: with every connection multiplexed onto one
# poll loop, a node's thread count must not scale with cluster size.
# Sampled mid-run, while each booted node holds live connections to all
# its booted peers. /proc is Linux-only; elsewhere the guard is skipped.
TOTAL_THREADS=0
GUARDED=0
for pid in $PIDS; do
    if [ -r "/proc/$pid/status" ]; then
        threads=$(awk '/^Threads:/ {print $2}' "/proc/$pid/status")
        TOTAL_THREADS=$((TOTAL_THREADS + threads))
        GUARDED=$((GUARDED + 1))
        if [ "$threads" -gt "$MAX_THREADS_PER_NODE" ]; then
            echo "==> FAIL: a node runs $threads threads (cap $MAX_THREADS_PER_NODE); the netstack is no longer O(n) in total threads" >&2
            exit 1
        fi
    fi
done
if [ "$GUARDED" -gt 0 ]; then
    echo "==> thread guard: $TOTAL_THREADS threads across $GUARDED nodes (cap $MAX_THREADS_PER_NODE/node)"
fi

echo "==> booting nodes $PENULT-$LAST; the cluster can now decide"
boot_node "$PENULT"
boot_node "$LAST"

FAILED=0
for pid in $PIDS; do
    wait "$pid" || FAILED=1
done
PIDS=""

if grep -q "cannot bind" "$TMP"/node*.log; then
    echo "==> skipping: sandbox forbids binding loopback sockets"
    exit 0
fi

if [ "$FAILED" != 0 ]; then
    echo "==> FAIL: a node exited non-zero; logs follow" >&2
    cat "$TMP"/node*.log >&2
    exit 1
fi

i=0
while [ "$i" -lt "$SMOKE_N" ]; do
    if ! grep -q "decided" "$TMP/node$i.log"; then
        echo "==> FAIL: node $i never decided; log follows" >&2
        cat "$TMP/node$i.log" >&2
        exit 1
    fi
    i=$((i + 1))
done

echo "==> all $SMOKE_N nodes decided; rendering node 0's trace with btreport"
if ! "$BTREPORT" "$TMP/node0.jsonl" | grep -q "decided"; then
    echo "==> FAIL: btreport output does not mention a decision" >&2
    "$BTREPORT" "$TMP/node0.jsonl" >&2 || true
    exit 1
fi

echo "==> netstack smoke test passed (n=$SMOKE_N)"
