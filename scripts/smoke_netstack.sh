#!/usr/bin/env sh
# End-to-end netstack smoke test: boots a real 4-node cluster from the
# release `btnode` binary (4 OS processes talking TCP on loopback — not
# the in-process test harness), waits for every node to decide, and feeds
# node 0's JSONL trace through the release `btreport` binary.
#
# Exercises the full shipped surface: CLI parsing, listener binding,
# cross-process dial/handshake/ack flow, decision detection, trace
# writing, report rendering — and the admin telemetry endpoints, scraped
# mid-run with `btstat --once` (no curl needed). Skips (exit 0, with a
# note) where the sandbox forbids binding loopback sockets.
#
# Usage: scripts/smoke_netstack.sh
set -eu

cd "$(dirname "$0")/.."

BTNODE=target/release/btnode
BTREPORT=target/release/btreport
BTSTAT=target/release/btstat
if [ ! -x "$BTNODE" ] || [ ! -x "$BTREPORT" ] || [ ! -x "$BTSTAT" ]; then
    echo "==> building release binaries for the smoke run"
    cargo build --release -q --workspace
fi

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# Derive a port block from the PID so parallel runs rarely collide; a
# bind failure is reported by btnode and treated as a skip below.
BASE=$((21000 + $$ % 20000))
PEERS="--peer 127.0.0.1:$BASE --peer 127.0.0.1:$((BASE + 1)) \
--peer 127.0.0.1:$((BASE + 2)) --peer 127.0.0.1:$((BASE + 3))"

# Admin (telemetry) ports sit just above the protocol block.
ADMIN0=$((BASE + 4))
ADMIN1=$((BASE + 5))

boot_node() {
    i=$1
    shift
    # shellcheck disable=SC2086 # PEERS and extra flags word-split on purpose
    "$BTNODE" --id "$i" --n 4 --k 1 --proto malicious --input 1 \
        --listen "127.0.0.1:$((BASE + i))" $PEERS \
        --seed 42 --timeout 30 "$@" \
        >"$TMP/node$i.log" 2>&1 &
    PIDS="$PIDS $!"
}

# Stage the boot: with only 2 of 4 nodes up the protocol cannot decide
# (it needs n-k = 3 participants), so the cluster is guaranteed to still
# be running when btstat scrapes it — a genuine mid-run scrape, not a
# race against the decision.
echo "==> booting nodes 0-1 (malicious protocol, n=4 k=1, ports $BASE-$((BASE + 3)))"
boot_node 0 --jsonl "$TMP/node0.jsonl" --admin "$ADMIN0"
boot_node 1 --admin "$ADMIN1"
sleep 1

if grep -q "cannot bind" "$TMP"/node0.log "$TMP"/node1.log 2>/dev/null; then
    echo "==> skipping: sandbox forbids binding loopback sockets"
    exit 0
fi

echo "==> scraping the live admin endpoints with btstat --once"
if ! "$BTSTAT" --once \
    --node "127.0.0.1:$ADMIN0" --node "127.0.0.1:$ADMIN1" \
    --expect bt_frames_sent_total,bt_msgs_sent_total,bt_msgs_delivered_total,bt_send_queue_depth,bt_ack_rtt_us,bt_msg_encode_us,bt_msg_decode_us \
    >"$TMP/btstat.log" 2>&1; then
    echo "==> FAIL: btstat scrape failed or expected metric families missing" >&2
    cat "$TMP/btstat.log" >&2
    exit 1
fi
cat "$TMP/btstat.log"

echo "==> booting nodes 2-3; the cluster can now decide"
boot_node 2
boot_node 3

FAILED=0
for pid in $PIDS; do
    wait "$pid" || FAILED=1
done
PIDS=""

if grep -q "cannot bind" "$TMP"/node*.log; then
    echo "==> skipping: sandbox forbids binding loopback sockets"
    exit 0
fi

if [ "$FAILED" != 0 ]; then
    echo "==> FAIL: a node exited non-zero; logs follow" >&2
    cat "$TMP"/node*.log >&2
    exit 1
fi

for i in 0 1 2 3; do
    if ! grep -q "decided" "$TMP/node$i.log"; then
        echo "==> FAIL: node $i never decided; log follows" >&2
        cat "$TMP/node$i.log" >&2
        exit 1
    fi
done

echo "==> all 4 nodes decided; rendering node 0's trace with btreport"
if ! "$BTREPORT" "$TMP/node0.jsonl" | grep -q "decided"; then
    echo "==> FAIL: btreport output does not mention a decision" >&2
    "$BTREPORT" "$TMP/node0.jsonl" >&2 || true
    exit 1
fi

echo "==> netstack smoke test passed"
