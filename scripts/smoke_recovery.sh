#!/usr/bin/env sh
# End-to-end crash-recovery smoke test: boots a 5-node release cluster
# under `btnode --supervise` (each node a supervisor parent plus a worker
# child holding the socket), SIGKILLs two workers mid-run, and requires
# the supervisors to restart them from their write-ahead logs — same
# ports, no equivocation — with every node still reaching the same
# decision.
#
# This is the shipped crash story exercised for real: a `kill -9` is not
# a polite shutdown hook; whatever the worker was doing, the WAL plus
# log-before-send must be enough to bring it back as the same process.
# Skips (exit 0, with a note) where the sandbox forbids loopback sockets
# or lacks pgrep.
#
# Usage: scripts/smoke_recovery.sh
set -eu

cd "$(dirname "$0")/.."

BTNODE=target/release/btnode
if [ ! -x "$BTNODE" ]; then
    echo "==> building release binaries for the smoke run"
    cargo build --release -q --workspace
fi

if ! command -v pgrep >/dev/null 2>&1; then
    echo "==> skipping: pgrep unavailable (needed to find worker pids)"
    exit 0
fi

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        # The supervisors' workers die with their parents' process group.
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

mkdir -p "$TMP/wal"

# Derive a port block from the PID so parallel runs rarely collide; a
# bind failure is reported by btnode and treated as a skip below.
BASE=$((23000 + $$ % 20000))
PEERS="--peer 127.0.0.1:$BASE --peer 127.0.0.1:$((BASE + 1)) \
--peer 127.0.0.1:$((BASE + 2)) --peer 127.0.0.1:$((BASE + 3)) \
--peer 127.0.0.1:$((BASE + 4))"

echo "==> booting 5 supervised btnode processes (fail-stop, n=5 k=2, ports $BASE-$((BASE + 4)))"
for i in 0 1 2 3 4; do
    # shellcheck disable=SC2086 # PEERS is intentionally word-split
    "$BTNODE" --id "$i" --n 5 --k 2 --proto failstop --input 1 \
        --listen "127.0.0.1:$((BASE + i))" $PEERS \
        --seed 7 --timeout 30 \
        --wal "$TMP/wal/node$i.wal" --snapshot-every 8 --supervise \
        >"$TMP/node$i.log" 2>&1 &
    eval "SUP$i=$!"
    PIDS="$PIDS $!"
done

# Let the cluster boot and start (possibly finish) consensus; the workers
# stay alive through their post-decision grace window, so the kills below
# always land on a live worker.
sleep 0.15

echo "==> SIGKILLing the workers of nodes 3 and 4 (supervisors stay up)"
KILLED=0
for i in 3 4; do
    sup=$(eval echo "\$SUP$i")
    workers=$(pgrep -P "$sup" || true)
    if [ -n "$workers" ]; then
        # shellcheck disable=SC2086 # pid list is intentionally word-split
        kill -9 $workers 2>/dev/null && KILLED=$((KILLED + 1))
    fi
done

FAILED=0
for pid in $PIDS; do
    wait "$pid" || FAILED=1
done
PIDS=""

if grep -q "cannot bind" "$TMP"/node*.log; then
    echo "==> skipping: sandbox forbids binding loopback sockets"
    exit 0
fi

if [ "$FAILED" != 0 ]; then
    echo "==> FAIL: a node exited non-zero; logs follow" >&2
    cat "$TMP"/node*.log >&2
    exit 1
fi

for i in 0 1 2 3 4; do
    if ! grep -q "decided" "$TMP/node$i.log"; then
        echo "==> FAIL: node $i never decided; log follows" >&2
        cat "$TMP/node$i.log" >&2
        exit 1
    fi
done

if [ "$KILLED" = 0 ]; then
    echo "==> FAIL: no worker was killed — the recovery path went unexercised" >&2
    exit 1
fi
RESTARTS=$(grep -c "restarting from WAL" "$TMP"/node3.log "$TMP"/node4.log | \
    awk -F: '{ s += $2 } END { print s }')
if [ "$RESTARTS" = 0 ]; then
    echo "==> FAIL: workers were killed but no supervisor restarted one; logs follow" >&2
    cat "$TMP"/node3.log "$TMP"/node4.log >&2
    exit 1
fi

# Agreement across the crash: every node decided the same value.
VALUES=$(sed -n 's/.*decided \([A-Za-z0-9]\{1,\}\).*/\1/p' "$TMP"/node*.log | sort -u)
if [ -z "$VALUES" ] || [ "$(echo "$VALUES" | wc -l)" != 1 ]; then
    echo "==> FAIL: nodes disagree across the restart: $VALUES" >&2
    cat "$TMP"/node*.log >&2
    exit 1
fi

echo "==> recovery smoke test passed ($KILLED worker(s) SIGKILLed, $RESTARTS restart(s), unanimous '$VALUES')"

# ---- corruption leg: flip a WAL byte, SIGKILL, demand amnesia + quorum
# state transfer -------------------------------------------------------
#
# A second cluster exercises the *storage* failure story: node 3's WAL
# gets one mid-log byte overwritten (offset 8 is the first record's body
# tag, so the frame stays intact but its CRC breaks), then its worker is
# SIGKILLed. The supervisor restarts it with --expect-wal; the reopened
# log must be detected as unsafely damaged — never replayed — and the
# node must boot amnesiac, fetch matching state from k+1 peers, and
# rejoin as a learner, with the whole cluster still unanimous and
# equivocation-free.
if ! command -v dd >/dev/null 2>&1; then
    echo "==> skipping corruption leg: dd unavailable"
    exit 0
fi

mkdir -p "$TMP/wal2"
BASE2=$((BASE + 5))
PEERS2="--peer 127.0.0.1:$BASE2 --peer 127.0.0.1:$((BASE2 + 1)) \
--peer 127.0.0.1:$((BASE2 + 2)) --peer 127.0.0.1:$((BASE2 + 3)) \
--peer 127.0.0.1:$((BASE2 + 4))"

echo "==> corruption leg: booting 5 supervised btnode processes (ports $BASE2-$((BASE2 + 4)))"
for i in 0 1 2 3 4; do
    # No snapshots: compaction must not rewrite the file out from under
    # the byte flip below.
    # shellcheck disable=SC2086 # PEERS2 is intentionally word-split
    "$BTNODE" --id "$i" --n 5 --k 2 --proto failstop --input 1 \
        --listen "127.0.0.1:$((BASE2 + i))" $PEERS2 \
        --seed 11 --timeout 30 \
        --wal "$TMP/wal2/node$i.wal" --snapshot-every 0 --supervise \
        >"$TMP/c-node$i.log" 2>&1 &
    eval "CSUP$i=$!"
    PIDS="$PIDS $!"
done

sleep 0.15

# Flip before killing: the live worker only ever appends, so the damage
# sits unnoticed until the restarted incarnation reopens the log — no
# race against the supervisor's restart backoff.
echo "==> overwriting one mid-log byte in node 3's WAL, then SIGKILLing its worker"
printf '\245' | dd of="$TMP/wal2/node3.wal" bs=1 seek=8 count=1 conv=notrunc 2>/dev/null
KILLED=0
workers=$(pgrep -P "$CSUP3" || true)
if [ -n "$workers" ]; then
    # shellcheck disable=SC2086 # pid list is intentionally word-split
    kill -9 $workers 2>/dev/null && KILLED=1
fi

FAILED=0
for pid in $PIDS; do
    wait "$pid" || FAILED=1
done
PIDS=""

if grep -q "cannot bind" "$TMP"/c-node*.log; then
    echo "==> skipping corruption leg: sandbox forbids binding loopback sockets"
    exit 0
fi
if [ "$KILLED" = 0 ]; then
    echo "==> FAIL: node 3's worker was not killed — the corruption path went unexercised" >&2
    exit 1
fi
if [ "$FAILED" != 0 ]; then
    echo "==> FAIL: a corruption-leg node exited non-zero; logs follow" >&2
    cat "$TMP"/c-node*.log >&2
    exit 1
fi

if ! grep -q "booted amnesiac" "$TMP/c-node3.log"; then
    echo "==> FAIL: node 3 reopened a corrupt WAL without going amnesiac; log follows" >&2
    cat "$TMP/c-node3.log" >&2
    exit 1
fi
if ! grep -q "completed quorum state transfer" "$TMP/c-node3.log"; then
    echo "==> FAIL: node 3 went amnesiac but never completed a state transfer; log follows" >&2
    cat "$TMP/c-node3.log" >&2
    exit 1
fi
CORRUPTIONS=$(sed -n 's/.*wal_corruptions=\([0-9]\{1,\}\).*/\1/p' "$TMP/c-node3.log" | tail -1)
if [ -z "$CORRUPTIONS" ] || [ "$CORRUPTIONS" = 0 ]; then
    echo "==> FAIL: node 3's summary shows no WAL corruption detected; log follows" >&2
    cat "$TMP/c-node3.log" >&2
    exit 1
fi
if ! grep -q "state_transferred=true" "$TMP/c-node3.log"; then
    echo "==> FAIL: node 3's summary shows no completed state transfer; log follows" >&2
    cat "$TMP/c-node3.log" >&2
    exit 1
fi

# The amnesiac muzzle's whole point: no node saw a conflicting re-send.
if sed -n 's/.*equivocations=\([0-9]\{1,\}\).*/\1/p' "$TMP"/c-node*.log | grep -qv '^0$'; then
    echo "==> FAIL: equivocation observed across the corrupt-WAL restart; logs follow" >&2
    cat "$TMP"/c-node*.log >&2
    exit 1
fi

for i in 0 1 2 3 4; do
    if ! grep -q "decided" "$TMP/c-node$i.log"; then
        echo "==> FAIL: corruption-leg node $i never decided; log follows" >&2
        cat "$TMP/c-node$i.log" >&2
        exit 1
    fi
done
VALUES=$(sed -n 's/.*decided \([A-Za-z0-9]\{1,\}\).*/\1/p' "$TMP"/c-node*.log | sort -u)
if [ -z "$VALUES" ] || [ "$(echo "$VALUES" | wc -l)" != 1 ]; then
    echo "==> FAIL: nodes disagree across the corrupt-WAL restart: $VALUES" >&2
    cat "$TMP"/c-node*.log >&2
    exit 1
fi

echo "==> corruption leg passed (WAL flip detected $CORRUPTIONS time(s), quorum transfer completed, unanimous '$VALUES')"
