#!/usr/bin/env sh
# The full local gate: formatting, lints, and the test suite.
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo build --release"
cargo build --release --workspace

FUZZTMP=$(mktemp -d)
trap 'rm -rf "$FUZZTMP"' EXIT INT TERM

echo "==> metrics overhead bench (fast config, 5% budget)"
# The committed BENCH_metrics.json documents the measured overhead
# (~0.5%); this fast re-run refuses the gate if instrumentation cost
# regresses past the acceptance budget. Output goes to the temp dir so
# the committed baseline is only refreshed deliberately.
target/release/metrics_overhead "$FUZZTMP/BENCH_metrics.json" \
    --frames 300000 --rounds 3 --max-overhead 5

echo "==> large-n smoke (n=1024 malicious slice, budgeted)"
# One seeded Figure 2 trial at n=1024 with a 1M-delivery cap: must stay
# safe and finish inside the wall budget — the delivery-engine perf gate.
target/release/large_n_smoke 1000000 60

echo "==> phases sweep smoke (--quick) + BENCH_phases.json schema check"
# A shrunken sweep exercises the full harness path; the schema check then
# runs against both the fresh output and the committed artifact.
target/release/phases --quick "$FUZZTMP/BENCH_phases_quick.json"
if ! command -v jq > /dev/null 2>&1; then
    echo "    (jq not installed; schema check skipped)"
fi
for f in "$FUZZTMP/BENCH_phases_quick.json" BENCH_phases.json; do
    command -v jq > /dev/null 2>&1 || break
    jq -e '
        (.e3_simple_phases | length) >= 2
        and (.e4_malicious_phases | length) >= 2
        and (.e8_decision_lag | length) >= 2
        and (.large_n_sweep.malicious | length) >= 1
        and (.large_n_sweep.simple | length) >= 1
        and ([.large_n_sweep.malicious[], .large_n_sweep.simple[]
              | has("n") and has("k") and has("l") and has("wall_ms")
              and has("ns_per_delivery") and has("phases")
              and has("eq13_bound") and .disagreements == 0] | all)
    ' "$f" > /dev/null || { echo "schema check failed: $f"; exit 1; }
done

echo "==> btfuzz self-test (injected defect: find, shrink, replay)"
target/release/btfuzz --inject --out "$FUZZTMP/inject-repro.jsonl"

echo "==> btfuzz clean sweep (30s budget)"
# The netstack cross-checks inside skip themselves where the sandbox
# forbids loopback sockets; the simulated sweep always runs.
target/release/btfuzz --budget 30 --out "$FUZZTMP/repro.jsonl"

echo "==> btfuzz netstack stress leg (30s budget, clusters up to n=50)"
# Loopback clusters up the size ladder under healing partitions and
# seeded crash-restarts — the event-loop scale gate. Skips internally
# (with a note) where the sandbox forbids loopback sockets.
target/release/btfuzz --netstack-stress --budget 30 \
    --out "$FUZZTMP/stress-repro.json"

echo "==> btfuzz storage-fault leg (15s budget, corrupt-WAL recovery)"
# Seeded byte flips armed in a crashed node's WAL: every case must
# detect the corruption, boot amnesiac, and recover by quorum state
# transfer with zero equivocations. Skips internally (with a note) where
# the sandbox forbids loopback sockets.
target/release/btfuzz --storage --budget 15 \
    --out "$FUZZTMP/storage-repro.json"

echo "==> netstack smoke test (release btnode cluster, end to end)"
# Skips internally (with a note) where the sandbox forbids sockets.
sh scripts/smoke_netstack.sh

echo "==> crash-recovery smoke test (SIGKILL workers, restart from WAL; corrupt-WAL leg)"
# Skips internally where the sandbox forbids sockets or lacks pgrep/dd.
sh scripts/smoke_recovery.sh

echo "==> replicated-log smoke test (btnode rsm cluster, btload, btstat)"
# Skips internally (with a note) where the sandbox forbids sockets.
sh scripts/smoke_rsm.sh

echo "==> all checks passed"
