#!/usr/bin/env sh
# The full local gate: formatting, lints, and the test suite.
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo build --release"
cargo build --release

echo "==> netstack smoke test (release btnode cluster, end to end)"
# Skips internally (with a note) where the sandbox forbids sockets.
sh scripts/smoke_netstack.sh

echo "==> all checks passed"
