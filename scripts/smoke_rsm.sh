#!/usr/bin/env sh
# End-to-end replicated-log smoke test: boots a real 4-node `btnode
# --proto rsm` cluster (4 OS processes talking TCP on loopback, WALs on
# disk), drives committed client load through the length-prefixed client
# API with the release `btload` binary, and scrapes the live rsm metric
# families — slots, commit latency, batching, pipeline depth — off the
# admin endpoint with `btstat --once`.
#
# Exercises the full shipped surface: CLI parsing, replica boot, the
# client service (admission, exactly-once retries), multi-decree
# commitment, cross-node log convergence (btload polls Info until every
# node reports the same applied length and digest), and the telemetry
# columns. Skips (exit 0, with a note) where the sandbox forbids binding
# loopback sockets.
#
# Usage: scripts/smoke_rsm.sh
set -eu

cd "$(dirname "$0")/.."

BTNODE=target/release/btnode
BTLOAD=target/release/btload
BTSTAT=target/release/btstat
if [ ! -x "$BTNODE" ] || [ ! -x "$BTLOAD" ] || [ ! -x "$BTSTAT" ]; then
    echo "==> building release binaries for the smoke run"
    cargo build --release -q --workspace
fi

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# Derive a port block from the PID so parallel runs rarely collide; a
# bind failure is reported by btnode and treated as a skip below.
# Layout: BASE..BASE+3 protocol, BASE+4..BASE+7 client API, BASE+8 admin.
BASE=$((21000 + $$ % 20000))
PEERS="--peer 127.0.0.1:$BASE --peer 127.0.0.1:$((BASE + 1)) \
--peer 127.0.0.1:$((BASE + 2)) --peer 127.0.0.1:$((BASE + 3))"
ADMIN=$((BASE + 8))

echo "==> booting 4 rsm replicas (n=4 k=1, ports $BASE-$((BASE + 8)))"
for i in 0 1 2 3; do
    ADMIN_FLAG=""
    [ "$i" = 0 ] && ADMIN_FLAG="--admin $ADMIN"
    # shellcheck disable=SC2086 # PEERS and ADMIN_FLAG word-split on purpose
    "$BTNODE" --id "$i" --n 4 --k 1 --proto rsm \
        --listen "127.0.0.1:$((BASE + i))" $PEERS \
        --client "$((BASE + 4 + i))" --seed 42 --timeout 0 \
        --wal "$TMP/rsm$i.wal" $ADMIN_FLAG \
        >"$TMP/node$i.log" 2>&1 &
    PIDS="$PIDS $!"
done
sleep 1

if grep -q "cannot bind" "$TMP"/node*.log 2>/dev/null; then
    echo "==> skipping: sandbox forbids binding loopback sockets"
    exit 0
fi

TARGETS="127.0.0.1:$((BASE + 4)),127.0.0.1:$((BASE + 5)),\
127.0.0.1:$((BASE + 6)),127.0.0.1:$((BASE + 7))"
echo "==> driving 120 committed ops through the client API with btload"
if ! "$BTLOAD" --targets "$TARGETS" --clients 8 --ops 120 \
    --out "$TMP/bench.json" >"$TMP/btload.log" 2>&1; then
    echo "==> FAIL: btload run failed; logs follow" >&2
    cat "$TMP/btload.log" "$TMP"/node*.log >&2
    exit 1
fi
cat "$TMP/btload.log"

if ! grep -q '"bench":"rsm_targets"' "$TMP/bench.json"; then
    echo "==> FAIL: bench report missing or malformed" >&2
    cat "$TMP/bench.json" >&2 || true
    exit 1
fi

echo "==> scraping the live rsm metric families with btstat --once"
if ! "$BTSTAT" --once --node "127.0.0.1:$ADMIN" \
    --expect rsm_slots_committed_total,rsm_commands_applied_total,rsm_batch_commands,rsm_commit_latency_us,rsm_pipeline_open,rsm_client_op_us \
    >"$TMP/btstat.log" 2>&1; then
    echo "==> FAIL: btstat scrape failed or expected metric families missing" >&2
    cat "$TMP/btstat.log" >&2
    exit 1
fi
cat "$TMP/btstat.log"

echo "==> rsm smoke test passed"
