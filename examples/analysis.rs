//! The §4 performance analysis, regenerated: exact Markov-chain absorption
//! times, the paper's collapsed-chain bound (eq. 13), and the §4.2
//! balancing-adversary bound — side by side with Monte-Carlo simulation of
//! the actual protocol.
//!
//! ```sh
//! cargo run --release --example analysis
//! ```

use resilient_consensus::bt_core::{Config, Simple};
use resilient_consensus::markov::{collapsed, FailStopChain, MaliciousChain};
use resilient_consensus::simnet::{run_trials, Role, Sim, Value};

fn simulate_simple_phases(n: usize, k: usize, trials: usize) -> f64 {
    // Callers pass a decidable k ≤ ⌊(n−1)/3⌋; at the analysis's idealized
    // k = n/3 the decide threshold equals the quota and nothing decides.
    let config = Config::unchecked(n, k);
    let stats = run_trials(trials, 0xA11A, |seed| {
        let mut b = Sim::builder();
        for i in 0..n {
            // Balanced start: the chain's slowest state.
            b.process(
                Box::new(Simple::new(config, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        b.seed(seed).step_limit(8_000_000);
        b.build()
    });
    stats.phases.mean
}

fn main() {
    println!("§4.1 — fail-stop case, k = n/3, balanced start");
    println!(
        "{:>6} {:>16} {:>16} {:>18}",
        "n", "exact chain E", "eq.(13) bound", "simulated (500x)"
    );
    for n in [12usize, 18, 24, 30] {
        let chain = FailStopChain::paper(n);
        let exact = chain.expected_phases_balanced();
        let bound = collapsed::headline_bound(n);
        let sim = simulate_simple_phases(n, (n - 1) / 3, 500);
        println!("{n:>6} {exact:>16.3} {bound:>16.3} {sim:>18.3}");
    }
    println!("paper's claim: expected phases < 7, independent of n\n");

    println!("§4.2 — malicious case, k = l√n/2 balancing adversary");
    println!(
        "{:>6} {:>4} {:>8} {:>16} {:>16}",
        "n", "k", "l", "exact chain E", "1/(2Φ(l)) bound"
    );
    for &(n, k) in &[(36usize, 3usize), (64, 4), (100, 5), (144, 6)] {
        let chain = MaliciousChain::new(n, k);
        let exact = chain.expected_phases_balanced();
        let l = chain.l_parameter();
        let bound = MaliciousChain::paper_bound(l);
        println!("{n:>6} {k:>4} {l:>8.3} {exact:>16.3} {bound:>16.3}");
    }
    println!("paper's claim: constant expected phases for k = o(√n)\n");

    println!("view-majority probability w_i (n = 30, k = 10):");
    print!("  i:   ");
    for i in (10..=20).step_by(2) {
        print!("{i:>8}");
    }
    println!();
    print!("  w_i: ");
    for i in (10..=20).step_by(2) {
        print!("{:>8.4}", FailStopChain::w_value(30, 10, i));
    }
    println!();
}
