//! A crash-tolerant commit vote: the Figure 1 fail-stop protocol as a
//! transaction coordinator replacement.
//!
//! Seven replicas vote commit (1) or abort (0) on a transaction. Three of
//! them — the maximum ⌊(7−1)/2⌋ the protocol tolerates — crash during the
//! vote, one of them *in the middle of a broadcast*, so different survivors
//! saw different last words from it. The survivors still reach a common
//! verdict, under an adversarial scheduler that starves one replica.
//!
//! ```sh
//! cargo run --example crash_tolerant_vote
//! ```

use resilient_consensus::adversary::{CrashPlan, Crashing};
use resilient_consensus::bt_core::{Config, FailStop};
use resilient_consensus::simnet::scheduler::DelayingScheduler;
use resilient_consensus::simnet::{ProcessId, Role, Sim, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Config::fail_stop(7, 3)?;

    let mut agreed = [0usize; 2];
    for trial in 0..20u64 {
        let mut b = Sim::builder();

        // Four reliable replicas: votes 1, 1, 0, 1.
        for &vote in &[Value::One, Value::One, Value::Zero, Value::One] {
            b.process(Box::new(FailStop::new(config, vote)), Role::Correct);
        }

        // Three crashing replicas with distinct failure modes.
        b.process(
            Box::new(Crashing::new(
                FailStop::new(config, Value::Zero),
                // Dies after 3 of its 7 phase-0 messages: a torn broadcast.
                CrashPlan::AfterSends(3),
            )),
            Role::Faulty,
        );
        b.process(
            Box::new(Crashing::new(
                FailStop::new(config, Value::Zero),
                CrashPlan::AtPhase(1),
            )),
            Role::Faulty,
        );
        b.process(
            Box::new(Crashing::new(
                FailStop::new(config, Value::One),
                CrashPlan::AtStep(40),
            )),
            Role::Faulty,
        );

        // Adversarial scheduling: messages *from* replica 0 are delayed as
        // long as anything else can be delivered.
        b.scheduler(Box::new(DelayingScheduler::new(7, &[ProcessId::new(0)])));

        let report = b.seed(trial).step_limit(2_000_000).build().run();

        assert!(report.agreement(), "trial {trial}: split verdict!");
        assert!(report.all_correct_decided(), "trial {trial}: vote hung");
        let verdict = report.decided_value().expect("all decided and agree");
        agreed[verdict.index()] += 1;
        println!(
            "trial {trial:>2}: verdict {verdict} in {:>2} phases, {:>5} messages",
            report.phases_to_decision().unwrap(),
            report.metrics.messages_sent,
        );
    }

    println!(
        "\nverdicts over 20 trials: abort={} commit={}",
        agreed[0], agreed[1]
    );
    println!("every trial agreed and terminated despite 3/7 crashes.");
    Ok(())
}
