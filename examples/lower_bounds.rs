//! The lower bounds, demonstrated: Lemma 2's bivalent initial
//! configuration found by exhaustive search, Theorem 1's degradation beyond
//! ⌊(n−1)/2⌋, and consistency loss when the *actual* fault count exceeds
//! the `k` a run was configured for.
//!
//! ```sh
//! cargo run --release --example lower_bounds
//! ```

use resilient_consensus::adversary::TwoFacedMalicious;
use resilient_consensus::bt_core::{Config, Malicious};
use resilient_consensus::modelcheck::demos;
use resilient_consensus::simnet::{Role, Sim, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // — Lemma 2: a bivalent initial configuration exists. —
    let config = Config::fail_stop(3, 1)?;
    let bivalent = demos::find_bivalent_initial(config, 1)
        .expect("Lemma 2 guarantees a bivalent initial configuration");
    println!("Lemma 2  (n=3, k=1): bivalent initial inputs found: {bivalent:?}");

    // — Theorem 1: beyond ⌊(n−1)/2⌋ the protocol cannot decide. —
    // With n = 2, k = 1 the witness threshold (cardinality > n/2 = 1)
    // exceeds the phase quota (n−k = 1): exhaustive exploration confirms no
    // schedule reaches any decision. Safety survives; liveness cannot.
    let never = demos::failstop_beyond_bound_never_decides(2, 1);
    println!("Theorem 1 (n=2, k=1): no decision reachable under any schedule: {never}");
    assert!(never);

    // — Theorem 3's flip side: run the malicious protocol tuned for k = 1
    // faults, but subject it to 2 actual attackers. The echo quorum
    // (n+k)/2 no longer intersects correctly and consistency or liveness
    // must eventually give. We search seeds for a violation. —
    let n = 4;
    let tuned_for = Config::malicious(n, 1)?; // legal config…
    let mut broken_seed = None;
    for seed in 0..5_000u64 {
        let mut b = Sim::builder();
        for i in 0..2 {
            b.process(
                Box::new(Malicious::new(tuned_for, Value::from(i == 0))),
                Role::Correct,
            );
        }
        for _ in 0..2 {
            // …but two two-faced attackers instead of one.
            b.process(Box::new(TwoFacedMalicious::new(tuned_for)), Role::Faulty);
        }
        let report = b.seed(seed).step_limit(200_000).build().run();
        if !report.agreement() {
            broken_seed = Some((seed, "agreement"));
            break;
        }
        if !report.all_correct_decided() {
            broken_seed = Some((seed, "termination"));
            break;
        }
    }
    match broken_seed {
        Some((seed, what)) => println!(
            "Theorem 3 (n=4 tuned for k=1, 2 actual attackers): {what} violated at seed {seed}"
        ),
        None => println!("Theorem 3 probe: no violation in 5000 seeds (try more seeds/attackers)"),
    }
    assert!(
        broken_seed.is_some(),
        "exceeding the configured fault bound must eventually break a guarantee"
    );
    Ok(())
}
