//! A replicated log: multi-valued Byzantine consensus as the ordering
//! primitive of a tiny state-machine-replication layer.
//!
//! Four replicas each receive a different client command (encoded as a
//! 16-bit word) and must install the *same* command into slot 0 of their
//! logs, despite full asynchrony. Each log slot is one [`MultiValued`]
//! instance — the bitwise reduction of the paper's Figure 2 protocol.
//!
//! ```sh
//! cargo run --release --example replicated_log
//! ```

use std::sync::Arc;

use resilient_consensus::bt_core::multivalued::{word_observer, MultiValued};
use resilient_consensus::bt_core::Config;
use resilient_consensus::simnet::{Role, Sim};

/// Pretend client commands, encoded into 16 bits.
const COMMANDS: [(&str, u64); 4] = [
    ("SET x=1", 0x5E01),
    ("SET x=2", 0x5E02),
    ("DEL x", 0xDE00),
    ("GET x", 0x6E00),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let config = Config::malicious(n, 1)?;

    let mut logs: Vec<Vec<u64>> = vec![Vec::new(); n];

    // Three log slots, each decided by an independent consensus instance
    // (sequential here for clarity; nothing prevents pipelining).
    for slot in 0..3u64 {
        let observer = word_observer(n);
        let mut b = Sim::builder();
        for (replica, &(_, cmd)) in COMMANDS.iter().enumerate() {
            // Rotate proposals per slot so different replicas win.
            let proposal = COMMANDS[(replica + slot as usize) % n].1;
            let _ = cmd;
            b.process(
                Box::new(
                    MultiValued::new(config, 16, proposal)
                        .with_observer(Arc::clone(&observer), replica),
                ),
                Role::Correct,
            );
        }
        let report = b.seed(0x10C + slot).step_limit(32_000_000).build().run();
        assert!(report.agreement(), "slot {slot}: replicas disagreed");
        assert!(report.all_correct_decided(), "slot {slot}: stuck");

        let words = observer.lock().expect("observer").clone();
        let winner = words[0].expect("decided");
        assert!(
            words.iter().all(|w| *w == Some(winner)),
            "slot {slot}: diverging logs {words:?}"
        );
        for log in &mut logs {
            log.push(winner);
        }
        let name = COMMANDS
            .iter()
            .find(|(_, c)| *c == winner)
            .map_or("(mixed-bits artifact)", |(name, _)| *name);
        println!(
            "slot {slot}: agreed on {winner:#06x} {name} in {} phases",
            report.phases_to_decision().unwrap_or(0),
        );
    }

    println!("\nall {} replica logs identical: {:04x?}", n, logs[0]);
    assert!(logs.iter().all(|l| *l == logs[0]));
    Ok(())
}
