//! The replicated log as a *service*: a loopback [`RsmCluster`] of four
//! nodes, each slot an independent multi-valued Byzantine consensus
//! instance, serving clients over the length-prefixed TCP protocol.
//!
//! The walk-through hits the three things the `rsm` crate adds on top of
//! the one-shot protocols:
//!
//! 1. a single client puts, reads, and deletes through the KV state
//!    machine (exactly-once via `(client, request)` ids);
//! 2. several concurrent clients share the pipeline, many slots in
//!    flight at once (batching kicks in when demand outruns slot
//!    supply — `btload` drives and measures that regime);
//! 3. a node is killed and restarted, recovers its log from the WAL, and
//!    the cluster converges back to byte-identical logs.
//!
//! ```sh
//! cargo run --release --example replicated_log
//! ```
//!
//! See `docs/RSM.md` for the architecture and the protocol grammar.

use std::time::Duration;

use resilient_consensus::rsm::{ClientResp, Op, RsmClient, RsmCluster, RsmClusterOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let wal_dir = std::env::temp_dir().join(format!("rsm-example-{}", std::process::id()));
    let mut opts = RsmClusterOptions::new(n, wal_dir.clone());
    opts.seed = 0x10C;
    let mut cluster = RsmCluster::start(opts)?;
    println!(
        "booted a {n}-node replicated-log cluster (k = {})",
        (n - 1) / 3
    );

    // ---- 1. one client, the whole surface ------------------------------
    let mut alice = RsmClient::connect(cluster.client_addr(0), 1)?;
    alice.set_timeout(Some(Duration::from_secs(60)))?;
    for (key, value) in [(&b"x"[..], &b"1"[..]), (b"y", b"2"), (b"x", b"3")] {
        // propose_with_retry rides out Busy shedding and service timeouts
        // with jittered backoff; each retry reuses the same request id,
        // so the command still applies exactly once.
        let op = Op::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        };
        match alice.propose_with_retry(op, Duration::from_secs(30))? {
            ClientResp::Committed { log_len, .. } => println!(
                "put {}={} committed (log length {log_len})",
                String::from_utf8_lossy(key),
                String::from_utf8_lossy(value),
            ),
            other => return Err(format!("put not committed: {other:?}").into()),
        }
    }
    let x = alice.read(b"x")?;
    println!("read x -> {:?}", x.as_deref().map(String::from_utf8_lossy));
    assert_eq!(x.as_deref(), Some(&b"3"[..]), "last write wins");
    alice.del(b"y")?;
    assert_eq!(alice.read(b"y")?, None, "deleted keys read as unbound");

    // ---- 2. concurrent clients, one shared pipeline --------------------
    let addrs: Vec<_> = (0..n).map(|i| cluster.client_addr(i)).collect();
    let writers: Vec<_> = (0..8u64)
        .map(|w| {
            let addr = addrs[(w as usize + 1) % n];
            std::thread::spawn(move || -> std::io::Result<()> {
                // Ids 2..=9; id 1 is taken by `alice` above.
                let mut c = RsmClient::connect(addr, 2 + w)?;
                c.set_timeout(Some(Duration::from_secs(60)))?;
                for i in 0..8u32 {
                    let op = Op::Put {
                        key: format!("w{w}.k{i}").into_bytes(),
                        value: i.to_be_bytes().to_vec(),
                    };
                    c.propose_with_retry(op, Duration::from_secs(30))?;
                }
                Ok(())
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread")?;
    }

    // ---- 3. kill a node, restart it, converge --------------------------
    cluster.kill(n - 1);
    println!("killed node {} (its WAL survives it)", n - 1);
    cluster.restart(n - 1)?;
    println!("restarted node {} from its WAL on the same ports", n - 1);

    let (applied, digest) = cluster
        .await_identical(Duration::from_secs(60))
        .ok_or("cluster did not converge")?;
    let (commands_applied, loaded_slots, batched_commands) = cluster.view(0).with(|a| {
        let loaded = a.log.iter().filter(|e| !e.commands.is_empty());
        (
            a.applied_commands,
            loaded.clone().count(),
            loaded.map(|e| e.commands.len()).sum::<usize>(),
        )
    });
    println!("\nall {n} logs identical: {applied} slots applied, digest {digest:#018x}");
    println!(
        "{commands_applied} commands over {loaded_slots} non-empty slots \
         (mean batch {:.2} commands/slot)",
        batched_commands as f64 / loaded_slots.max(1) as f64,
    );

    cluster.shutdown();
    std::fs::remove_dir_all(&wal_dir).ok();
    Ok(())
}
