//! The Byzantine gauntlet: the Figure 2 protocol versus every attacker in
//! the `adversary` crate, at maximum tolerated strength.
//!
//! Ten processes tolerate ⌊(10−1)/3⌋ = 3 malicious faults. For each named
//! strategy we run 25 seeded trials with 3 attackers and check that the
//! seven honest processes always agree and always terminate — and record
//! how much each strategy manages to slow the protocol down.
//!
//! ```sh
//! cargo run --release --example byzantine_gauntlet
//! ```

use resilient_consensus::adversary::{
    ContrarianMalicious, EquivocatingEchoer, RandomMalicious, Silent, TwoFacedMalicious,
};
use resilient_consensus::bt_core::{Config, Malicious, MaliciousMsg};
use resilient_consensus::simnet::{run_trials_seq, Process, Role, Sim, Value};

type Attacker = fn(Config) -> Box<dyn Process<Msg = MaliciousMsg>>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let k = 3;
    let config = Config::malicious(n, k)?;

    let strategies: Vec<(&str, Attacker)> = vec![
        ("silent (dead on arrival)", |_c| {
            Box::new(Silent::<MaliciousMsg>::new())
        }),
        ("contrarian (balancing, §4.2)", |c| {
            Box::new(ContrarianMalicious::new(c))
        }),
        ("two-faced initials", |c| {
            Box::new(TwoFacedMalicious::new(c))
        }),
        ("equivocating echoes", |c| {
            Box::new(EquivocatingEchoer::new(c))
        }),
        // Burst 2 keeps the noise *subcritical*: with ~k/n of deliveries
        // hitting attackers, burst × k/n < 1 keeps the message population
        // bounded so runs terminate. (Supercritical noise floods buffers
        // without breaking agreement — it only stalls the clock.)
        ("random noise ×2", |c| Box::new(RandomMalicious::new(c, 2))),
    ];

    println!("n = {n}, k = {k}, honest inputs split 4/3, 25 trials each\n");
    println!(
        "{:<32} {:>9} {:>12} {:>14}",
        "strategy", "agreed", "mean phases", "mean messages"
    );

    for (name, make) in strategies {
        let stats = run_trials_seq(25, 0xB12A_C4A0, |seed| {
            let mut b = Sim::builder();
            for i in 0..n - k {
                b.process(
                    Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            for _ in 0..k {
                b.process(make(config), Role::Faulty);
            }
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });

        assert!(
            stats.all_safe(),
            "{name}: agreement or liveness violated! seeds {:?}",
            stats.violation_seeds
        );
        assert_eq!(stats.decided, stats.trials, "{name}: some trial hung");

        println!(
            "{:<32} {:>6}/25 {:>12.2} {:>14.0}",
            name, stats.decided, stats.phases.mean, stats.messages.mean
        );
    }

    println!("\nTheorem 4 held against every strategy at full strength k = ⌊(n−1)/3⌋.");
    Ok(())
}
