//! The §6 comparison: Bracha-Toueg versus Ben-Or on divided inputs.
//!
//! Both are randomized asynchronous consensus protocols, but the randomness
//! lives in different places — in the *message system* for Bracha-Toueg
//! (the §2.3 fair-scheduler assumption), in the *protocol* for Ben-Or (coin
//! flips). The paper notes Ben-Or's expected termination time is
//! exponential in the fail-stop case; with a 50/50 input split, his coin
//! flips must align across processes, while the Bracha-Toueg majority
//! dynamics converge in a handful of phases regardless of `n`.
//!
//! ```sh
//! cargo run --release --example benor_race
//! ```

use resilient_consensus::benor::{build_correct_system as benor_system, BenOrConfig};
use resilient_consensus::bt_core::{simple::build_correct_system as bt_system, Config};
use resilient_consensus::simnet::{run_trials, Sim, Value};

fn split(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::from(i % 2 == 0)).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 200;
    println!("50/50 inputs, no faults, fair scheduler, {trials} trials per point\n");
    println!(
        "{:>4} {:>22} {:>22}",
        "n", "Bracha-Toueg phases", "Ben-Or rounds"
    );

    for n in [4usize, 6, 8, 10, 12] {
        let bt_cfg = Config::malicious(n, (n - 1) / 3)?;
        let bt = run_trials(trials, 77, |seed| {
            let mut b = Sim::builder();
            bt_system(&mut b, bt_cfg, &split(n));
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });

        let bo_cfg = BenOrConfig::fail_stop(n, (n - 1) / 2)?;
        let bo = run_trials(trials, 77, |seed| {
            let mut b = Sim::builder();
            benor_system(&mut b, bo_cfg, &split(n));
            b.seed(seed).step_limit(8_000_000);
            b.build()
        });

        println!(
            "{n:>4} {:>15.2} ± {:<4.1} {:>15.2} ± {:<4.1}",
            bt.phases.mean, bt.phases.stddev, bo.phases.mean, bo.phases.stddev
        );
    }

    println!("\nBen-Or's rounds grow with n (coins must align); Bracha-Toueg stays flat.");
    Ok(())
}
