//! Quickstart: Byzantine consensus among seven processes, two of which are
//! actively malicious.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use resilient_consensus::adversary::ContrarianMalicious;
use resilient_consensus::bt_core::{Config, Malicious};
use resilient_consensus::simnet::{Role, Sim, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Seven processes tolerate ⌊(7−1)/3⌋ = 2 malicious faults.
    let config = Config::malicious(7, 2)?;

    let mut builder = Sim::builder();

    // Five honest processes with divided inputs: 1, 0, 1, 0, 1.
    for i in 0..5 {
        let input = Value::from(i % 2 == 0);
        builder.process(Box::new(Malicious::new(config, input)), Role::Correct);
    }

    // Two balancing attackers (§4.2's worst case: they always push the
    // minority value to keep the system split).
    for _ in 0..2 {
        builder.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
    }

    let report = builder.seed(2026).build().run();

    println!("status:            {:?}", report.status);
    println!("agreement held:    {}", report.agreement());
    println!("decided value:     {:?}", report.decided_value());
    println!(
        "phases to decide:  {:?}",
        report.phases_to_decision().expect("all correct decided")
    );
    println!("messages sent:     {}", report.metrics.messages_sent);
    println!("atomic steps:      {}", report.steps);

    assert!(report.agreement(), "Theorem 4 must hold");
    assert!(report.all_correct_decided(), "probability-1 termination");
    Ok(())
}
