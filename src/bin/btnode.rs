//! `btnode` — boot one networked consensus node from the command line.
//!
//! Usage:
//!
//! ```text
//! btnode --id I --n N --k K --proto failstop|simple|malicious|benor|rsm \
//!        [--input 0|1] --listen HOST:PORT --peer HOST:PORT [--peer ...] \
//!        [--seed S] [--timeout SECS] [--jsonl PATH] [--admin PORT] \
//!        [--client PORT] [--window W] [--max-batch B] \
//!        [--queue-depth Q] [--submit-batch S]
//! ```
//!
//! `--peer` must appear exactly `N` times, in process-id order; entry `I`
//! is this node's own address (nodes never dial themselves, so it is only
//! positional). Start all `N` nodes in any order — dials retry with
//! backoff until the whole cluster is up, so there is no required boot
//! sequence. The process exits 0 once this node decides, printing the
//! decision, or 1 on timeout.
//!
//! With `--jsonl` the node writes its own perspective of the run (its
//! events only — each node sees its own trace) as `obs`-format JSONL
//! consumable by `btreport`.
//!
//! # Crash recovery
//!
//! With `--wal PATH` the node journals every delivery to a write-ahead
//! log *before* acting on it (log-before-send); booting on an existing
//! WAL recovers the pre-crash state and re-sends the unacknowledged
//! backlog byte-for-byte, so a restart can never turn into equivocation.
//!
//! `--supervise` (Unix only, requires `--wal`) adds the supervisor: the
//! parent binds the listening socket once, hands a duplicate of it to a
//! worker child via stdin, and if the worker dies to a signal (SIGKILL,
//! SIGSEGV, OOM-killer) restarts it from the WAL — on the *same* port,
//! with jittered exponential backoff, up to `--max-restarts` times
//! (default 4). Normal exits, success or timeout, are propagated as-is.
//!
//! # Live telemetry
//!
//! `--admin PORT` serves the node's runtime metrics while it runs: an
//! HTTP/1.0 endpoint on the listen host at `PORT` answering `/metrics`
//! (Prometheus text exposition), `/metrics.json` (the same snapshot as
//! JSON), and `/status` (decision, phase, per-peer link liveness). Point
//! `btstat` — or anything that speaks HTTP — at it. Under `--supervise`
//! the admin port, like the protocol port, survives worker restarts
//! because each worker incarnation binds it afresh after the old worker
//! died.
//!
//! # The replicated log (`--proto rsm`)
//!
//! `--proto rsm` runs the node as one replica of the multi-decree
//! replicated log (see `docs/RSM.md`) instead of a one-shot consensus:
//! `--client PORT` (required) serves the length-prefixed client API on
//! the listen host, `--window`/`--max-batch` tune the replica's
//! pipelining and batching, and `--queue-depth`/`--submit-batch` tune
//! the service's admission queue. `--input` does not apply; `--timeout`
//! becomes the serving duration (0 = serve until killed). The `/status`
//! admin endpoint gains an `rsm` section (applied slots, log digest,
//! command counters), and `--supervise`/`--wal` work unchanged — a
//! SIGKILLed replica restarts from its journal and rejoins without
//! equivocation, resuming its client service on the same port.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use benor::{BenOrConfig, BenOrProcess};
use bt_core::{Config, FailStop, Malicious, Simple};
use netstack::{spawn, FaultPlan, NodeConfig, NodeHandle};
use obs::JsonlSink;
use simnet::{
    Metrics, Process, ProcessId, Role, RunReport, RunStatus, SharedSubscriber, Subscriber, Value,
    Wire,
};

const USAGE: &str = "usage: btnode --id I --n N --k K \
--proto failstop|simple|malicious|benor|rsm [--input 0|1] \
--listen HOST:PORT --peer HOST:PORT [--peer ...] \
[--seed S] [--timeout SECS] [--jsonl PATH] [--admin PORT] \
[--client PORT] [--window W] [--max-batch B] [--queue-depth Q] [--submit-batch S] \
[--wal PATH [--snapshot-every STEPS] [--supervise] [--max-restarts R]]";

struct Args {
    id: usize,
    n: usize,
    k: usize,
    proto: String,
    input: Option<Value>,
    /// Client-API port for `--proto rsm`.
    client: Option<u16>,
    window: u64,
    max_batch: usize,
    queue_depth: usize,
    submit_batch: usize,
    listen: SocketAddr,
    peers: Vec<SocketAddr>,
    seed: u64,
    timeout: Duration,
    jsonl: Option<String>,
    admin: Option<u16>,
    wal: Option<PathBuf>,
    snapshot_every: u64,
    supervise: bool,
    max_restarts: u32,
    /// Internal (set by the supervisor on the worker it spawns): the
    /// listening socket is inherited on stdin instead of bound fresh.
    listen_stdin: bool,
    /// Internal (set by the supervisor on respawns): this boot follows a
    /// crash that journaled at least a boot record, so an empty WAL means
    /// the log was lost — boot amnesiac instead of starting fresh.
    expect_wal: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut n = None;
    let mut k = None;
    let mut proto = None;
    let mut input = None;
    let mut client = None;
    let mut window = 8u64;
    let mut max_batch = 64usize;
    let mut queue_depth = 1024usize;
    let mut submit_batch = 256usize;
    let mut listen = None;
    let mut peers = Vec::new();
    let mut seed = 0u64;
    let mut timeout = Duration::from_secs(60);
    let mut jsonl = None;
    let mut admin = None;
    let mut wal = None;
    let mut snapshot_every = 0u64;
    let mut supervise = false;
    let mut max_restarts = 4u32;
    let mut listen_stdin = false;
    let mut expect_wal = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--id" => id = Some(parse(&value("--id")?, "--id")?),
            "--n" => n = Some(parse(&value("--n")?, "--n")?),
            "--k" => k = Some(parse(&value("--k")?, "--k")?),
            "--proto" => proto = Some(value("--proto")?),
            "--input" => {
                input = Some(match value("--input")?.as_str() {
                    "0" => Value::Zero,
                    "1" => Value::One,
                    other => return Err(format!("--input must be 0 or 1, got {other}")),
                });
            }
            "--client" => client = Some(parse(&value("--client")?, "--client")?),
            "--window" => window = parse(&value("--window")?, "--window")?,
            "--max-batch" => max_batch = parse(&value("--max-batch")?, "--max-batch")?,
            "--queue-depth" => queue_depth = parse(&value("--queue-depth")?, "--queue-depth")?,
            "--submit-batch" => submit_batch = parse(&value("--submit-batch")?, "--submit-batch")?,
            "--listen" => listen = Some(parse_addr(&value("--listen")?)?),
            "--peer" => peers.push(parse_addr(&value("--peer")?)?),
            "--seed" => seed = parse(&value("--seed")?, "--seed")?,
            "--timeout" => {
                timeout = Duration::from_secs(parse(&value("--timeout")?, "--timeout")?);
            }
            "--jsonl" => jsonl = Some(value("--jsonl")?),
            "--admin" => admin = Some(parse(&value("--admin")?, "--admin")?),
            "--wal" => wal = Some(PathBuf::from(value("--wal")?)),
            "--snapshot-every" => {
                snapshot_every = parse(&value("--snapshot-every")?, "--snapshot-every")?;
            }
            "--supervise" => supervise = true,
            "--max-restarts" => max_restarts = parse(&value("--max-restarts")?, "--max-restarts")?,
            "--listen-stdin" => listen_stdin = true,
            "--expect-wal" => expect_wal = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }

    let args = Args {
        id: id.ok_or("--id is required")?,
        n: n.ok_or("--n is required")?,
        k: k.ok_or("--k is required")?,
        proto: proto.ok_or("--proto is required")?,
        input,
        client,
        window,
        max_batch,
        queue_depth,
        submit_batch,
        listen: listen.ok_or("--listen is required")?,
        peers,
        seed,
        timeout,
        jsonl,
        admin,
        wal,
        snapshot_every,
        supervise,
        max_restarts,
        listen_stdin,
        expect_wal,
    };
    if args.proto == "rsm" {
        if args.client.is_none() {
            return Err("--proto rsm requires --client PORT (the client-API port)".to_string());
        }
        if args.jsonl.is_some() {
            return Err("--jsonl applies to one-shot runs, not --proto rsm".to_string());
        }
        if args.window == 0 || args.max_batch == 0 {
            return Err("--window and --max-batch must be at least 1".to_string());
        }
    } else if args.input.is_none() {
        return Err("--input is required (except under --proto rsm)".to_string());
    }
    if args.supervise && args.wal.is_none() {
        return Err(
            "--supervise requires --wal: a worker restarted without its \
             journal could equivocate"
                .to_string(),
        );
    }
    if args.peers.len() != args.n {
        return Err(format!(
            "--peer must appear exactly n={} times (got {}), in process-id order",
            args.n,
            args.peers.len()
        ));
    }
    if args.id >= args.n {
        return Err(format!("--id {} is outside 0..{}", args.id, args.n));
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: cannot parse {s:?} as a number"))
}

fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse()
        .map_err(|_| format!("cannot parse {s:?} as HOST:PORT"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("btnode: {err}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.supervise {
        return run_supervisor(&args);
    }

    let listener = if args.listen_stdin {
        match listener_from_stdin() {
            Ok(l) => l,
            Err(err) => {
                eprintln!("btnode: cannot inherit listener from stdin: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match TcpListener::bind(args.listen) {
            Ok(l) => l,
            Err(err) => {
                eprintln!("btnode: cannot bind {}: {err}", args.listen);
                return ExitCode::FAILURE;
            }
        }
    };

    if args.proto == "rsm" {
        return run_rsm(&args, listener);
    }

    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    let subscriber: Option<SharedSubscriber> = if args.jsonl.is_some() {
        sink.lock()
            .expect("sink lock")
            .on_run_start(args.n, args.seed);
        Some(sink.clone() as SharedSubscriber)
    } else {
        None
    };

    let input = args.input.expect("validated in parse_args");
    let booted = match args.proto.as_str() {
        "failstop" => {
            let config = match Config::fail_stop(args.n, args.k) {
                Ok(c) => c,
                Err(e) => return config_error(e),
            };
            boot(
                &args,
                listener,
                subscriber,
                Box::new(FailStop::new(config, input)),
            )
        }
        "simple" => {
            let config = match Config::fail_stop(args.n, args.k) {
                Ok(c) => c,
                Err(e) => return config_error(e),
            };
            boot(
                &args,
                listener,
                subscriber,
                Box::new(Simple::new(config, input)),
            )
        }
        "malicious" => {
            let config = match Config::malicious(args.n, args.k) {
                Ok(c) => c,
                Err(e) => return config_error(e),
            };
            boot(
                &args,
                listener,
                subscriber,
                Box::new(Malicious::new(config, input)),
            )
        }
        "benor" => {
            let config = match BenOrConfig::fail_stop(args.n, args.k) {
                Ok(c) => c,
                Err(e) => return config_error(e),
            };
            boot(
                &args,
                listener,
                subscriber,
                Box::new(BenOrProcess::new(config, input)),
            )
        }
        other => {
            eprintln!("btnode: unknown protocol {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut node = match booted {
        Ok(node) => node,
        Err(err) => {
            eprintln!("btnode: cannot boot node: {err}");
            return ExitCode::FAILURE;
        }
    };

    // Live telemetry: serve /metrics and /status for the run's duration.
    let _admin = match args.admin {
        Some(port) => {
            let bind = SocketAddr::new(args.listen.ip(), port);
            match netstack::admin::serve_node(bind, &node, args.n) {
                Ok(server) => {
                    eprintln!("btnode: admin endpoint on http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(err) => {
                    eprintln!("btnode: cannot bind admin endpoint {bind}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    // Wait for this node's decision (or the deadline).
    let deadline = Instant::now() + args.timeout;
    let mut reported_amnesiac = false;
    let mut reported_transfer = false;
    let decided = loop {
        let status = node.status();
        if status.amnesiac && !reported_amnesiac {
            reported_amnesiac = true;
            eprintln!(
                "btnode: p{} booted amnesiac (WAL unsafe or missing); \
                 requesting quorum state transfer",
                args.id
            );
        }
        if status.state_transferred && !reported_transfer {
            reported_transfer = true;
            eprintln!(
                "btnode: p{} completed quorum state transfer; rejoined as learner",
                args.id
            );
        }
        if let Some(value) = status.decision {
            println!(
                "p{} decided {:?} in phase {} after {} steps",
                args.id,
                value,
                status.decision_phase.unwrap_or(0),
                status.steps,
            );
            break true;
        }
        if Instant::now() >= deadline {
            eprintln!("btnode: p{} undecided after {:?}", args.id, args.timeout);
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };

    // Post-decision grace: let exit broadcasts drain so peers can finish.
    if decided {
        std::thread::sleep(Duration::from_millis(300));
    }
    node.shutdown();

    // The final summary surfaces what the run went through, not just how
    // it ended: deliveries replayed from the WAL at boot and equivocation
    // attempts observed on the wire would otherwise vanish with the
    // process.
    let status = node.status();
    println!(
        "p{} summary: recovered={} equivocations={} retransmits={} reconnects={} \
         seq_gaps={} wal_corruptions={} state_transferred={}",
        args.id,
        status.recovered,
        node.equivocations(),
        node.retransmits(),
        node.reconnects(),
        node.seq_gaps(),
        node.wal_corruptions(),
        status.state_transferred,
    );

    if let Some(path) = &args.jsonl {
        let report = single_node_report(&args, &node, decided);
        let mut sink = sink.lock().expect("sink lock");
        sink.on_run_end(&report);
        if let Err(err) = sink.write_to_file(path) {
            eprintln!("btnode: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
    }

    if decided {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn config_error(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("btnode: {e}");
    ExitCode::FAILURE
}

/// The worker side of `--supervise`: the parent passed a duplicate of the
/// listening socket as our stdin; reclaim it with safe std conversions.
#[cfg(unix)]
fn listener_from_stdin() -> std::io::Result<TcpListener> {
    use std::os::fd::AsFd;
    let fd = std::io::stdin().as_fd().try_clone_to_owned()?;
    let listener = TcpListener::from(fd);
    // Sanity: stdin must actually be a listening TCP socket, not a pipe.
    listener.local_addr()?;
    Ok(listener)
}

#[cfg(not(unix))]
fn listener_from_stdin() -> std::io::Result<TcpListener> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--listen-stdin requires a Unix platform",
    ))
}

/// The parent side of `--supervise`: bind the port once, run the worker
/// on a duplicate of the socket, and restart it from the WAL — same port,
/// jittered exponential backoff, bounded by `--max-restarts` — whenever
/// it dies to a signal. Normal worker exits (decided, timed out, usage
/// errors) are propagated unchanged.
#[cfg(unix)]
fn run_supervisor(args: &Args) -> ExitCode {
    use std::os::fd::OwnedFd;
    use std::process::{Command, Stdio};

    let listener = match TcpListener::bind(args.listen) {
        Ok(l) => l,
        Err(err) => {
            eprintln!("btnode: cannot bind {}: {err}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(err) => {
            eprintln!("btnode: cannot locate own executable: {err}");
            return ExitCode::FAILURE;
        }
    };
    // The worker runs with our exact arguments minus --supervise, plus
    // the marker telling it the socket arrives on stdin.
    let worker_args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--supervise")
        .chain(std::iter::once("--listen-stdin".to_string()))
        .collect();

    let mut jitter = prng::Prng::seed_from_u64(args.seed ^ 0x7375_7056_6274u64);
    let mut restarts = 0u32;
    loop {
        let socket = match listener.try_clone() {
            Ok(l) => OwnedFd::from(l),
            Err(err) => {
                eprintln!("btnode: cannot duplicate listener for worker: {err}");
                return ExitCode::FAILURE;
            }
        };
        // From the first restart on, the worker follows a crash whose WAL
        // journaled at least the boot record: an empty or vanished log is
        // then amnesia, not a fresh start.
        let mut incarnation_args = worker_args.clone();
        if restarts > 0 && !incarnation_args.iter().any(|a| a == "--expect-wal") {
            incarnation_args.push("--expect-wal".to_string());
        }
        let status = Command::new(&exe)
            .args(&incarnation_args)
            .stdin(Stdio::from(socket))
            .status();
        match status {
            Ok(st) if st.code().is_some() => {
                // Clean exit — the worker decided (0) or gave up (1).
                return if st.success() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            Ok(_) => {
                // Signal death: the crash the WAL exists for.
                if restarts >= args.max_restarts {
                    eprintln!(
                        "btnode: worker for p{} killed again; restart budget ({}) exhausted",
                        args.id, args.max_restarts
                    );
                    return ExitCode::FAILURE;
                }
                restarts += 1;
                // Jittered exponential backoff: 10ms · 2^r nominal, at
                // least half honoured, the rest uniform.
                let nominal =
                    Duration::from_millis(10).saturating_mul(2u32.saturating_pow(restarts - 1));
                let half = nominal / 2;
                let span = u64::try_from(half.as_micros())
                    .unwrap_or(u64::MAX)
                    .saturating_add(1);
                let wait = half + Duration::from_micros(jitter.next_u64() % span);
                eprintln!(
                    "btnode: worker for p{} died to a signal; restarting from WAL \
                     in {wait:?} (attempt {restarts}/{})",
                    args.id, args.max_restarts
                );
                std::thread::sleep(wait);
            }
            Err(err) => {
                eprintln!("btnode: cannot spawn worker: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
}

#[cfg(not(unix))]
fn run_supervisor(_args: &Args) -> ExitCode {
    eprintln!("btnode: --supervise requires a Unix platform (socket passing via stdin)");
    ExitCode::FAILURE
}

fn boot<M: Wire + Send + 'static>(
    args: &Args,
    listener: TcpListener,
    subscriber: Option<SharedSubscriber>,
    process: Box<dyn Process<Msg = M> + Send>,
) -> std::io::Result<NodeHandle> {
    let cfg = NodeConfig {
        id: ProcessId::new(args.id),
        n: args.n,
        seed: args.seed.wrapping_add(args.id as u64),
        k: args.k,
        fault: FaultPlan::reliable(),
        expect_history: args.expect_wal,
        wal: args.wal.clone(),
        snapshot_every: args.snapshot_every,
        // Each worker incarnation gets a fresh registry; under
        // --supervise the counters' pre-crash values live in the WAL's
        // replay, not in memory.
        metrics: None,
    };
    spawn(cfg, listener, args.peers.clone(), process, subscriber)
}

/// This node's perspective of the run: its own row is filled in, the other
/// processes' rows are unknown (`None`) — one btnode cannot observe its
/// peers' decisions, only its own.
fn single_node_report(args: &Args, node: &NodeHandle, decided: bool) -> RunReport {
    let status = node.status();
    let mut decisions = vec![None; args.n];
    let mut decision_steps = vec![None; args.n];
    let mut decision_phases = vec![None; args.n];
    decisions[args.id] = status.decision;
    decision_steps[args.id] = status.decision_step;
    decision_phases[args.id] = status.decision_phase;
    let mut metrics = Metrics::new(args.n);
    metrics.messages_sent = node.messages_sent();
    metrics.messages_delivered = node.messages_delivered();
    metrics.messages_dropped = node.messages_dropped();
    metrics.sent_by[args.id] = node.messages_sent();
    metrics.steps_by[args.id] = status.steps;
    metrics.recovered = status.recovered;
    metrics.equivocations = node.equivocations();
    RunReport::synthesize(
        if decided {
            RunStatus::Stopped
        } else {
            RunStatus::StepLimitReached
        },
        decisions,
        vec![Role::Correct; args.n],
        status.steps,
        decision_steps,
        decision_phases,
        status.phase,
        metrics,
    )
}

/// `--proto rsm`: run this node as one replica of the replicated log,
/// serving the client API on `--client` until `--timeout` elapses (0 =
/// until killed) or the event loop dies.
fn run_rsm(args: &Args, listener: TcpListener) -> ExitCode {
    use netstack::admin::AdminServer;
    use obs::json::Json;
    use obs::metrics::Registry;
    use rsm::{GatewayConfig, LogView, Replica, RsmOptions, RsmService, ServiceOptions};

    let config = match Config::malicious(args.n, args.k) {
        Ok(c) => c,
        Err(e) => return config_error(e),
    };
    let me = ProcessId::new(args.id);
    let registry = Arc::new(Registry::new());
    let view = LogView::new();
    let replica = Replica::new(
        config,
        me,
        RsmOptions {
            window: args.window,
            max_batch: args.max_batch,
        },
    )
    .with_view(view.clone())
    .with_metrics(&registry);

    let cfg = NodeConfig {
        id: me,
        n: args.n,
        seed: args.seed.wrapping_add(args.id as u64),
        k: args.k,
        fault: FaultPlan::reliable(),
        expect_history: args.expect_wal,
        wal: args.wal.clone(),
        snapshot_every: args.snapshot_every,
        metrics: Some(Arc::clone(&registry)),
    };
    let mut node = match spawn(cfg, listener, args.peers.clone(), Box::new(replica), None) {
        Ok(node) => node,
        Err(err) => {
            eprintln!("btnode: cannot boot rsm replica: {err}");
            return ExitCode::FAILURE;
        }
    };

    let client_port = args.client.expect("validated in parse_args");
    let client_bind = SocketAddr::new(args.listen.ip(), client_port);
    let client_listener = match TcpListener::bind(client_bind) {
        Ok(l) => l,
        Err(err) => {
            eprintln!("btnode: cannot bind client port {client_bind}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let service = match RsmService::spawn(
        client_listener,
        GatewayConfig {
            me,
            node_addr: args.peers[args.id],
            initial_seq: node.next_expected_from(me),
        },
        view.clone(),
        ServiceOptions {
            queue_depth: args.queue_depth,
            submit_batch: args.submit_batch,
            propose_timeout: Duration::from_secs(10),
        },
        &registry,
    ) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("btnode: cannot start client service: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "btnode: rsm replica p{} serving clients on {}",
        args.id,
        service.local_addr()
    );

    // Admin endpoint with the node's status plus an `rsm` section.
    let _admin = match args.admin {
        Some(port) => {
            let bind = SocketAddr::new(args.listen.ip(), port);
            let base =
                netstack::admin::status_source(me, args.n, node.status_cell(), node.metrics());
            let status_view = view.clone();
            let admin_listener = match TcpListener::bind(bind) {
                Ok(l) => l,
                Err(err) => {
                    eprintln!("btnode: cannot bind admin endpoint {bind}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let status: netstack::admin::StatusFn = Box::new(move || {
                let Json::Obj(mut fields) = base() else {
                    return Json::Null;
                };
                let rsm = status_view.with(|a| {
                    Json::Obj(vec![
                        ("applied".into(), Json::num(a.next_slot())),
                        ("digest".into(), Json::str(format!("{:016x}", a.digest()))),
                        ("applied_commands".into(), Json::num(a.applied_commands)),
                        ("deduped_commands".into(), Json::num(a.deduped_commands)),
                        ("kv_len".into(), Json::num(a.kv.len() as u64)),
                    ])
                });
                fields.push(("rsm".into(), rsm));
                Json::Obj(fields)
            });
            match AdminServer::serve(admin_listener, Arc::clone(&registry), status) {
                Ok(server) => {
                    eprintln!("btnode: admin endpoint on http://{}/metrics", server.addr());
                    Some(server)
                }
                Err(err) => {
                    eprintln!("btnode: cannot start admin endpoint: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    // Serve until the deadline (0 = forever) or the event loop dies.
    let deadline = (args.timeout > Duration::ZERO).then(|| Instant::now() + args.timeout);
    let healthy = loop {
        if node.died() {
            eprintln!("btnode: rsm replica p{} event loop died", args.id);
            break false;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break true;
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    drop(service);
    node.shutdown();
    let (applied, digest, commands) =
        view.with(|a| (a.next_slot(), a.digest(), a.applied_commands));
    println!(
        "p{} rsm summary: applied={applied} digest={digest:016x} commands={commands} recovered={}",
        args.id,
        node.status().recovered,
    );
    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
