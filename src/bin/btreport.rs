//! `btreport` — render a JSONL run trace as a per-phase timeline plus a
//! cross-run summary.
//!
//! Usage:
//!
//! ```text
//! btreport TRACE.jsonl
//! ```
//!
//! The trace is the output of `obs::JsonlSink` (one JSON object per line,
//! runs bracketed by `run_start`/`run_end` records). The report shows, per
//! run, each phase's first entry, message counts, witness/acceptance tallies
//! and decisions, then summarises phases-to-decision across all runs.

use std::process::ExitCode;

use obs::{parse_trace, render_report};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: btreport TRACE.jsonl");
        return ExitCode::FAILURE;
    };
    if args.next().is_some() {
        eprintln!("usage: btreport TRACE.jsonl (exactly one trace file)");
        return ExitCode::FAILURE;
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("btreport: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match parse_trace(&text) {
        Ok(lines) => {
            print!("{}", render_report(&lines));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("btreport: {path} is not a valid trace: {err}");
            ExitCode::FAILURE
        }
    }
}
