//! `btload` — drive client load into a replicated-log cluster and report
//! throughput and latency percentiles.
//!
//! Usage:
//!
//! ```text
//! btload [--n N] [--clients C] [--ops OPS] [--value-bytes B] \
//!        [--window W] [--max-batch MB] [--queue-depth Q] \
//!        [--kill I] [--kill-at FRAC] [--restart-after MS] \
//!        [--wal-dir DIR] [--out PATH] [--seed S]
//! btload --targets HOST:PORT,HOST:PORT,... [--clients C] [--ops OPS] ...
//! ```
//!
//! Without `--targets`, btload self-hosts an `N`-node loopback cluster
//! (WALs under `--wal-dir`, one client service per node) and drives `C`
//! client threads round-robin across the nodes until `OPS` commands have
//! committed. With `--kill I` it SIGKILL-equivalently tears node `I` down
//! once `--kill-at` of the load has committed and restarts it from its
//! WAL `--restart-after` milliseconds later — commits pause at the dead
//! replica's first unfilled slot and resume after recovery, all of which
//! lands in the tail percentiles, which is the point.
//!
//! Every client op is retried (idempotently, by request id) through
//! `Busy` shedding, service timeouts, and connection loss; a command is
//! counted once its `Committed` lands. The run ends by waiting until all
//! live replicas report the same applied length and digest, and writes a
//! JSON report (throughput, p50/p90/p99/p999 latency, mean batch size,
//! peak pipeline depth, per-node log identity) to `--out` (default
//! `BENCH_rsm.json`).
//!
//! With `--targets`, btload instead drives an already-running cluster
//! (e.g. `btnode --proto rsm` processes) through their client ports; the
//! self-hosting-only sections of the report (pipeline gauge, kill
//! schedule) are omitted.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use obs::json::Json;
use rsm::{ClientResp, Op, RsmClient, RsmCluster, RsmClusterOptions};

const USAGE: &str = "usage: btload [--n N] [--clients C] [--ops OPS] \
[--value-bytes B] [--window W] [--max-batch MB] [--queue-depth Q] \
[--kill I] [--kill-at FRAC] [--restart-after MS] \
[--wal-dir DIR] [--out PATH] [--seed S] \
| btload --targets HOST:PORT,... [--clients C] [--ops OPS] ...";

struct Args {
    n: usize,
    clients: usize,
    ops: u64,
    value_bytes: usize,
    window: u64,
    max_batch: usize,
    queue_depth: usize,
    kill: Option<usize>,
    kill_at: f64,
    restart_after: Duration,
    wal_dir: Option<std::path::PathBuf>,
    out: String,
    seed: u64,
    targets: Vec<SocketAddr>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        n: 5,
        clients: 32,
        ops: 2000,
        value_bytes: 64,
        window: 8,
        max_batch: 64,
        queue_depth: 1024,
        kill: None,
        kill_at: 0.4,
        restart_after: Duration::from_millis(500),
        wal_dir: None,
        out: "BENCH_rsm.json".to_string(),
        seed: 1,
        targets: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--n" => a.n = parse(&value("--n")?, "--n")?,
            "--clients" => a.clients = parse(&value("--clients")?, "--clients")?,
            "--ops" => a.ops = parse(&value("--ops")?, "--ops")?,
            "--value-bytes" => a.value_bytes = parse(&value("--value-bytes")?, "--value-bytes")?,
            "--window" => a.window = parse(&value("--window")?, "--window")?,
            "--max-batch" => a.max_batch = parse(&value("--max-batch")?, "--max-batch")?,
            "--queue-depth" => a.queue_depth = parse(&value("--queue-depth")?, "--queue-depth")?,
            "--kill" => a.kill = Some(parse(&value("--kill")?, "--kill")?),
            "--kill-at" => {
                a.kill_at = value("--kill-at")?
                    .parse()
                    .map_err(|_| "--kill-at: not a number".to_string())?;
            }
            "--restart-after" => {
                a.restart_after =
                    Duration::from_millis(parse(&value("--restart-after")?, "--restart-after")?);
            }
            "--wal-dir" => a.wal_dir = Some(value("--wal-dir")?.into()),
            "--out" => a.out = value("--out")?,
            "--seed" => a.seed = parse(&value("--seed")?, "--seed")?,
            "--targets" => {
                for part in value("--targets")?.split(',').filter(|s| !s.is_empty()) {
                    a.targets.push(
                        part.parse()
                            .map_err(|_| format!("cannot parse {part:?} as HOST:PORT"))?,
                    );
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if a.clients == 0 || a.ops == 0 {
        return Err("--clients and --ops must be positive".to_string());
    }
    if let Some(victim) = a.kill {
        if !a.targets.is_empty() {
            return Err("--kill only works in self-hosted mode".to_string());
        }
        if victim >= a.n {
            return Err(format!("--kill {victim} is outside 0..{}", a.n));
        }
        if !(0.0..1.0).contains(&a.kill_at) {
            return Err("--kill-at must be in [0, 1)".to_string());
        }
    }
    Ok(a)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: cannot parse {s:?} as a number"))
}

/// Shared load-run state: committed-op count and the latency samples.
struct LoadStats {
    committed: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

/// One client thread: `ops` puts through `addr`, each retried by request
/// id until its `Committed` arrives, whatever Busy shedding, service
/// timeouts, or connection loss happen on the way. Busy/Timeout verdicts
/// are consumed inside [`RsmClient::propose_with_retry`] (jittered
/// exponential backoff); this loop only handles reconnects, reseating the
/// id stream on each fresh connection so retries stay idempotent.
#[allow(clippy::needless_pass_by_value)]
fn run_client(
    addr: SocketAddr,
    client_id: u64,
    ops: u64,
    value_bytes: usize,
    stats: Arc<LoadStats>,
) {
    let mut conn: Option<RsmClient> = None;
    let value = vec![0x62u8; value_bytes];
    for request in 1..=ops {
        let op = Op::Put {
            key: format!("c{client_id}-{request}").into_bytes(),
            value: value.clone(),
        };
        let started = Instant::now();
        loop {
            let c = match conn.as_mut() {
                Some(c) => c,
                None => match RsmClient::connect(addr, client_id) {
                    Ok(c) => conn.insert(c),
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    }
                },
            };
            c.seek_request(request);
            match c.propose_with_retry(op.clone(), Duration::from_secs(5)) {
                Ok(ClientResp::Committed { .. }) => {
                    let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    stats.latencies_us.lock().expect("latency lock").push(us);
                    stats.committed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Ok(_) => {}            // deadline ran out Busy/Timeout: go again
                Err(_) => conn = None, // reconnect and retry the same id
            }
        }
    }
}

/// Sorted-sample quantile (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn latency_json(sorted: &[u64]) -> Json {
    let mean = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    Json::Obj(vec![
        ("p50_us".into(), Json::num(quantile(sorted, 0.50))),
        ("p90_us".into(), Json::num(quantile(sorted, 0.90))),
        ("p99_us".into(), Json::num(quantile(sorted, 0.99))),
        ("p999_us".into(), Json::num(quantile(sorted, 0.999))),
        ("mean_us".into(), Json::num(mean)),
        (
            "max_us".into(),
            Json::num(sorted.last().copied().unwrap_or(0)),
        ),
    ])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(err) => {
            eprintln!("btload: {err}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.targets.is_empty() {
        run_self_hosted(&args)
    } else {
        run_targets(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("btload: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_self_hosted(args: &Args) -> Result<(), String> {
    let wal_dir = args
        .wal_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("btload-{}", std::process::id())));
    let mut opts = RsmClusterOptions::new(args.n, wal_dir.clone());
    opts.seed = args.seed;
    opts.replica.window = args.window;
    opts.replica.max_batch = args.max_batch;
    opts.service.queue_depth = args.queue_depth;
    opts.service.propose_timeout = Duration::from_secs(30);
    let mut cluster = RsmCluster::start(opts).map_err(|e| format!("cannot start cluster: {e}"))?;
    eprintln!(
        "btload: {}-node loopback cluster up (WALs in {}), driving {} clients × {} ops",
        args.n,
        wal_dir.display(),
        args.clients,
        args.ops.div_ceil(args.clients as u64),
    );

    let stats = Arc::new(LoadStats {
        committed: AtomicU64::new(0),
        latencies_us: Mutex::new(Vec::new()),
    });
    let ops_per_client = args.ops.div_ceil(args.clients as u64);
    let total_ops = ops_per_client * args.clients as u64;
    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = cluster.client_addr(c % args.n);
            let stats = Arc::clone(&stats);
            let value_bytes = args.value_bytes;
            std::thread::spawn(move || {
                run_client(addr, 1 + c as u64, ops_per_client, value_bytes, stats);
            })
        })
        .collect();

    // Watch the pipeline gauge while the load runs, and execute the kill
    // schedule from here (the cluster handle lives on this thread).
    let mut peak_pipeline = 0u64;
    let mut kill_pending = args.kill;
    let mut restart_at: Option<(usize, Instant)> = None;
    let mut killed_restarted = false;
    let kill_threshold = (args.kill_at * total_ops as f64) as u64;
    while workers.iter().any(|w| !w.is_finished()) {
        for i in 0..cluster.n() {
            if !cluster.is_up(i) {
                continue;
            }
            let snap = cluster.registry(i).snapshot();
            let node = i.to_string();
            let labels: &[(&str, &str)] = &[("node", &node)];
            if let Some(depth) = snap.scalar("rsm_pipeline_open", labels) {
                peak_pipeline = peak_pipeline.max(depth);
            }
        }
        if let Some(victim) = kill_pending {
            if stats.committed.load(Ordering::Relaxed) >= kill_threshold {
                eprintln!(
                    "btload: killing node {victim} at {} committed ops",
                    stats.committed.load(Ordering::Relaxed)
                );
                cluster.kill(victim);
                kill_pending = None;
                restart_at = Some((victim, Instant::now() + args.restart_after));
            }
        }
        if let Some((victim, when)) = restart_at {
            if Instant::now() >= when {
                eprintln!("btload: restarting node {victim} from its WAL");
                cluster
                    .restart(victim)
                    .map_err(|e| format!("restart failed: {e}"))?;
                restart_at = None;
                killed_restarted = true;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for w in workers {
        w.join().map_err(|_| "client thread panicked".to_string())?;
    }
    let elapsed = started.elapsed();
    if let Some((victim, _)) = restart_at {
        // Load finished inside the downtime window; still bring it back
        // so the identity check covers the recovered replica.
        cluster
            .restart(victim)
            .map_err(|e| format!("restart failed: {e}"))?;
        killed_restarted = true;
    }

    let (applied, digest) = cluster
        .await_identical(Duration::from_secs(60))
        .ok_or("replica logs did not converge to identical digests")?;

    let committed = stats.committed.load(Ordering::Relaxed);
    let mut sorted = stats.latencies_us.lock().expect("latency lock").clone();
    sorted.sort_unstable();
    let throughput = committed as f64 / elapsed.as_secs_f64();
    // Mean batch size over slots that carried commands (gap-fill and
    // no-op slots excluded — they are scheduling artifacts, not batches).
    let (loaded_slots, batched_cmds) = cluster.view(0).with(|a| {
        let loaded = a.log.iter().filter(|e| !e.commands.is_empty());
        (
            loaded.clone().count() as u64,
            loaded.map(|e| e.commands.len() as u64).sum::<u64>(),
        )
    });
    let mean_batch = if loaded_slots == 0 {
        0.0
    } else {
        batched_cmds as f64 / loaded_slots as f64
    };

    // Server-side commit latency (slot open-to-decide), merged across the
    // nodes' registries — the consensus cost under the client numbers.
    let mut merged = obs::metrics::Snapshot::default();
    for i in 0..cluster.n() {
        merged.merge(&cluster.registry(i).snapshot());
    }
    let commit_latency = merged
        .histogram_total("rsm_commit_latency_us")
        .map_or(Json::Null, |h| {
            Json::Obj(vec![
                (
                    "p50_us".into(),
                    h.quantile(0.50).map_or(Json::Null, Json::num),
                ),
                (
                    "p95_us".into(),
                    h.quantile(0.95).map_or(Json::Null, Json::num),
                ),
                (
                    "p99_us".into(),
                    h.quantile(0.99).map_or(Json::Null, Json::num),
                ),
            ])
        });

    let nodes: Vec<Json> = (0..cluster.n())
        .map(|i| {
            cluster.view(i).with(|a| {
                Json::Obj(vec![
                    ("node".into(), Json::num(i as u64)),
                    ("applied".into(), Json::num(a.next_slot())),
                    ("digest".into(), Json::str(format!("{:016x}", a.digest()))),
                    ("applied_commands".into(), Json::num(a.applied_commands)),
                ])
            })
        })
        .collect();

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("rsm_loopback")),
        (
            "config".into(),
            Json::Obj(vec![
                ("n".into(), Json::num(args.n as u64)),
                ("clients".into(), Json::num(args.clients as u64)),
                ("ops".into(), Json::num(total_ops)),
                ("value_bytes".into(), Json::num(args.value_bytes as u64)),
                ("window".into(), Json::num(args.window)),
                ("max_batch".into(), Json::num(args.max_batch as u64)),
                ("seed".into(), Json::num(args.seed)),
                (
                    "kill".into(),
                    args.kill.map_or(Json::Null, |v| Json::num(v as u64)),
                ),
            ]),
        ),
        ("committed_ops".into(), Json::num(committed)),
        ("duration_s".into(), Json::Num(elapsed.as_secs_f64())),
        ("throughput_ops_s".into(), Json::Num(throughput)),
        ("latency".into(), latency_json(&sorted)),
        ("commit_latency".into(), commit_latency),
        ("applied_slots".into(), Json::num(applied)),
        ("log_digest".into(), Json::str(format!("{digest:016x}"))),
        ("mean_batch_commands".into(), Json::Num(mean_batch)),
        ("peak_pipeline_open".into(), Json::num(peak_pipeline)),
        ("killed_and_recovered".into(), Json::Bool(killed_restarted)),
        ("nodes".into(), Json::Arr(nodes)),
    ]);
    std::fs::write(&args.out, report.render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;
    println!(
        "btload: {committed} ops in {:.2}s — {throughput:.0} ops/s, \
         p50 {}µs p99 {}µs p999 {}µs, {applied} slots (mean batch {mean_batch:.2}, \
         peak pipeline {peak_pipeline}), digest {digest:016x}{} → {}",
        elapsed.as_secs_f64(),
        quantile(&sorted, 0.50),
        quantile(&sorted, 0.99),
        quantile(&sorted, 0.999),
        if killed_restarted {
            ", survived kill+recovery"
        } else {
            ""
        },
        args.out,
    );

    cluster.shutdown();
    if args.wal_dir.is_none() {
        let _ = std::fs::remove_dir_all(wal_dir);
    }
    Ok(())
}

fn run_targets(args: &Args) -> Result<(), String> {
    let stats = Arc::new(LoadStats {
        committed: AtomicU64::new(0),
        latencies_us: Mutex::new(Vec::new()),
    });
    let ops_per_client = args.ops.div_ceil(args.clients as u64);
    let started = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = args.targets[c % args.targets.len()];
            let stats = Arc::clone(&stats);
            let value_bytes = args.value_bytes;
            std::thread::spawn(move || {
                run_client(addr, 1 + c as u64, ops_per_client, value_bytes, stats);
            })
        })
        .collect();
    for w in workers {
        w.join().map_err(|_| "client thread panicked".to_string())?;
    }
    let elapsed = started.elapsed();

    // Log identity across the targets, from their Info responses (poll:
    // laggards may still be applying when the last commit lands).
    let deadline = Instant::now() + Duration::from_secs(60);
    let infos = loop {
        let mut infos = Vec::new();
        for (i, &addr) in args.targets.iter().enumerate() {
            let mut c = RsmClient::connect(addr, 1_000_000 + i as u64)
                .map_err(|e| format!("cannot reach {addr}: {e}"))?;
            match c.info().map_err(|e| format!("info from {addr}: {e}"))? {
                ClientResp::Info {
                    applied, digest, ..
                } => infos.push((applied, digest)),
                other => return Err(format!("unexpected info response: {other:?}")),
            }
        }
        if infos.windows(2).all(|w| w[0] == w[1]) {
            break infos;
        }
        if Instant::now() >= deadline {
            return Err(format!("target logs did not converge: {infos:?}"));
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    let committed = stats.committed.load(Ordering::Relaxed);
    let mut sorted = stats.latencies_us.lock().expect("latency lock").clone();
    sorted.sort_unstable();
    let throughput = committed as f64 / elapsed.as_secs_f64();
    let (applied, digest) = infos[0];
    let report = Json::Obj(vec![
        ("bench".into(), Json::str("rsm_targets")),
        (
            "config".into(),
            Json::Obj(vec![
                (
                    "targets".into(),
                    Json::Arr(
                        args.targets
                            .iter()
                            .map(|a| Json::str(a.to_string()))
                            .collect(),
                    ),
                ),
                ("clients".into(), Json::num(args.clients as u64)),
                ("ops".into(), Json::num(committed)),
                ("value_bytes".into(), Json::num(args.value_bytes as u64)),
            ]),
        ),
        ("committed_ops".into(), Json::num(committed)),
        ("duration_s".into(), Json::Num(elapsed.as_secs_f64())),
        ("throughput_ops_s".into(), Json::Num(throughput)),
        ("latency".into(), latency_json(&sorted)),
        ("applied_slots".into(), Json::num(applied)),
        ("log_digest".into(), Json::str(format!("{digest:016x}"))),
    ]);
    std::fs::write(&args.out, report.render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;
    println!(
        "btload: {committed} ops in {:.2}s — {throughput:.0} ops/s, \
         p50 {}µs p99 {}µs, {applied} slots, digest {digest:016x} → {}",
        elapsed.as_secs_f64(),
        quantile(&sorted, 0.50),
        quantile(&sorted, 0.99),
        args.out,
    );
    Ok(())
}
