//! `consensus-explorer` — run one consensus scenario and watch it.
//!
//! A command-line front end over the whole workspace: pick a protocol, a
//! system size, an attacker, a scheduler and a seed; get the run's verdict
//! and (optionally) its full event trace. Every run is reproducible from
//! its printed configuration.
//!
//! ```sh
//! cargo run --release --bin consensus-explorer -- \
//!     --protocol malicious --n 7 --k 2 --attacker contrarian \
//!     --scheduler delay --seed 42 --trace
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use obs::JsonlSink;

use resilient_consensus::adversary::{
    ContrarianMalicious, CrashPlan, Crashing, EquivocatingEchoer, RandomMalicious, Silent,
    TwoFacedMalicious,
};
use resilient_consensus::benor::{BenOrConfig, BenOrProcess};
use resilient_consensus::bt_core::{
    Config, FailStop, InitiallyDead, Malicious, Simple, Termination,
};
use resilient_consensus::simnet::scheduler::{
    DelayingScheduler, DeliveryOrder, FairScheduler, PartitionScheduler, RoundRobinScheduler,
    Scheduler,
};
use resilient_consensus::simnet::{ProcessId, Role, RunReport, Sim, Value};

#[derive(Debug)]
struct Options {
    protocol: String,
    n: usize,
    k: usize,
    attacker: String,
    scheduler: String,
    termination: String,
    seed: u64,
    trace: bool,
    jsonl: Option<String>,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut opts = Options {
            protocol: "malicious".into(),
            n: 7,
            k: 2,
            attacker: "silent".into(),
            scheduler: "fair".into(),
            termination: "continue".into(),
            seed: 1,
            trace: false,
            jsonl: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |what: &str| {
                args.next()
                    .ok_or_else(|| format!("missing value for {what}"))
            };
            match flag.as_str() {
                "--protocol" => opts.protocol = value("--protocol")?,
                "--n" => opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
                "--k" => opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
                "--attacker" => opts.attacker = value("--attacker")?,
                "--scheduler" => opts.scheduler = value("--scheduler")?,
                "--termination" => opts.termination = value("--termination")?,
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--trace" => opts.trace = true,
                "--jsonl" => opts.jsonl = Some(value("--jsonl")?),
                "--help" | "-h" => return Err(USAGE.into()),
                other => return Err(format!("unknown flag {other}\n{USAGE}")),
            }
        }
        Ok(opts)
    }
}

const USAGE: &str = "usage: consensus-explorer [--protocol failstop|malicious|simple|benor|dead]
                          [--n N] [--k K] [--seed S] [--trace] [--jsonl FILE]
                          [--attacker silent|contrarian|twofaced|equivocator|noise|crash]
                          [--scheduler fair|lifo|rr|delay|partition]
                          [--termination continue|wildcard]   (malicious only)";

fn scheduler_for<M: 'static>(name: &str, n: usize) -> Result<Box<dyn Scheduler<M>>, String> {
    Ok(match name {
        "fair" => Box::new(FairScheduler::new()),
        "lifo" => Box::new(FairScheduler::new().delivery_order(DeliveryOrder::Lifo)),
        "rr" => Box::new(RoundRobinScheduler::new()),
        "delay" => Box::new(DelayingScheduler::new(n, &[ProcessId::new(0)])),
        "partition" => {
            let left: Vec<ProcessId> = ProcessId::all(n).take(n / 2).collect();
            Box::new(PartitionScheduler::new(n, &left, 50, 4))
        }
        other => return Err(format!("unknown scheduler {other}\n{USAGE}")),
    })
}

fn inputs(count: usize) -> impl Iterator<Item = Value> {
    (0..count).map(|i| Value::from(i % 2 == 0))
}

fn run_malicious(o: &Options, sink: Option<&Arc<Mutex<JsonlSink>>>) -> Result<RunReport, String> {
    let config = Config::malicious(o.n, o.k).map_err(|e| e.to_string())?;
    let termination = match o.termination.as_str() {
        "continue" => Termination::Continue,
        "wildcard" => Termination::WildcardExit,
        other => return Err(format!("unknown termination {other}\n{USAGE}")),
    };
    let mut b = Sim::builder();
    for input in inputs(o.n - o.k) {
        b.process(
            Box::new(Malicious::with_termination(config, input, termination)),
            Role::Correct,
        );
    }
    for _ in 0..o.k {
        let attacker: Box<dyn resilient_consensus::simnet::Process<Msg = _>> =
            match o.attacker.as_str() {
                "silent" => Box::new(Silent::new()),
                "contrarian" => Box::new(ContrarianMalicious::new(config)),
                "twofaced" => Box::new(TwoFacedMalicious::new(config)),
                "equivocator" => Box::new(EquivocatingEchoer::new(config)),
                "noise" => Box::new(RandomMalicious::new(config, 6)),
                other => return Err(format!("unknown attacker {other}\n{USAGE}")),
            };
        b.process(attacker, Role::Faulty);
    }
    b.scheduler(scheduler_for(&o.scheduler, o.n)?);
    b.seed(o.seed).step_limit(16_000_000);
    if o.trace {
        b.trace_capacity(100_000);
    }
    if let Some(s) = sink {
        b.subscriber(s.clone());
    }
    Ok(b.build().run())
}

fn run_failstop(o: &Options, sink: Option<&Arc<Mutex<JsonlSink>>>) -> Result<RunReport, String> {
    let config = Config::fail_stop(o.n, o.k).map_err(|e| e.to_string())?;
    let mut b = Sim::builder();
    for input in inputs(o.n - o.k) {
        b.process(Box::new(FailStop::new(config, input)), Role::Correct);
    }
    for j in 0..o.k {
        // `--attacker` selects the crash flavour here; anything other than
        // "silent" uses staggered mid-run crashes.
        if o.attacker == "silent" {
            b.process(Box::new(Silent::new()), Role::Faulty);
        } else {
            let plan = if j % 2 == 0 {
                CrashPlan::AfterSends(o.n as u64 / 2)
            } else {
                CrashPlan::AtPhase(1 + j as u64)
            };
            b.process(
                Box::new(Crashing::new(FailStop::new(config, Value::Zero), plan)),
                Role::Faulty,
            );
        }
    }
    b.scheduler(scheduler_for(&o.scheduler, o.n)?);
    b.seed(o.seed).step_limit(8_000_000);
    if o.trace {
        b.trace_capacity(100_000);
    }
    if let Some(s) = sink {
        b.subscriber(s.clone());
    }
    Ok(b.build().run())
}

fn run_simple(o: &Options, sink: Option<&Arc<Mutex<JsonlSink>>>) -> Result<RunReport, String> {
    let config = Config::malicious(o.n, o.k).map_err(|e| e.to_string())?;
    let mut b = Sim::builder();
    for input in inputs(o.n) {
        b.process(Box::new(Simple::new(config, input)), Role::Correct);
    }
    b.scheduler(scheduler_for(&o.scheduler, o.n)?);
    b.seed(o.seed).step_limit(8_000_000);
    if o.trace {
        b.trace_capacity(100_000);
    }
    if let Some(s) = sink {
        b.subscriber(s.clone());
    }
    Ok(b.build().run())
}

fn run_benor(o: &Options, sink: Option<&Arc<Mutex<JsonlSink>>>) -> Result<RunReport, String> {
    let config = BenOrConfig::fail_stop(o.n, o.k).map_err(|e| e.to_string())?;
    let mut b = Sim::builder();
    for input in inputs(o.n) {
        b.process(Box::new(BenOrProcess::new(config, input)), Role::Correct);
    }
    b.scheduler(scheduler_for(&o.scheduler, o.n)?);
    b.seed(o.seed).step_limit(16_000_000);
    if o.trace {
        b.trace_capacity(100_000);
    }
    if let Some(s) = sink {
        b.subscriber(s.clone());
    }
    Ok(b.build().run())
}

fn run_dead(o: &Options, sink: Option<&Arc<Mutex<JsonlSink>>>) -> Result<RunReport, String> {
    let mut b = Sim::builder();
    for input in inputs(o.n - o.k) {
        b.process(Box::new(InitiallyDead::new(o.n, input)), Role::Correct);
    }
    for _ in 0..o.k {
        b.process(Box::new(Silent::new()), Role::Faulty);
    }
    b.scheduler(scheduler_for(&o.scheduler, o.n)?);
    b.seed(o.seed).step_limit(2_000_000);
    if o.trace {
        b.trace_capacity(100_000);
    }
    if let Some(s) = sink {
        b.subscriber(s.clone());
    }
    Ok(b.build().run())
}

fn main() -> ExitCode {
    let opts = match Options::parse() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let sink = opts
        .jsonl
        .as_ref()
        .map(|_| Arc::new(Mutex::new(JsonlSink::new())));
    let report = match opts.protocol.as_str() {
        "malicious" => run_malicious(&opts, sink.as_ref()),
        "failstop" => run_failstop(&opts, sink.as_ref()),
        "simple" => run_simple(&opts, sink.as_ref()),
        "benor" => run_benor(&opts, sink.as_ref()),
        "dead" => run_dead(&opts, sink.as_ref()),
        other => Err(format!("unknown protocol {other}\n{USAGE}")),
    };
    let report = match report {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let (Some(path), Some(sink)) = (&opts.jsonl, &sink) {
        let sink = sink.lock().expect("jsonl sink poisoned");
        if let Err(err) = sink.write_to_file(path) {
            eprintln!("cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote JSONL trace to {path} (replay with: btreport {path})");
    }

    // Write through a fallible handle so a closed pipe (e.g. `| head`)
    // ends the program quietly instead of panicking.
    let mut out = std::io::stdout().lock();
    let verdict_ok = report.agreement();
    let mut emit = || -> std::io::Result<()> {
        writeln!(out, "configuration:   {opts:?}")?;
        writeln!(out, "status:          {:?}", report.status)?;
        writeln!(out, "agreement:       {}", report.agreement())?;
        writeln!(out, "all decided:     {}", report.all_correct_decided())?;
        writeln!(out, "decided value:   {:?}", report.decided_value())?;
        writeln!(out, "phases:          {:?}", report.phases_to_decision())?;
        writeln!(out, "steps:           {}", report.steps)?;
        writeln!(out, "messages sent:   {}", report.metrics.messages_sent)?;
        writeln!(out, "messages dropped:{}", report.metrics.messages_dropped)?;
        if let Some(trace) = &report.trace {
            writeln!(out, "\n--- trace ({} events) ---", trace.events().len())?;
            write!(out, "{}", trace.render())?;
        }
        Ok(())
    };
    let _ = emit(); // a broken pipe is the reader's choice, not an error
    if verdict_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
