//! # resilient-consensus — facade crate
//!
//! One-stop re-export of the reproduction of Bracha & Toueg, *Resilient
//! Consensus Protocols* (PODC 1983). See the individual crates for depth:
//!
//! * [`simnet`] — the asynchronous message-passing simulator;
//! * [`bt_core`] — the paper's protocols (Figures 1 and 2, §4.1 variant,
//!   §5 footnote protocol);
//! * [`adversary`] — crash schedules and Byzantine strategies;
//! * [`benor`] — Ben-Or's randomized consensus, the §6 baseline;
//! * [`markov`] — the §4 Markov-chain performance analysis;
//! * [`modelcheck`] — executable lower-bound demonstrations;
//! * [`obs`] — observability sinks (per-phase telemetry, JSONL traces,
//!   console narration) for the simulator's subscriber hook;
//! * [`netstack`] — the threaded TCP runtime running the same protocol
//!   state machines over real sockets (see `docs/NETWORKING.md`);
//! * [`rsm`] — the replicated log service: pipelined multi-decree
//!   consensus with batching, a client-facing TCP API, and WAL-backed
//!   recovery (see `docs/RSM.md`);
//! * [`dst`] — deterministic simulation testing: the seeded `btfuzz`
//!   schedule/fault fuzzer with counterexample shrinking and replayable
//!   repro artifacts across both runtimes (see `docs/TESTING.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adversary;
pub use benor;
pub use bt_core;
pub use dst;
pub use markov;
pub use modelcheck;
pub use netstack;
pub use obs;
pub use rsm;
pub use simnet;

pub use bt_core::{Config, FailStop, InitiallyDead, Malicious, Simple};
pub use simnet::{Role, RunReport, Sim, Value};
