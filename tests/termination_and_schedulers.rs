//! The Figure 2 termination procedure (wildcard exit) and hostile
//! scheduling, end to end.

use resilient_consensus::adversary::{ContrarianMalicious, Silent};
use resilient_consensus::bt_core::{Config, Malicious, MaliciousMsg, Termination};
use resilient_consensus::simnet::scheduler::{DeliveryOrder, FairScheduler};
use resilient_consensus::simnet::{ProcessId, Role, Sim, StopWhen, Value};

fn mixed_inputs(count: usize) -> impl Iterator<Item = Value> {
    (0..count).map(|i| Value::from(i % 2 == 0))
}

#[test]
fn wildcard_exit_and_continue_agree_on_the_same_seeds() {
    // The paper argues the exit procedure "has the same effect as the
    // actual participation of p in the protocol". The runs are not
    // step-identical (different messages flow), but both modes must satisfy
    // the consensus properties on every seed, including with attackers.
    let n = 7;
    let k = 2;
    let config = Config::malicious(n, k).unwrap();
    for termination in [Termination::Continue, Termination::WildcardExit] {
        for seed in 0..30 {
            let mut b = Sim::builder();
            for input in mixed_inputs(n - k) {
                b.process(
                    Box::new(Malicious::with_termination(config, input, termination)),
                    Role::Correct,
                );
            }
            for _ in 0..k {
                b.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
            }
            let r = b.seed(seed).step_limit(16_000_000).build().run();
            assert!(r.agreement(), "{termination:?} seed {seed}");
            assert!(
                r.all_correct_decided(),
                "{termination:?} seed {seed}: {:?}",
                r.status
            );
        }
    }
}

#[test]
fn wildcard_exit_releases_a_laggard_after_deciders_left() {
    // Force one process to lag (all its incoming mail delayed by LIFO
    // delivery and heavy weighting toward others), with WildcardExit so the
    // deciders genuinely leave the protocol. The wildcard messages must
    // still carry the laggard to a decision.
    let n = 4;
    let config = Config::malicious(n, 1).unwrap();
    for seed in 0..20 {
        let mut b = Sim::builder();
        for input in mixed_inputs(n) {
            b.process(
                Box::new(Malicious::with_termination(
                    config,
                    input,
                    Termination::WildcardExit,
                )),
                Role::Correct,
            );
        }
        // p0 runs at 1/1000 the speed of the others.
        let mut weights = vec![1000.0; n];
        weights[0] = 1.0;
        b.scheduler(Box::new(
            FairScheduler::new()
                .delivery_order(DeliveryOrder::Random)
                .with_weights(weights),
        ));
        let r = b.seed(seed).step_limit(16_000_000).build().run();
        assert!(r.agreement(), "seed {seed}");
        assert!(
            r.all_correct_decided(),
            "seed {seed}: laggard stranded ({:?})",
            r.status
        );
    }
}

#[test]
fn post_decision_traffic_is_finite_with_wildcard_exit() {
    // With WildcardExit every correct process halts after deciding, so a
    // run driven to quiescence (not stopped at first decision) terminates
    // with finite message count.
    let n = 4;
    let config = Config::malicious(n, 1).unwrap();
    let mut b = Sim::builder();
    for input in mixed_inputs(n) {
        b.process(
            Box::new(Malicious::with_termination(
                config,
                input,
                Termination::WildcardExit,
            )),
            Role::Correct,
        );
    }
    let r = b
        .seed(5)
        .stop_when(StopWhen::AllCorrectHalted)
        .step_limit(1_000_000)
        .build()
        .run();
    assert!(r.all_correct_decided());
    assert!(
        r.steps < 1_000_000,
        "wildcard exit must quiesce, not run to the step limit"
    );
}

#[test]
fn lifo_delivery_still_converges() {
    // DeliveryOrder::Lifo is a legal resolution of the nondeterminism:
    // newest mail first. The protocols' phase bookkeeping (deferral of
    // future phases, discard of stale ones) must cope.
    let n = 7;
    let k = 2;
    let config = Config::malicious(n, k).unwrap();
    for seed in 0..10 {
        let mut b = Sim::builder();
        for input in mixed_inputs(n - k) {
            b.process(Box::new(Malicious::new(config, input)), Role::Correct);
        }
        for _ in 0..k {
            b.process(Box::new(Silent::<MaliciousMsg>::new()), Role::Faulty);
        }
        b.scheduler(Box::new(
            FairScheduler::new().delivery_order(DeliveryOrder::Lifo),
        ));
        let r = b.seed(seed).step_limit(16_000_000).build().run();
        assert!(r.agreement(), "seed {seed}");
        assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
    }
}

#[test]
fn weighted_fair_scheduler_preserves_liveness_under_extreme_skew() {
    let n = 5;
    let config = Config::fail_stop(n, 2).unwrap();
    use resilient_consensus::bt_core::FailStop;
    for seed in 0..10 {
        let mut b = Sim::builder();
        for input in mixed_inputs(n) {
            b.process(Box::new(FailStop::new(config, input)), Role::Correct);
        }
        let weights = vec![1.0, 10.0, 100.0, 1000.0, 10000.0];
        b.scheduler(Box::new(FairScheduler::new().with_weights(weights)));
        let r = b.seed(seed).step_limit(4_000_000).build().run();
        assert!(r.agreement(), "seed {seed}");
        assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
    }
    let _ = ProcessId::new(0);
}
