//! Cross-crate integration: the three consensus properties (consistency,
//! convergence, bivalence/validity) for every protocol, under every
//! scheduler, with every fault mix the paper allows.

use resilient_consensus::adversary::{
    ContrarianMalicious, CrashPlan, Crashing, EquivocatingEchoer, Silent, TwoFacedMalicious,
};
use resilient_consensus::benor::{BenOrConfig, BenOrProcess};
use resilient_consensus::bt_core::{Config, FailStop, Malicious, Simple};
use resilient_consensus::simnet::scheduler::{
    DelayingScheduler, FairScheduler, PartitionScheduler, RoundRobinScheduler, Scheduler,
};
use resilient_consensus::simnet::{ProcessId, Role, RunReport, Sim, Value};

/// A named scheduler constructor, rebuilt fresh for every run.
type SchedulerFactory<M> = Box<dyn Fn() -> Box<dyn Scheduler<M>>>;

/// Named scheduler factories, rebuilt fresh for every run.
fn scheduler_factories<M: 'static>(n: usize) -> Vec<(&'static str, SchedulerFactory<M>)> {
    let half: Vec<ProcessId> = ProcessId::all(n).take(n / 2).collect();
    vec![
        ("fair", Box::new(|| Box::new(FairScheduler::new()) as _)),
        (
            "round-robin",
            Box::new(|| Box::new(RoundRobinScheduler::new()) as _),
        ),
        (
            "delaying-p0",
            Box::new(move || Box::new(DelayingScheduler::new(n, &[ProcessId::new(0)])) as _),
        ),
        (
            "partition",
            Box::new(move || Box::new(PartitionScheduler::new(n, &half, 50, 4)) as _),
        ),
    ]
}

#[test]
fn failstop_all_schedulers_all_crash_patterns() {
    let n = 7;
    let k = 3;
    let config = Config::fail_stop(n, k).unwrap();
    for (name, make_scheduler) in scheduler_factories(n) {
        for seed in 0..5 {
            let mut b = Sim::builder();
            for i in 0..4 {
                b.process(
                    Box::new(FailStop::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            b.process(
                Box::new(Crashing::new(
                    FailStop::new(config, Value::One),
                    CrashPlan::AfterSends(2),
                )),
                Role::Faulty,
            );
            b.process(
                Box::new(Crashing::new(
                    FailStop::new(config, Value::Zero),
                    CrashPlan::AtPhase(2),
                )),
                Role::Faulty,
            );
            b.process(Box::new(Silent::new()), Role::Faulty);
            b.scheduler(make_scheduler());
            let r = b.seed(seed).step_limit(4_000_000).build().run();
            assert!(r.agreement(), "{name} seed {seed}: consistency violated");
            assert!(
                r.all_correct_decided(),
                "{name} seed {seed}: convergence violated ({:?})",
                r.status
            );
        }
    }
}

#[test]
fn malicious_all_schedulers_mixed_attackers() {
    let n = 10;
    let k = 3;
    let config = Config::malicious(n, k).unwrap();
    for (name, make_scheduler) in scheduler_factories(n) {
        for seed in 0..4 {
            let mut b = Sim::builder();
            for i in 0..n - k {
                b.process(
                    Box::new(Malicious::new(config, Value::from(i % 3 != 0))),
                    Role::Correct,
                );
            }
            // One of each attacker family.
            b.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
            b.process(Box::new(TwoFacedMalicious::new(config)), Role::Faulty);
            b.process(Box::new(EquivocatingEchoer::new(config)), Role::Faulty);
            b.scheduler(make_scheduler());
            let r = b.seed(seed).step_limit(16_000_000).build().run();
            assert!(r.agreement(), "{name} seed {seed}: consistency violated");
            assert!(
                r.all_correct_decided(),
                "{name} seed {seed}: convergence violated ({:?})",
                r.status
            );
        }
    }
}

#[test]
fn validity_unanimous_inputs_all_protocols() {
    // Bivalence's flip side: unanimity must decide the common input.
    for v in [Value::Zero, Value::One] {
        // Fig. 1
        let config = Config::fail_stop(5, 2).unwrap();
        let mut b = Sim::builder();
        for _ in 0..5 {
            b.process(Box::new(FailStop::new(config, v)), Role::Correct);
        }
        assert_eq!(b.seed(1).build().run().decided_value(), Some(v));

        // Fig. 2
        let config = Config::malicious(7, 2).unwrap();
        let mut b = Sim::builder();
        for _ in 0..7 {
            b.process(Box::new(Malicious::new(config, v)), Role::Correct);
        }
        assert_eq!(b.seed(1).build().run().decided_value(), Some(v));

        // §4.1 variant
        let mut b = Sim::builder();
        for _ in 0..7 {
            b.process(Box::new(Simple::new(config, v)), Role::Correct);
        }
        assert_eq!(b.seed(1).build().run().decided_value(), Some(v));

        // Ben-Or
        let config = BenOrConfig::fail_stop(5, 2).unwrap();
        let mut b = Sim::builder();
        for _ in 0..5 {
            b.process(Box::new(BenOrProcess::new(config, v)), Role::Correct);
        }
        assert_eq!(b.seed(1).build().run().decided_value(), Some(v));
    }
}

#[test]
fn bivalence_both_values_reachable_mixed_inputs() {
    // With mixed inputs and all processes correct, both decision values
    // occur across seeds (the protocols' bivalence in practice).
    let config = Config::malicious(4, 1).unwrap();
    let mut seen = [false; 2];
    for seed in 0..300 {
        let mut b = Sim::builder();
        for i in 0..4 {
            b.process(
                Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        let r = b.seed(seed).step_limit(8_000_000).build().run();
        if let Some(v) = r.decided_value() {
            seen[v.index()] = true;
        }
        if seen[0] && seen[1] {
            return;
        }
    }
    panic!("only one decision value ever reached: {seen:?}");
}

#[test]
fn reports_are_internally_consistent() {
    let config = Config::fail_stop(5, 2).unwrap();
    let mut b = Sim::builder();
    for i in 0..5 {
        b.process(
            Box::new(FailStop::new(config, Value::from(i % 2 == 0))),
            Role::Correct,
        );
    }
    let r: RunReport = b.seed(9).trace_capacity(100_000).build().run();
    // Decisions in the trace match the report.
    let trace = r.trace.as_ref().unwrap();
    for (pid, value) in trace.decisions() {
        assert_eq!(r.decisions[pid.index()], Some(value));
    }
    // Message accounting balances.
    assert_eq!(
        r.metrics.messages_sent,
        r.metrics.messages_delivered + r.metrics.messages_dropped + r.metrics.in_flight()
    );
    // Every decided process has a decision step no later than the run end.
    for i in r.correct() {
        if r.decisions[i].is_some() {
            assert!(r.decision_steps[i].unwrap() <= r.steps);
        }
    }
}
