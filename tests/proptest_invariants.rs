//! Property-based tests: the consensus properties and the analytic
//! machinery must hold over randomly drawn configurations, inputs, seeds
//! and fault placements — not just the hand-picked cases.

use proptest::prelude::*;

use resilient_consensus::adversary::{ContrarianMalicious, CrashPlan, Crashing};
use resilient_consensus::bt_core::{Config, FailStop, Malicious, Simple};
use resilient_consensus::markov::{
    binomial_pmf, hypergeometric_pmf, hypergeometric_tail_gt, phi_upper, FailStopChain,
    MaliciousChain, Matrix,
};
use resilient_consensus::simnet::{Role, Sim, Summary, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Figure 1 with random inputs, seeds, and up to k mid-run crashes:
    /// consistency and convergence always hold.
    #[test]
    fn failstop_consensus_properties(
        n in 3usize..10,
        seed in any::<u64>(),
        crash_sends in 0u64..40,
        inputs_bits in any::<u32>(),
    ) {
        let k = (n - 1) / 2;
        let config = Config::fail_stop(n, k).unwrap();
        let mut b = Sim::builder();
        for i in 0..n - k {
            let input = Value::from(inputs_bits >> i & 1 == 1);
            b.process(Box::new(FailStop::new(config, input)), Role::Correct);
        }
        for j in 0..k {
            let input = Value::from(inputs_bits >> (n - k + j) & 1 == 1);
            b.process(
                Box::new(Crashing::new(
                    FailStop::new(config, input),
                    CrashPlan::AfterSends(crash_sends + j as u64),
                )),
                Role::Faulty,
            );
        }
        let r = b.seed(seed).step_limit(4_000_000).build().run();
        prop_assert!(r.agreement(), "consistency violated");
        prop_assert!(r.all_correct_decided(), "convergence violated: {:?}", r.status);
    }

    /// Figure 2 with random inputs and balancing attackers at full k.
    #[test]
    fn malicious_consensus_properties(
        n in 4usize..11,
        seed in any::<u64>(),
        inputs_bits in any::<u32>(),
    ) {
        let k = (n - 1) / 3;
        let config = Config::malicious(n, k).unwrap();
        let mut b = Sim::builder();
        for i in 0..n - k {
            let input = Value::from(inputs_bits >> i & 1 == 1);
            b.process(Box::new(Malicious::new(config, input)), Role::Correct);
        }
        for _ in 0..k {
            b.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
        }
        let r = b.seed(seed).step_limit(16_000_000).build().run();
        prop_assert!(r.agreement(), "consistency violated");
        prop_assert!(r.all_correct_decided(), "convergence violated: {:?}", r.status);
    }

    /// Validity: unanimous inputs always decide that input, whatever the
    /// protocol, n, and seed.
    #[test]
    fn unanimity_decides_the_input(
        n in 2usize..9,
        seed in any::<u64>(),
        one in any::<bool>(),
    ) {
        let v = Value::from(one);
        let k = (n - 1) / 3;
        let config = Config::malicious(n, k).unwrap();
        let mut b = Sim::builder();
        for _ in 0..n {
            b.process(Box::new(Simple::new(config, v)), Role::Correct);
        }
        let r = b.seed(seed).step_limit(4_000_000).build().run();
        prop_assert_eq!(r.decided_value(), Some(v));
    }

    /// Determinism: the same seed replays the same run, bit for bit.
    #[test]
    fn runs_are_deterministic(n in 3usize..8, seed in any::<u64>(), bits in any::<u16>()) {
        let run = |seed: u64| {
            let config = Config::malicious(n, (n - 1) / 3).unwrap();
            let mut b = Sim::builder();
            for i in 0..n {
                b.process(
                    Box::new(Malicious::new(config, Value::from(bits >> i & 1 == 1))),
                    Role::Correct,
                );
            }
            b.seed(seed).step_limit(8_000_000).build().run()
        };
        let a = run(seed);
        let b2 = run(seed);
        prop_assert_eq!(a.decisions, b2.decisions);
        prop_assert_eq!(a.steps, b2.steps);
        prop_assert_eq!(a.metrics.messages_sent, b2.metrics.messages_sent);
    }

    /// The transition rows of both §4 chains are stochastic for arbitrary
    /// parameters.
    #[test]
    fn chain_rows_are_stochastic(n in 6usize..40, kf in 0usize..10) {
        let k = kf.min((n - 1) / 2);
        let c = FailStopChain::new(n, k);
        let p = c.chain().transition_matrix();
        for i in 0..p.rows() {
            let sum = p.row_sum(i);
            prop_assert!((sum - 1.0).abs() < 1e-8, "row {i} sums to {sum}");
        }

        let km = kf.min(n / 5);
        let m = MaliciousChain::new(n, km);
        let p = m.chain().transition_matrix();
        for i in 0..p.rows() {
            let sum = p.row_sum(i);
            prop_assert!((sum - 1.0).abs() < 1e-8, "malicious row {i} sums to {sum}");
        }
    }

    /// Hypergeometric and binomial pmfs are probability distributions.
    #[test]
    fn pmfs_normalize(n in 1u64..60, b in 0u64..60, r in 0u64..60, pp in 0.0f64..1.0) {
        let b = b.min(n);
        let r = r.min(n);
        let total: f64 = (0..=r).map(|k| hypergeometric_pmf(n, b, r, k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "hypergeometric sums to {total}");

        let total: f64 = (0..=n).map(|j| binomial_pmf(n, pp, j)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "binomial sums to {total}");
    }

    /// Tails are monotone in the threshold and bounded by [0, 1].
    #[test]
    fn tails_monotone(n in 2u64..50, b in 0u64..50, r in 1u64..50) {
        let b = b.min(n);
        let r = r.min(n);
        let mut prev = 1.0;
        for thr in 0..=r {
            let t = hypergeometric_tail_gt(n, b, r, thr);
            prop_assert!((0.0..=1.0).contains(&t));
            prop_assert!(t <= prev + 1e-12);
            prev = t;
        }
    }

    /// Φ is a decreasing function with the right fixed point.
    #[test]
    fn phi_upper_is_decreasing(x in -4.0f64..4.0, dx in 0.001f64..2.0) {
        prop_assert!(phi_upper(x + dx) <= phi_upper(x) + 1e-12);
        prop_assert!((phi_upper(0.0) - 0.5).abs() < 1e-7);
    }

    /// Matrix inversion round-trips on random diagonally dominant matrices.
    #[test]
    fn matrix_inverse_round_trip(vals in proptest::collection::vec(-1.0f64..1.0, 9)) {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m[(i, j)] = vals[i * 3 + j];
            }
            m[(i, i)] += 4.0; // diagonal dominance ⇒ nonsingular
        }
        let inv = m.inverse().expect("diagonally dominant");
        let id = m.mul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    /// Summary statistics are order-invariant and within-range.
    #[test]
    fn summary_properties(mut xs in proptest::collection::vec(0.0f64..1e6, 1..80)) {
        let s1 = Summary::of(xs.clone());
        xs.reverse();
        let s2 = Summary::of(xs.clone());
        prop_assert_eq!(s1.count, s2.count);
        prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        prop_assert_eq!(s1.p50, s2.p50);
        prop_assert!(s1.min <= s1.p50 && s1.p50 <= s1.p95 && s1.p95 <= s1.max);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s1.mean >= lo - 1e-9 && s1.mean <= hi + 1e-9);
    }
}
