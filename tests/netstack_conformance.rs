//! Transport-conformance suite for `crates/netstack`.
//!
//! These tests pin the *observable* delivery contract of the socket
//! runtime — per-link FIFO framing, cumulative-ack monotonicity,
//! byte-identical backlog replay after a reconnect — through the public
//! API only (`spawn`, `Cluster`, and the exported frame codec). They are
//! written to pass identically on any implementation of that contract,
//! so they gate transport rewrites rather than implementation details:
//! a runtime that reorders a link, regresses an ack, or replays a
//! different byte for a used sequence number fails here before any
//! consensus-level symptom appears.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use resilient_consensus::bt_core::{Config, FailStop, FailStopMsg};
use resilient_consensus::netstack::{
    read_frame, sockets_available, spawn, write_frame, Cluster, ClusterOptions, FaultPlan, Frame,
    NodeConfig, NodeHandle, Proto,
};
use resilient_consensus::simnet::{ProcessId, RunStatus, Value, Wire};

macro_rules! require_sockets {
    () => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
    };
    // Inside `proptest!` bodies the early return must carry `Ok(())`.
    (prop) => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return Ok(());
        }
    };
}

/// Boots one real node (id 0, fail-stop, no WAL) whose peers are fake
/// listeners owned by the test. Returns the handle, the fake peers'
/// listeners (ids 1..n), and node 0's own address.
fn spawn_probe_node(n: usize, seed: u64) -> (NodeHandle, Vec<TcpListener>, SocketAddr) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let mut listeners = listeners.into_iter();
    let node_listener = listeners.next().expect("node 0 listener");
    let fake_peers: Vec<TcpListener> = listeners.collect();

    let config = Config::fail_stop(n, (n - 1) / 2).expect("within the fail-stop bound");
    let cfg = NodeConfig {
        id: ProcessId::new(0),
        n,
        seed,
        k: (n - 1) / 2,
        fault: FaultPlan::reliable(),
        expect_history: false,
        wal: None,
        snapshot_every: 0,
        metrics: None,
    };
    let node = spawn(
        cfg,
        node_listener,
        addrs.clone(),
        Box::new(FailStop::new(config, Value::One)),
        None,
    )
    .expect("boot the probe node");
    (node, fake_peers, addrs[0])
}

/// Accepts one connection and reads `Msg` frames until `window` elapses
/// with no traffic; the connection drops when this returns.
fn capture_msgs(listener: &TcpListener, window: Duration) -> Vec<(u64, Vec<u8>)> {
    let (mut conn, _) = listener.accept().expect("node dials the fake peer");
    conn.set_read_timeout(Some(window)).expect("read timeout");
    let mut msgs = Vec::new();
    loop {
        match read_frame(&mut conn) {
            Ok(Frame::Msg { seq, payload }) => msgs.push((seq, payload)),
            Ok(_) => {}
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::UnexpectedEof =>
            {
                break;
            }
            Err(e) => panic!("unexpected read error from node under test: {e}"),
        }
    }
    msgs
}

/// A valid fail-stop payload for inbound probes (contents irrelevant to
/// the framing layer, but honest enough to survive wire validation).
fn probe_payload(value: Value) -> Vec<u8> {
    FailStopMsg {
        phase: 0,
        value,
        cardinality: 1,
    }
    .to_bytes()
}

/// Polls a counter until it reaches `want` or two seconds elapse —
/// counters advance in runtime threads, a beat behind the ack we read.
fn await_counter(read: impl Fn() -> u64, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while read() < want {
        assert!(Instant::now() < deadline, "{what} never reached {want}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Polls a counter until it holds the same value for 300ms — delivery
/// happens a beat behind the ack, so comparisons snapshot at quiescence.
fn quiesce(read: impl Fn() -> u64) -> u64 {
    let mut last = read();
    let mut stable_since = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(10));
        let now = read();
        if now != last {
            last = now;
            stable_since = Instant::now();
        } else if stable_since.elapsed() >= Duration::from_millis(300) {
            return last;
        }
    }
}

/// Per-link FIFO: on a fresh connection every link carries sequence
/// numbers 0,1,2,… in arrival order — the transport may coalesce frames
/// but may not reorder or skip within a link.
#[test]
fn outbound_links_are_fifo_and_contiguous() {
    require_sockets!();
    let (mut node, fake_peers, my_addr) = spawn_probe_node(3, 11);

    // Feed one inbound message so the node's state machine advances and
    // sends beyond its initial broadcast.
    let mut from_p1 = TcpStream::connect(my_addr).expect("dial node 0");
    write_frame(
        &mut from_p1,
        &Frame::Hello {
            from: ProcessId::new(1),
        },
    )
    .expect("hello");
    write_frame(
        &mut from_p1,
        &Frame::Msg {
            seq: 0,
            payload: probe_payload(Value::One),
        },
    )
    .expect("probe msg");

    for (peer, listener) in fake_peers.iter().enumerate() {
        let msgs = capture_msgs(listener, Duration::from_millis(600));
        assert!(!msgs.is_empty(), "fake peer {peer} saw traffic");
        for (i, (seq, _)) in msgs.iter().enumerate() {
            assert_eq!(
                *seq, i as u64,
                "fake peer {peer}: link seqs must arrive contiguous from 0"
            );
        }
    }
    node.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cumulative-ack monotonicity, exercised from the sender's side of
    /// the wire: a fake peer streams in-order frames and must read back
    /// an ack of exactly `sent` after each; a duplicate or a skipped-
    /// ahead seq re-elicits the *unchanged* cumulative ack (and the gap
    /// is counted, never delivered); delivery then resumes at the
    /// expected seq as if the probe never happened.
    #[test]
    fn inbound_acks_are_cumulative_and_monotone(
        seed in any::<u64>(),
        batch in 3u64..12,
    ) {
        require_sockets!(prop);
        let (mut node, _fake_peers, my_addr) = spawn_probe_node(3, seed);
        let me = ProcessId::new(1);

        let mut conn = TcpStream::connect(my_addr).expect("dial node 0");
        conn.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
        write_frame(&mut conn, &Frame::Hello { from: me }).expect("hello");

        let read_ack = |conn: &mut TcpStream| -> u64 {
            loop {
                match read_frame(conn).expect("node answers every Msg with an Ack") {
                    Frame::Ack { next } => return next,
                    _ => continue,
                }
            }
        };

        // In-order stream: ack after frame i is exactly i+1.
        let mut last_ack = 0;
        for seq in 0..batch {
            let value = if seq % 2 == 0 { Value::One } else { Value::Zero };
            write_frame(&mut conn, &Frame::Msg { seq, payload: probe_payload(value) })
                .expect("in-order msg");
            let ack = read_ack(&mut conn);
            prop_assert_eq!(ack, seq + 1, "cumulative ack after in-order delivery");
            prop_assert!(ack >= last_ack, "acks never regress");
            last_ack = ack;
        }
        prop_assert_eq!(node.next_expected_from(me), batch);

        // Duplicate of an already-delivered seq: re-acked, not re-delivered.
        let delivered_before = quiesce(|| node.messages_delivered());
        write_frame(&mut conn, &Frame::Msg { seq: 0, payload: probe_payload(Value::One) })
            .expect("duplicate msg");
        prop_assert_eq!(read_ack(&mut conn), batch, "duplicate re-elicits the cumulative ack");

        // Skipping ahead: acked at the unchanged watermark, counted as a
        // gap, never delivered out of order.
        write_frame(&mut conn, &Frame::Msg { seq: batch + 5, payload: probe_payload(Value::One) })
            .expect("gap msg");
        prop_assert_eq!(read_ack(&mut conn), batch, "a gap cannot advance the cumulative ack");
        await_counter(|| node.seq_gaps(), 1, "seq-gap counter");
        prop_assert_eq!(node.next_expected_from(me), batch, "gap must not consume a seq");

        // The link recovers: the genuinely-next seq still delivers.
        write_frame(&mut conn, &Frame::Msg { seq: batch, payload: probe_payload(Value::Zero) })
            .expect("resume in order");
        prop_assert_eq!(read_ack(&mut conn), batch + 1, "in-order delivery resumes after a gap");

        // A duplicate seq carrying *different* bytes is equivocation.
        write_frame(&mut conn, &Frame::Msg { seq: 0, payload: probe_payload(Value::Zero) })
            .expect("equivocating duplicate");
        prop_assert_eq!(read_ack(&mut conn), batch + 1);
        await_counter(|| node.equivocations(), 1, "equivocation counter");

        // Of the four probes since the snapshot (duplicate, gap, resume,
        // equivocating duplicate), exactly the in-order resume delivered.
        prop_assert_eq!(quiesce(|| node.messages_delivered()), delivered_before + 1,
            "neither duplicates nor gaps are delivered");

        node.shutdown();
    }

    /// Reconnect replay: a peer that accepts frames but never acks, then
    /// drops the connection, must be re-offered the *entire* backlog on
    /// the next connection — in seq order, from the first unacked frame,
    /// byte-for-byte identical to the original transmission.
    #[test]
    fn reconnect_replays_unacked_backlog_byte_identically(seed in any::<u64>()) {
        require_sockets!(prop);
        let (mut node, fake_peers, my_addr) = spawn_probe_node(3, seed);

        let mut from_p1 = TcpStream::connect(my_addr).expect("dial node 0");
        write_frame(&mut from_p1, &Frame::Hello { from: ProcessId::new(1) }).expect("hello");
        write_frame(
            &mut from_p1,
            &Frame::Msg { seq: 0, payload: probe_payload(Value::One) },
        )
        .expect("probe msg");

        let window = Duration::from_millis(600);
        let peer = &fake_peers[0];
        // First connection: capture everything, ack nothing, hang up.
        let first = capture_msgs(peer, window);
        prop_assert!(!first.is_empty(), "the node sent something before the hangup");

        // The node must redial and replay. Nothing was acked, so the
        // replay begins again at seq 0.
        let second = capture_msgs(peer, window);
        prop_assert!(second.len() >= first.len(), "the full backlog is re-offered");
        for (i, (seq, _)) in second.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64, "replay runs in seq order from the first unacked");
        }
        for ((seq_a, bytes_a), (seq_b, bytes_b)) in first.iter().zip(&second) {
            prop_assert_eq!(seq_a, seq_b);
            prop_assert_eq!(bytes_a, bytes_b, "replayed frame {seq_a} must be byte-identical");
        }
        prop_assert!(node.reconnects() >= 1, "the hangup forced a reconnect");
        node.shutdown();
    }
}

/// Cluster-level closure of the same contract: under link delays and a
/// lossy link schedule (forcing retransmission and reconnect paths), a
/// full consensus run completes with zero observed seq gaps and zero
/// equivocations at every node — the per-link properties above are what
/// make this hold.
#[test]
fn faulty_cluster_run_preserves_link_invariants() {
    require_sockets!();
    let n = 5;
    let options = ClusterOptions {
        seed: 0x00C0_F012,
        inputs: vec![Value::One; n],
        link_fault: FaultPlan::reliable()
            .with_delay(Duration::from_millis(1), Duration::from_millis(4)),
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(n, 2, Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(Duration::from_secs(60));

    assert_eq!(report.status, RunStatus::Stopped, "all nodes decided");
    assert!(report.agreement(), "agreement under link faults");
    for (i, node) in cluster.nodes().iter().enumerate() {
        assert_eq!(node.seq_gaps(), 0, "p{i}: an honest link never skips a seq");
        assert_eq!(
            node.equivocations(),
            0,
            "p{i}: no equivocation on an honest run"
        );
    }
    cluster.shutdown();
}
