//! Cross-validation: the analytic §4 Markov model against Monte-Carlo
//! simulation of the actual protocol, and the two analytic routes (exact
//! chain vs collapsed bound) against each other.
//!
//! The paper's model makes simplifying assumptions (independent views,
//! synchronized phases), so we check *shape*, not digit-for-digit equality:
//! simulated expected phases must be finite, small, and below the paper's
//! bound; the exact chain must also respect the bound.

use resilient_consensus::bt_core::{Config, Simple};
use resilient_consensus::markov::{collapsed, FailStopChain, MaliciousChain};
use resilient_consensus::simnet::{run_trials, Role, Sim, Value};

fn simulate_simple(n: usize, k: usize, trials: usize) -> simnet::TrialStats {
    let config = Config::unchecked(n, k);
    run_trials(trials, 0xCAFE, |seed| {
        let mut b = Sim::builder();
        for i in 0..n {
            b.process(
                Box::new(Simple::new(config, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        b.seed(seed).step_limit(8_000_000);
        b.build()
    })
}

#[test]
fn simulation_respects_eq13_bound() {
    // Balanced inputs. The paper's analysis idealizes k = n/3, but at that
    // exact k the protocol's decide threshold (> (n+k)/2) equals its quota
    // (n−k) and no process can ever decide — the protocol itself requires
    // k ≤ ⌊(n−1)/3⌋. Simulate at the protocol's maximal decidable k and
    // compare against the idealized bound.
    for n in [12usize, 18] {
        let stats = simulate_simple(n, (n - 1) / 3, 150);
        assert_eq!(stats.disagreements, 0);
        assert_eq!(stats.decided, stats.trials, "n={n}: trials must decide");
        let bound = collapsed::headline_bound(n);
        assert!(
            stats.phases.mean < bound,
            "n={n}: simulated {} ≥ bound {bound}",
            stats.phases.mean
        );
    }
}

#[test]
fn exact_chain_and_simulation_agree_in_shape() {
    // The exact chain models one synchronized phase per step; the
    // event-driven simulation overlaps phases, so allow a generous factor —
    // but the two must be within the same small ballpark, and both ≪ the
    // worst case.
    for n in [12usize, 18] {
        let chain = FailStopChain::paper(n);
        let analytic = chain.expected_phases_balanced();
        let stats = simulate_simple(n, (n - 1) / 3, 150);
        let simulated = stats.phases.mean;
        assert!(
            simulated < analytic * 3.0 + 3.0,
            "n={n}: simulated {simulated} far above analytic {analytic}"
        );
        assert!(
            analytic < simulated * 3.0 + 3.0,
            "n={n}: analytic {analytic} far above simulated {simulated}"
        );
    }
}

#[test]
fn exact_chain_below_collapsed_bound() {
    // The collapse only ever slows the chain (stochastic dominance), so the
    // exact absorption time must be ≤ the collapsed bound.
    for n in [12usize, 18, 24, 30, 36] {
        let exact = FailStopChain::paper(n).expected_phases_balanced();
        let bound = collapsed::eq13_bound(n, collapsed::paper_l());
        assert!(
            exact <= bound,
            "n={n}: exact {exact} exceeds collapsed bound {bound}"
        );
    }
}

#[test]
fn malicious_chain_bound_shape() {
    // §4.2: the balanced-state one-step absorption probability should be
    // in the vicinity of 2Φ(l), and expected phases below ~1/(2Φ(l)) with
    // slack for the normal approximation.
    for &(n, k) in &[(64usize, 4usize), (100, 5)] {
        let chain = MaliciousChain::new(n, k);
        let p = chain.balanced_absorption_probability();
        let l = chain.l_parameter();
        let approx = 2.0 * resilient_consensus::markov::phi_upper(l);
        assert!(
            p > approx / 4.0 && p < approx * 4.0,
            "n={n} k={k}: one-step absorption {p} vs 2Φ(l) = {approx}"
        );
        let e = chain.expected_phases_balanced();
        let bound = MaliciousChain::paper_bound(l);
        assert!(
            e < bound * 2.0 + 1.0,
            "n={n} k={k}: expected {e} vs bound {bound}"
        );
    }
}

#[test]
fn balancing_adversary_slows_convergence_in_simulation() {
    // The §4.2 premise: balancing attackers are worse than silent ones.
    use resilient_consensus::adversary::{ContrarianMalicious, Silent};
    use resilient_consensus::bt_core::{Malicious, MaliciousMsg};

    let n = 10;
    let k = 3;
    let config = Config::malicious(n, k).unwrap();
    let run_with = |balancing: bool| {
        run_trials(80, 0xBA1A, move |seed| {
            let mut b = Sim::builder();
            for i in 0..n - k {
                b.process(
                    Box::new(Malicious::new(config, Value::from(i % 2 == 0))),
                    Role::Correct,
                );
            }
            for _ in 0..k {
                if balancing {
                    b.process(Box::new(ContrarianMalicious::new(config)), Role::Faulty);
                } else {
                    b.process(Box::new(Silent::<MaliciousMsg>::new()), Role::Faulty);
                }
            }
            b.seed(seed).step_limit(16_000_000);
            b.build()
        })
    };
    let silent = run_with(false);
    let balancing = run_with(true);
    assert_eq!(silent.disagreements, 0);
    assert_eq!(balancing.disagreements, 0);
    assert!(
        balancing.phases.mean >= silent.phases.mean,
        "balancing ({}) should be at least as slow as silent ({})",
        balancing.phases.mean,
        silent.phases.mean
    );
}
