//! Schedules as first-class objects: extract a witness schedule with the
//! model checker, and pin adversarial interleavings with the scripted
//! scheduler.

use resilient_consensus::bt_core::{Config, Simple};
use resilient_consensus::modelcheck::{Action, EarlyStop, Explorer, Outcome, World};
use resilient_consensus::simnet::Value;

#[test]
fn witness_schedule_found_and_unreachable_goal_rejected() {
    // With k = 0 thresholds the quota is n: every view is the full input
    // multiset, so the outcome is schedule-independent — inputs (1, 0, 1)
    // decide 1 on every crash-free schedule. `find_schedule` must produce
    // a replayable witness for 1 and prove 0 unreachable.
    let config = Config::unchecked(3, 0);
    let make = || {
        World::start(
            vec![
                Simple::new(config, Value::One),
                Simple::new(config, Value::Zero),
                Simple::new(config, Value::One),
            ],
            1,
        )
    };
    let explorer = Explorer::new(120_000, 60);

    let schedule = explorer
        .find_schedule(make(), |w| {
            w.all_correct_decided()
                && w.decisions().into_iter().flatten().next() == Some(Value::One)
        })
        .expect("the majority value must have a witness schedule");
    let mut w = make();
    for action in &schedule {
        w = w.apply(*action);
    }
    assert!(w.all_correct_decided());
    assert_eq!(w.decisions().into_iter().flatten().next(), Some(Value::One));
    // (The shortest witness may crash the 0-holder first — its initial
    // broadcast is already in flight, so the survivors still fill their
    // quota. Both crash-free and crashing witnesses are legal schedules.)

    // 0 is unreachable: deciding it would need a 0-majority view, but
    // every complete view is the full (1, 0, 1) multiset.
    let zero = explorer.find_schedule(make(), |w| {
        w.all_correct_decided() && w.decisions().into_iter().flatten().next() == Some(Value::Zero)
    });
    assert!(zero.is_none(), "0 must be unreachable from (1,0,1) at k=0");

    // Deadlock needs a configuration that does not decide in phase 0:
    // two processes with split inputs tie (no decision), and a crash then
    // starves the survivor's phase-1 quota forever.
    let make2 = || {
        World::start(
            vec![
                Simple::new(Config::unchecked(2, 0), Value::One),
                Simple::new(Config::unchecked(2, 0), Value::Zero),
            ],
            1,
        )
    };
    let deadlock = explorer
        .find_schedule(make2(), |w| {
            !w.all_correct_decided() && w.actions().is_empty()
        })
        .expect("one crash must enable a deadlock");
    assert!(deadlock.iter().any(|a| matches!(a, Action::Crash { .. })));
    let mut w = make2();
    for action in &deadlock {
        w = w.apply(*action);
    }
    assert!(w.actions().is_empty() && !w.all_correct_decided());
}

#[test]
fn sampled_and_exhaustive_outcomes_are_consistent() {
    // Every outcome the random walker reports must also be reachable by
    // (and found within the caps of) the exhaustive search — on a world
    // small enough to exhaust.
    let config = Config::unchecked(2, 0);
    let world = World::start(
        vec![
            Simple::new(config, Value::One),
            Simple::new(config, Value::Zero),
        ],
        1,
    );
    let explorer = Explorer::new(200_000, 60);
    let sampled = explorer.sample_outcomes(&world, 300, 7);
    let exhaustive = explorer.explore(world);
    assert!(!exhaustive.truncated, "this world must be exhaustible");
    for o in &sampled {
        assert!(
            exhaustive.outcomes.contains(o),
            "sampler found {o:?} the exhaustive search missed"
        );
    }
    // And the exhaustive search must see the deadlock the crash enables.
    assert!(exhaustive.outcomes.contains(&Outcome::Deadlock));
}

#[test]
fn early_stop_modes_are_sound() {
    let config = Config::unchecked(3, 0);
    let world = World::start(
        vec![
            Simple::new(config, Value::One),
            Simple::new(config, Value::One),
            Simple::new(config, Value::Zero),
        ],
        0,
    );
    let any = Explorer::new(200_000, 60)
        .early_stop(EarlyStop::OnAnyDecision)
        .explore(world);
    assert!(
        any.outcomes
            .iter()
            .any(|o| matches!(o, Outcome::Decided(_))),
        "early stop on any decision still reports one: {:?}",
        any.outcomes
    );
}
