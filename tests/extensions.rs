//! Integration tests for the extensions: the §5 initially-dead protocol
//! under hostile scheduling, and multi-valued consensus under Byzantine
//! noise.

use std::sync::Arc;

use resilient_consensus::adversary::Silent;
use resilient_consensus::bt_core::multivalued::{word_observer, MultiMsg, MultiValued};
use resilient_consensus::bt_core::{Config, DeadMsg, InitiallyDead, MaliciousMsg};
use resilient_consensus::simnet::scheduler::{DeliveryOrder, FairScheduler, PartitionScheduler};
use resilient_consensus::simnet::{Ctx, Envelope, Process, ProcessId, Role, Sim, Value};

#[test]
fn initially_dead_survives_partitioned_scheduling() {
    // The §5 protocol's G⁺ construction is pure message-counting; it must
    // deliver the fixed-0 guarantee under a partitioning scheduler too.
    let n = 6;
    for seed in 0..10 {
        let mut b = Sim::builder();
        for _ in 0..n - 1 {
            b.process(Box::new(InitiallyDead::new(n, Value::One)), Role::Correct);
        }
        b.process(Box::new(Silent::<DeadMsg>::new()), Role::Faulty);
        let left: Vec<ProcessId> = ProcessId::all(n).take(n / 2).collect();
        b.scheduler(Box::new(PartitionScheduler::new(n, &left, 30, 3)));
        let r = b.seed(seed).step_limit(1_000_000).build().run();
        assert!(r.agreement(), "seed {seed}");
        assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        assert_eq!(
            r.decided_value(),
            Some(Value::Zero),
            "seed {seed}: a dead process pins the decision to 0"
        );
    }
}

#[test]
fn initially_dead_lifo_delivery() {
    let n = 5;
    for seed in 0..10 {
        let mut b = Sim::builder();
        for i in 0..n {
            b.process(
                Box::new(InitiallyDead::new(n, Value::from(i % 2 == 0))),
                Role::Correct,
            );
        }
        b.scheduler(Box::new(
            FairScheduler::new().delivery_order(DeliveryOrder::Lifo),
        ));
        let r = b.seed(seed).step_limit(1_000_000).build().run();
        assert!(r.agreement(), "seed {seed}");
        assert!(r.all_correct_decided(), "seed {seed}");
    }
}

/// A Byzantine process for the multi-valued protocol: sprays random
/// bit-tagged garbage (including out-of-range tags and forged subjects).
#[derive(Debug)]
struct MultiNoise {
    n: usize,
    width: u8,
}

impl Process for MultiNoise {
    type Msg = MultiMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MultiMsg>) {
        let me = ctx.me();
        ctx.broadcast((0, MaliciousMsg::initial(me, Value::One, 0)));
    }

    fn on_receive(&mut self, env: Envelope<MultiMsg>, ctx: &mut Ctx<'_, MultiMsg>) {
        let me = ctx.me();
        let (bit, inner) = env.msg;
        let bt_core::Phase::At(t) = inner.phase else {
            return;
        };
        for _ in 0..3 {
            let n = self.n;
            let to = ProcessId::new(ctx.rng().index(n));
            let tag = (ctx.rng().index(self.width as usize + 2)) as u8; // may exceed width
            let value = Value::from(ctx.rng().coin());
            let subject = ProcessId::new(ctx.rng().index(n));
            let msg = if ctx.rng().coin() {
                MaliciousMsg::initial(me, value, t)
            } else {
                MaliciousMsg::echo(subject, value, t)
            };
            ctx.send(to, (tag, msg));
        }
        let _ = bit;
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn phase(&self) -> u64 {
        0
    }
}

#[test]
fn multivalued_agrees_under_byzantine_noise() {
    let n = 7;
    let k = 2;
    let config = Config::malicious(n, k).unwrap();
    let inputs = [0xAAAAu64, 0x5555, 0xFF00, 0x00FF, 0x1234];
    for seed in 0..5 {
        let observer = word_observer(n);
        let mut b = Sim::builder();
        for (slot, &input) in inputs.iter().enumerate() {
            b.process(
                Box::new(
                    MultiValued::new(config, 8, input).with_observer(Arc::clone(&observer), slot),
                ),
                Role::Correct,
            );
        }
        for _ in 0..k {
            b.process(Box::new(MultiNoise { n, width: 8 }), Role::Faulty);
        }
        let r = b.seed(seed).step_limit(64_000_000).build().run();
        assert!(r.all_correct_decided(), "seed {seed}: {:?}", r.status);
        let words = observer.lock().unwrap().clone();
        let first = words[0].expect("decided");
        assert!(
            words[..inputs.len()].iter().all(|w| *w == Some(first)),
            "seed {seed}: words diverged {words:?}"
        );
    }
}

#[test]
fn multivalued_unanimity_under_silent_faults() {
    let n = 4;
    let config = Config::malicious(n, 1).unwrap();
    let observer = word_observer(n);
    let mut b = Sim::builder();
    for slot in 0..3 {
        b.process(
            Box::new(
                MultiValued::new(config, 12, 0xABC).with_observer(Arc::clone(&observer), slot),
            ),
            Role::Correct,
        );
    }
    b.process(Box::new(Silent::<MultiMsg>::new()), Role::Faulty);
    let r = b.seed(77).step_limit(64_000_000).build().run();
    assert!(r.all_correct_decided(), "{:?}", r.status);
    let words = observer.lock().unwrap().clone();
    assert!(
        words[..3].iter().all(|w| *w == Some(0xABC)),
        "unanimity must decide the common word: {words:?}"
    );
}
