//! Integration tests for the observability layer: subscriber wiring, JSONL
//! round-tripping, aggregator determinism, and the §4.1 phase bound measured
//! through the telemetry path.

use std::sync::{Arc, Mutex};

use obs::{parse_trace, render_report, JsonlSink, PhaseAggregator, TraceLine};
use resilient_consensus::bt_core::{self, Config};
use resilient_consensus::simnet::{run_trials_observed, Sim, Subscriber};
use resilient_consensus::Value;

fn alternating(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::from(i % 2 == 0)).collect()
}

/// A fail-stop system with a JSONL sink attached; returns the sink handle.
fn failstop_with_sink(seed: u64) -> (Arc<Mutex<JsonlSink>>, simnet::RunReport) {
    let config = Config::fail_stop(5, 2).unwrap();
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    let mut b = Sim::builder();
    bt_core::failstop::build_correct_system(&mut b, config, &alternating(5));
    b.seed(seed).subscriber(sink.clone());
    let report = b.build().run();
    (sink, report)
}

#[test]
fn jsonl_trace_round_trips_and_replays_through_btreport() {
    let (sink, report) = failstop_with_sink(11);
    assert!(report.all_correct_decided());

    let text = sink.lock().unwrap().contents();
    let lines = parse_trace(&text).expect("sink output must parse");
    assert!(matches!(lines[0], TraceLine::RunStart { n: 5, .. }));
    assert!(matches!(lines.last(), Some(TraceLine::RunEnd { .. })));

    // Re-encoding every event line reproduces the original text exactly:
    // the codec is the identity on traces.
    let mut rebuilt = JsonlSink::new();
    for line in &lines {
        match line {
            TraceLine::RunStart { n, seed } => rebuilt.on_run_start(*n, *seed),
            TraceLine::Event(event) => rebuilt.on_event(event),
            TraceLine::RunEnd { .. } => rebuilt.on_run_end(&report),
        }
    }
    assert_eq!(rebuilt.contents(), text);

    // And the btreport renderer accepts the parsed trace.
    let rendered = render_report(&lines);
    assert!(rendered.contains("run 0: n=5"), "{rendered}");
    assert!(rendered.contains("phases to decision"), "{rendered}");
}

#[test]
fn identical_seeds_produce_identical_traces_and_aggregates() {
    let (sink_a, _) = failstop_with_sink(42);
    let (sink_b, _) = failstop_with_sink(42);
    assert_eq!(
        sink_a.lock().unwrap().contents(),
        sink_b.lock().unwrap().contents(),
        "the JSONL sink must be deterministic for a fixed seed"
    );

    let run_aggregated = || {
        let config = Config::malicious(7, 2).unwrap();
        let agg = Arc::new(Mutex::new(PhaseAggregator::new()));
        run_trials_observed(
            10,
            7,
            |seed| {
                let mut b = Sim::builder();
                bt_core::malicious::build_correct_system(&mut b, config, &alternating(7));
                b.seed(seed).subscriber(agg.clone());
                b.build()
            },
            |_, _| {},
        );
        let agg = agg.lock().unwrap();
        (agg.phases().to_vec(), agg.render())
    };
    let (phases_a, render_a) = run_aggregated();
    let (phases_b, render_b) = run_aggregated();
    assert_eq!(phases_a, phases_b, "aggregation must replay identically");
    assert_eq!(render_a, render_b);
}

#[test]
fn aggregator_counts_match_engine_metrics() {
    let config = Config::fail_stop(5, 2).unwrap();
    let agg = Arc::new(Mutex::new(PhaseAggregator::new()));
    let mut b = Sim::builder();
    bt_core::failstop::build_correct_system(&mut b, config, &alternating(5));
    b.seed(3).subscriber(agg.clone());
    let report = b.build().run();

    let agg = agg.lock().unwrap();
    let total_sent: u64 = agg.phases().iter().map(|p| p.messages_sent).sum();
    let total_delivered: u64 = agg.phases().iter().map(|p| p.deliveries).sum();
    assert_eq!(total_sent, report.metrics.messages_sent);
    assert_eq!(total_delivered, report.metrics.messages_delivered);
    assert_eq!(agg.runs(), 1);
    assert_eq!(agg.decided_runs(), 1);
    // Every correct decision shows up as a protocol-level decision event.
    let decisions: u64 = agg.phases().iter().map(|p| p.decisions).sum();
    assert_eq!(decisions as usize, report.correct().count());
}

/// §4.1 (E3): the simple majority variant's mean phases-to-decision from a
/// balanced start stays under the paper's "< 7 expected phases" bound,
/// measured through the telemetry path over 200 seeded runs.
#[test]
fn simple_variant_mean_phases_stay_below_seven() {
    let n = 12;
    let config = Config::unchecked(n, (n - 1) / 3);
    let inputs: Vec<Value> = (0..n).map(|i| Value::from(i < n / 2)).collect();
    let agg = Arc::new(Mutex::new(PhaseAggregator::new()));
    let stats = run_trials_observed(
        200,
        0xE3,
        |seed| {
            let mut b = Sim::builder();
            bt_core::simple::build_correct_system(&mut b, config, &inputs);
            b.seed(seed).step_limit(4_000_000).subscriber(agg.clone());
            b.build()
        },
        |_, _| {},
    );
    assert_eq!(stats.trials, 200);
    assert_eq!(stats.decided, 200, "every balanced run must decide");

    let agg = agg.lock().unwrap();
    assert_eq!(agg.runs(), 200);
    let histogram = agg.phases_histogram();
    assert_eq!(histogram.count, 200);
    assert!(
        histogram.mean < 7.0,
        "mean phases-to-decision {} violates the §4.1 bound",
        histogram.mean
    );
    // The aggregator and the runner compute the same distribution.
    assert!((histogram.mean - stats.phases.mean).abs() < 1e-12);
}

#[test]
fn unobserved_runs_still_report_identically() {
    // Attaching a subscriber must not perturb the simulation itself: the
    // observed and unobserved runs of one seed agree on every outcome.
    let run = |observe: bool| {
        let config = Config::fail_stop(5, 2).unwrap();
        let mut b = Sim::builder();
        bt_core::failstop::build_correct_system(&mut b, config, &alternating(5));
        b.seed(23);
        if observe {
            b.subscriber(Arc::new(Mutex::new(PhaseAggregator::new())));
        }
        b.build().run()
    };
    let plain = run(false);
    let observed = run(true);
    assert_eq!(plain.decisions, observed.decisions);
    assert_eq!(plain.steps, observed.steps);
    assert_eq!(plain.metrics.messages_sent, observed.metrics.messages_sent);
}
