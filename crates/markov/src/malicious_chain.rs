//! The §4.2 Markov chain: the Figure 2 protocol against the balancing
//! adversary.
//!
//! States count the **correct** processes holding value 1, `0 ≤ i ≤ n−k`.
//! The `k` malicious processes send, to everyone, whatever best balances
//! the 1/0 split — so from the adversary's point of view a deviation of
//! `±d` among the correct processes looks like a deviation of
//! `±max(d−k, 0)` among all `n` messages. The paper writes this as eq. (1):
//!
//! ```text
//! M_{(n−k)/2 ± i, j} = P_{n/2 ± (i−k), j}   for i ≥ k
//! M_{(n−k)/2 ± i, j} = P_{n/2, j}           for i < k
//! ```
//!
//! with `P` the §4.1 transition rows. The absorbing states are
//! `[0, (n−3k)/2 − 1]` and `[(n+k)/2 + 1, n−k]`; eq. (2) bounds the
//! probability of absorbing out of the balanced state by `2Φ(l)` for
//! `k = l√n/2`, so the expected number of phases is at most `1/(2Φ(l))` —
//! **constant for `k = o(√n)`**.

use crate::{binomial_pmf, phi_upper, AbsorbingChain, FailStopChain, Matrix};

/// The §4.2 chain for given `(n, k)`.
#[derive(Debug)]
pub struct MaliciousChain {
    n: usize,
    k: usize,
    chain: AbsorbingChain,
}

impl MaliciousChain {
    /// Builds the chain. For faithful alignment with the paper's formulas,
    /// `n` and `n − k` should be even; odd values are handled by integer
    /// truncation of the midpoints.
    ///
    /// # Panics
    ///
    /// Panics if `5k > n` (the section restricts to `k ≤ n/5`) or `n == 0`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n > 0, "a system needs processes");
        assert!(5 * k <= n, "§4.2 analyses k ≤ n/5");
        let correct = n - k;
        let states = correct + 1;
        let mid_all = n / 2;
        let mid_correct = correct / 2;

        // Absorbing regions per the paper: decide-0 below (n−3k)/2, decide-1
        // above (n+k)/2 (indices among correct processes).
        let lo = (n.saturating_sub(3 * k)) / 2; // absorbing: i < lo
        let hi = (n + k) / 2; // absorbing: i > hi

        let mut p = Matrix::zeros(states, states);
        let mut absorbing = vec![false; states];
        for i in 0..states {
            if i < lo || i > hi {
                absorbing[i] = true;
                p[(i, i)] = 1.0;
                continue;
            }
            // Balancing: deviation among correct values, clipped by k.
            let dev = i as i64 - mid_correct as i64;
            let clipped = if dev.unsigned_abs() as usize <= k {
                0
            } else if dev > 0 {
                dev - k as i64
            } else {
                dev + k as i64
            };
            let effective = (mid_all as i64 + clipped).clamp(0, n as i64) as usize;
            let w = FailStopChain::w_value(n, k, effective);
            for j in 0..states {
                p[(i, j)] = binomial_pmf(correct as u64, w, j as u64);
            }
        }
        MaliciousChain {
            n,
            k,
            chain: AbsorbingChain::new(p, absorbing),
        }
    }

    /// The number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of malicious processes.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying chain.
    #[must_use]
    pub fn chain(&self) -> &AbsorbingChain {
        &self.chain
    }

    /// Expected phases to absorption from the balanced state `(n−k)/2`.
    ///
    /// # Panics
    ///
    /// Panics if the chain cannot reach absorption.
    #[must_use]
    pub fn expected_phases_balanced(&self) -> f64 {
        let times = self
            .chain
            .expected_absorption_times()
            .expect("the §4.2 chain always reaches absorption");
        times[(self.n - self.k) / 2]
    }

    /// One-step absorption probability from the balanced state — the
    /// quantity eq. (2) approximates by `2Φ(l)`.
    #[must_use]
    pub fn balanced_absorption_probability(&self) -> f64 {
        self.chain.one_step_absorption((self.n - self.k) / 2)
    }

    /// The `l` for which `k = l√n/2`.
    #[must_use]
    pub fn l_parameter(&self) -> f64 {
        2.0 * self.k as f64 / (self.n as f64).sqrt()
    }

    /// The paper's bound on the expected number of phases from the balanced
    /// state: `1 / (2Φ(l))` (from eq. (2) and the geometric argument).
    #[must_use]
    pub fn paper_bound(l: f64) -> f64 {
        1.0 / (2.0 * phi_upper(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_fast() {
        let c = MaliciousChain::new(20, 0);
        // With no balancing noise the balanced state still has w = 1/2 but
        // absorption regions are wide: expect a handful of phases.
        let e = c.expected_phases_balanced();
        assert!(e > 0.0 && e < 10.0, "{e}");
    }

    #[test]
    fn absorbing_regions_match_paper() {
        // n = 20, k = 4: correct = 16; absorbing below (20−12)/2 = 4 and
        // above (20+4)/2 = 12.
        let c = MaliciousChain::new(20, 4);
        assert!(c.chain().is_absorbing(3));
        assert!(!c.chain().is_absorbing(4));
        assert!(!c.chain().is_absorbing(12));
        assert!(c.chain().is_absorbing(13));
    }

    #[test]
    fn balancing_flattens_the_middle() {
        // Within ±k of the balanced state, the adversary holds w at 1/2:
        // those rows must be identical.
        let c = MaliciousChain::new(20, 4);
        let p = c.chain().transition_matrix();
        let mid = 8; // (n−k)/2 = 8
        for i in [mid - 3, mid - 1, mid + 2] {
            for j in 0..=16 {
                assert!(
                    (p[(i, j)] - p[(mid, j)]).abs() < 1e-12,
                    "row {i} must equal balanced row"
                );
            }
        }
    }

    #[test]
    fn expected_phases_bounded_by_paper_formula() {
        // For k = l√n/2 the expected time from balance is ≤ 1/(2Φ(l))
        // (the paper's geometric bound; the exact chain should respect it
        // within the normal-approximation slack).
        for &(n, k) in &[(36usize, 3usize), (64, 4), (100, 5)] {
            let c = MaliciousChain::new(n, k);
            let e = c.expected_phases_balanced();
            let l = c.l_parameter();
            let bound = MaliciousChain::paper_bound(l);
            assert!(
                e <= bound * 1.5 + 1.0,
                "n={n} k={k}: exact {e} vs paper bound {bound}"
            );
        }
    }

    #[test]
    fn small_k_gives_constant_phases() {
        // k = o(√n): expected phases stay bounded as n grows.
        let mut last = 0.0;
        for &n in &[40usize, 80, 160, 320] {
            let c = MaliciousChain::new(n, 2);
            last = c.expected_phases_balanced();
            assert!(last < 8.0, "n={n}: {last}");
        }
        assert!(last > 0.0);
    }

    #[test]
    fn paper_bound_decreases_in_l() {
        assert!(MaliciousChain::paper_bound(0.5) < MaliciousChain::paper_bound(1.0));
        // Φ(0) = 1/2 ⇒ bound = 1.
        assert!((MaliciousChain::paper_bound(0.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "k ≤ n/5")]
    fn rejects_large_k() {
        let _ = MaliciousChain::new(20, 5);
    }
}
