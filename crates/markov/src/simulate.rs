//! Monte-Carlo sampling of the chains: an independent check on the
//! fundamental-matrix arithmetic.
//!
//! The analytic absorption times go through matrix inversion; sampling the
//! same chains directly catches any disagreement between the two routes
//! (and gives distributions, not just means).

use core::fmt;

use prng::Prng;

use crate::AbsorbingChain;

/// Samples trajectories of an [`AbsorbingChain`].
pub struct ChainSampler<'a> {
    chain: &'a AbsorbingChain,
}

impl<'a> ChainSampler<'a> {
    /// Creates a sampler over `chain`.
    #[must_use]
    pub fn new(chain: &'a AbsorbingChain) -> Self {
        ChainSampler { chain }
    }

    /// Samples one trajectory from `start`; returns `(steps, final_state)`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range or a row is numerically degenerate.
    pub fn trajectory(&self, start: usize, rng: &mut Prng) -> (u64, usize) {
        assert!(start < self.chain.states(), "start state out of range");
        let p = self.chain.transition_matrix();
        let mut state = start;
        let mut steps = 0u64;
        while !self.chain.is_absorbing(state) {
            let mut x: f64 = rng.f64();
            let mut next = self.chain.states() - 1;
            for j in 0..self.chain.states() {
                x -= p[(state, j)];
                if x <= 0.0 {
                    next = j;
                    break;
                }
            }
            state = next;
            steps += 1;
        }
        (steps, state)
    }

    /// Mean steps to absorption from `start` over `trials` trajectories.
    #[must_use]
    pub fn mean_steps(&self, start: usize, trials: usize, seed: u64) -> f64 {
        let mut rng = Prng::seed_from_u64(seed);
        let total: u64 = (0..trials)
            .map(|_| self.trajectory(start, &mut rng).0)
            .sum();
        total as f64 / trials as f64
    }

    /// Empirical probability of being absorbed in a state `> threshold`.
    #[must_use]
    pub fn absorb_high_rate(
        &self,
        start: usize,
        threshold: usize,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = Prng::seed_from_u64(seed);
        let high = (0..trials)
            .filter(|_| self.trajectory(start, &mut rng).1 > threshold)
            .count();
        high as f64 / trials as f64
    }
}

impl fmt::Debug for ChainSampler<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainSampler")
            .field("states", &self.chain.states())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailStopChain, Matrix};

    #[test]
    fn sampled_ruin_matches_analytic() {
        let p = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let chain = AbsorbingChain::new(p, vec![true, false, false, true]);
        let sampler = ChainSampler::new(&chain);
        let mean = sampler.mean_steps(1, 40_000, 7);
        assert!((mean - 2.0).abs() < 0.1, "sampled {mean}, analytic 2.0");
        let high = sampler.absorb_high_rate(1, 2, 40_000, 7);
        assert!(
            (high - 1.0 / 3.0).abs() < 0.02,
            "sampled {high}, analytic 1/3"
        );
    }

    #[test]
    fn sampled_failstop_chain_matches_fundamental_matrix() {
        let chain = FailStopChain::paper(12);
        let analytic = chain.expected_phases_balanced();
        let sampler = ChainSampler::new(chain.chain());
        let sampled = sampler.mean_steps(6, 30_000, 99);
        assert!(
            (sampled - analytic).abs() < analytic * 0.1 + 0.1,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn trajectories_from_absorbing_states_are_trivial() {
        let chain = FailStopChain::paper(12);
        let sampler = ChainSampler::new(chain.chain());
        let mut rng = Prng::seed_from_u64(0);
        let (steps, state) = sampler.trajectory(0, &mut rng);
        assert_eq!(steps, 0);
        assert_eq!(state, 0);
    }
}
