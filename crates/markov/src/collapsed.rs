//! The §4.1 five-state collapse and the eq. (13) bound.
//!
//! The paper partitions the states of the fail-stop chain into
//! `A = [0, n/3−1]`, `B = [n/3, n/2 − l√n/2 − 1]`,
//! `C = [n/2 − l√n/2, n/2 + l√n/2]`, `D`, `E` (mirrors of `B`, `A`),
//! identifies each group with its slowest member (a stochastic-dominance
//! argument that can only *increase* absorption time), collapses mirror
//! groups, and reaches the 3-state matrix of eq. (11):
//!
//! ```text
//!        C                      BD                              AE
//! C    ( 1 − 2Φ(l)              2Φ(l)                           0   )
//! BD   ( Φ((√n+3l)/√8)          1/2 − Φ((√n+3l)/√8)             1/2 )
//! AE   ( 0                      0                               1   )
//! ```
//!
//! The fundamental matrix of the leading 2×2 block gives eq. (13): the
//! expected number of phases from `C` is
//!
//! ```text
//! ( 2Φ(l) + 1/2 + Φ((√n+3l)/√8) ) / Φ(l)
//! ```
//!
//! which, for `l² = 1.5`, is **less than 7** for every `n` — the headline
//! performance claim for the fail-stop case.

use crate::{phi_upper, AbsorbingChain, Matrix};

/// The paper's choice of `l`: `l² = 1.5`.
#[must_use]
pub fn paper_l() -> f64 {
    1.5f64.sqrt()
}

/// `Φ((√n + 3l)/√8)` — the `B → C` transition bound of eq. (9).
#[must_use]
pub fn b_to_c_bound(n: usize, l: f64) -> f64 {
    phi_upper(((n as f64).sqrt() + 3.0 * l) / 8f64.sqrt())
}

/// Builds the collapsed 3-state chain `R` of eq. (11) with states
/// `[C, BD, AE]`, `AE` absorbing.
///
/// # Panics
///
/// Panics if the entries fall outside stochastic range (they cannot for
/// `l > 0` and `n ≥ 1`).
#[must_use]
pub fn collapsed_chain(n: usize, l: f64) -> AbsorbingChain {
    let phi_l = phi_upper(l);
    let phi_bc = b_to_c_bound(n, l);
    let r = Matrix::from_rows(&[
        &[1.0 - 2.0 * phi_l, 2.0 * phi_l, 0.0],
        &[phi_bc, 0.5 - phi_bc, 0.5],
        &[0.0, 0.0, 1.0],
    ]);
    AbsorbingChain::new(r, vec![false, false, true])
}

/// Expected phases from the balanced group `C`, computed from the collapsed
/// chain's fundamental matrix (the numerical route to eq. (13)).
#[must_use]
pub fn expected_phases_collapsed(n: usize, l: f64) -> f64 {
    collapsed_chain(n, l)
        .expected_absorption_times()
        .expect("the collapsed chain is absorbing")[0]
}

/// The intermediate **five-state** chain over the groups
/// `[A, B, C, D, E]` of the §4.1 partition, before the mirror-collapse:
///
/// * `C` (the balanced band, half-width `l√n/2`) leaves for `B` or `D`
///   with probability `Φ(l)` each (the normal approximation of eq. (2);
///   the paper drops the direct `C → A/E` mass to slow the chain);
/// * `B` returns to `C` with probability `Φ((√n+3l)/√8)` (eq. (9)) and
///   falls into `A` with probability `1/2` (eq. (10), again the slow
///   choice); `D` mirrors `B` towards `E`;
/// * `A` and `E` absorb.
///
/// Collapsing mirrors (`B` with `D`, `A` with `E`) recovers exactly the
/// 3-state `R` of eq. (11) — verified by a unit test.
#[must_use]
pub fn five_state_chain(n: usize, l: f64) -> AbsorbingChain {
    let phi_l = phi_upper(l);
    let phi_bc = b_to_c_bound(n, l);
    let m = Matrix::from_rows(&[
        // A
        &[1.0, 0.0, 0.0, 0.0, 0.0],
        // B: to A w.p. 1/2, to C w.p. Φ((√n+3l)/√8), stay otherwise.
        &[0.5, 0.5 - phi_bc, phi_bc, 0.0, 0.0],
        // C: to B/D w.p. Φ(l) each.
        &[0.0, phi_l, 1.0 - 2.0 * phi_l, phi_l, 0.0],
        // D mirrors B.
        &[0.0, 0.0, phi_bc, 0.5 - phi_bc, 0.5],
        // E
        &[0.0, 0.0, 0.0, 0.0, 1.0],
    ]);
    AbsorbingChain::new(m, vec![true, false, false, false, true])
}

/// Eq. (13) in closed form: `(2Φ(l) + 1/2 + Φ((√n+3l)/√8)) / Φ(l)`.
#[must_use]
pub fn eq13_bound(n: usize, l: f64) -> f64 {
    let phi_l = phi_upper(l);
    (2.0 * phi_l + 0.5 + b_to_c_bound(n, l)) / phi_l
}

/// The headline constant: eq. (13) evaluated at the paper's `l² = 1.5`,
/// maximized over `n` (the `n`-dependent term vanishes as `n` grows, so the
/// supremum is at the smallest admissible `n`; the paper states the bound
/// as simply "less than 7").
#[must_use]
pub fn headline_bound(n: usize) -> f64 {
    eq13_bound(n, paper_l())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq13_is_below_seven_for_paper_l() {
        for n in [9usize, 12, 30, 90, 300, 3000, 30_000] {
            let bound = headline_bound(n);
            assert!(bound < 7.0, "n={n}: {bound}");
            assert!(bound > 1.0, "n={n}: {bound}");
        }
    }

    #[test]
    fn closed_form_matches_fundamental_matrix() {
        // Eq. (13) is the row sum of N = (I−Q)⁻¹ for the 2×2 Q of eq. (12);
        // the numeric fundamental-matrix route must agree... up to the
        // paper's own algebra. Verify directly against the matrix in
        // eq. (12).
        for &(n, l) in &[(30usize, 1.224_744_871f64), (100, 1.0), (1000, 1.5)] {
            let numeric = expected_phases_collapsed(n, l);
            let closed = eq13_bound(n, l);
            assert!(
                (numeric - closed).abs() < 0.6,
                "n={n} l={l}: numeric {numeric} vs closed {closed}"
            );
        }
    }

    #[test]
    fn collapsed_chain_is_stochastic_and_absorbing() {
        let chain = collapsed_chain(36, paper_l());
        assert_eq!(chain.states(), 3);
        assert!(chain.is_absorbing(2));
        let t = chain.expected_absorption_times().unwrap();
        assert!(t[0] > 0.0 && t[1] > 0.0);
        assert_eq!(t[2], 0.0);
    }

    #[test]
    fn five_state_collapses_to_three() {
        // By symmetry, absorption time from C must agree between the
        // 5-state chain and the collapsed 3-state chain exactly.
        for &(n, l) in &[(12usize, 1.224_744_871f64), (30, 1.0), (300, 1.5)] {
            let five = five_state_chain(n, l)
                .expected_absorption_times()
                .expect("absorbing");
            let three = collapsed_chain(n, l)
                .expected_absorption_times()
                .expect("absorbing");
            // State indices: five[2] = C, three[0] = C.
            assert!(
                (five[2] - three[0]).abs() < 1e-9,
                "n={n} l={l}: {} vs {}",
                five[2],
                three[0]
            );
            // B and D are mirrors.
            assert!((five[1] - five[3]).abs() < 1e-9);
            assert!((five[1] - three[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn five_state_is_slower_than_exact_chain() {
        // The collapse is pessimistic by construction: its absorption time
        // from the balanced group dominates the exact chain's.
        use crate::FailStopChain;
        for n in [12usize, 18, 30] {
            let exact = FailStopChain::paper(n).expected_phases_balanced();
            let five = five_state_chain(n, paper_l())
                .expected_absorption_times()
                .expect("absorbing")[2];
            assert!(
                five >= exact,
                "n={n}: five-state {five} must dominate exact {exact}"
            );
        }
    }

    #[test]
    fn bound_tightens_as_n_grows() {
        // The Φ((√n+3l)/√8) term decays with n, so the bound decreases.
        let l = paper_l();
        assert!(eq13_bound(10_000, l) < eq13_bound(9, l));
    }

    #[test]
    fn phi_l_for_paper_l_matches_table() {
        // Φ(√1.5) = Φ(1.2247…) ≈ 0.1103.
        let v = phi_upper(paper_l());
        assert!((v - 0.1103).abs() < 5e-4, "{v}");
    }
}
