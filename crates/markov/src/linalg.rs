//! Minimal dense linear algebra: exactly what the fundamental-matrix
//! computation needs, built from scratch (no external numerics crates).

use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use markov::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let inv = m.inverse().expect("nonsingular");
/// let id = m.mul(&inv);
/// assert!((id[(0, 0)] - 1.0).abs() < 1e-12);
/// assert!(id[(0, 1)].abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged row {i}");
            for (j, v) in row.iter().enumerate() {
                m[(i, j)] = *v;
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch in sub"
        );
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        out
    }

    /// The sum of row `i` — for a fundamental matrix `N`, the expected
    /// absorption time from transient state `i` ([Isaa76], as cited in §4).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row_sum(&self, i: usize) -> f64 {
        assert!(i < self.rows, "row out of range");
        (0..self.cols).map(|j| self[(i, j)]).sum()
    }

    /// The inverse via Gauss-Jordan elimination with partial pivoting, or
    /// `None` if the matrix is singular (pivot below `1e-12`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below row.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .abs()
                        .partial_cmp(&a[(r2, col)].abs())
                        .expect("matrix entries must not be NaN")
                })
                .expect("column range is non-empty");
            if a[(pivot_row, col)].abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= pivot;
                inv[(col, j)] /= pivot;
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a[(row, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let acj = a[(col, j)];
                    let icj = inv[(col, j)];
                    a[(row, j)] -= factor * acj;
                    inv[(row, j)] -= factor * icj;
                }
            }
        }
        Some(inv)
    }

    /// Solves `self · x = b` for `x` (via the inverse; matrices here are
    /// tiny). `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let inv = self.inverse()?;
        Some(
            (0..inv.rows)
                .map(|i| (0..inv.cols).map(|j| inv[(i, j)] * b[j]).sum())
                .collect(),
        )
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 * self.cols + j, r2 * self.cols + j);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverts_to_itself() {
        let i = Matrix::identity(4);
        assert_eq!(i.inverse().unwrap(), i);
    }

    #[test]
    fn known_inverse() {
        let m = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = m.inverse().unwrap();
        // inverse = 1/10 * [6, -7; -2, 4]
        assert!((inv[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((inv[(0, 1)] + 0.7).abs() < 1e-12);
        assert!((inv[(1, 0)] + 0.2).abs() < 1e-12);
        assert!((inv[(1, 1)] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn solve_linear_system() {
        // x + y = 3; x − y = 1 → x = 2, y = 1.
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let x = m.solve(&[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_sum_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row_sum(0), 6.0);
        assert_eq!(m.row_sum(1), 15.0);
    }

    #[test]
    fn sub_subtracts() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.5, 0.25], &[0.0, 0.5]]);
        let c = a.sub(&b);
        assert_eq!(c[(0, 0)], 0.5);
        assert_eq!(c[(0, 1)], -0.25);
    }

    #[test]
    fn inverse_round_trip_random_like() {
        let m = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.3, 3.0, 0.7], &[0.1, 0.2, 4.0]]);
        let inv = m.inverse().unwrap();
        let id = m.mul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((id[(i, j)] - want).abs() < 1e-10);
            }
        }
    }
}
