//! Probability distributions used by the §4 analysis: binomial (transition
//! rows), hypergeometric (the view-sampling probability `w_i`), the normal
//! upper tail `Φ` (eq. 2), and the Chebyshev bound (eq. 6).

/// Natural log of `n!` via the ln-gamma function (Lanczos approximation),
/// exact for the table of small factorials.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    // Exact table keeps the common small cases bit-precise.
    const TABLE: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if n < 21 {
        TABLE[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`; absolute error below
/// `1e-13` over the range used here.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain is x > 0");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`, with the convention that out-of-range `k` gives `−∞`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial pmf: `P[X = j]` for `X ~ Bin(n, p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binomial_pmf(n: u64, p: f64, j: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if j > n {
        return 0.0;
    }
    if p == 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if j == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp()
}

/// Hypergeometric pmf: the probability of drawing exactly `k` special items
/// in a sample of `r` from a population of `n` containing `b` specials —
/// the distribution of `X_(n,b,r)` in §4.1.
///
/// # Panics
///
/// Panics if `b > n` or `r > n`.
#[must_use]
pub fn hypergeometric_pmf(n: u64, b: u64, r: u64, k: u64) -> f64 {
    assert!(b <= n, "specials cannot exceed population");
    assert!(r <= n, "sample cannot exceed population");
    if k > b || k > r || r - k > n - b {
        return 0.0;
    }
    (ln_choose(b, k) + ln_choose(n - b, r - k) - ln_choose(n, r)).exp()
}

/// Upper tail `P[X > threshold]` of the hypergeometric — the form the `w_i`
/// of §4.1 takes: the probability that a view of `r` messages contains a
/// strict majority of 1-values.
#[must_use]
pub fn hypergeometric_tail_gt(n: u64, b: u64, r: u64, threshold: u64) -> f64 {
    let hi = b.min(r);
    if threshold >= hi {
        return 0.0;
    }
    let tail: f64 = ((threshold + 1)..=hi)
        .map(|k| hypergeometric_pmf(n, b, r, k))
        .sum();
    tail.clamp(0.0, 1.0) // summed pmfs can overshoot 1 by a few ulps
}

/// Mean of the hypergeometric, `rb/n` (paper's eq. 4).
#[must_use]
pub fn hypergeometric_mean(n: u64, b: u64, r: u64) -> f64 {
    r as f64 * b as f64 / n as f64
}

/// Variance of the hypergeometric, `rb(n−b)(n−r) / (n²(n−1))` (eq. 5).
#[must_use]
pub fn hypergeometric_variance(n: u64, b: u64, r: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let (nf, bf, rf) = (n as f64, b as f64, r as f64);
    rf * bf * (nf - bf) * (nf - rf) / (nf * nf * (nf - 1.0))
}

/// The paper's `Φ(x)`: the **upper tail** of the standard normal,
/// `Φ(x) = (1/√2π) ∫ₓ^∞ e^{−t²/2} dt` (eq. 2; note the paper's `1/2π` is a
/// typo for `1/√2π` — with `1/2π`, `Φ(0)` would be `1/(2π) · √(π/2) ≈ 0.2`,
/// while the analysis repeatedly uses `Φ(0) = 1/2`).
#[must_use]
pub fn phi_upper(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function, via the Numerical-Recipes rational
/// Chebyshev fit (relative error < 1.2e−7 everywhere — far below the
/// model's own approximation error).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Chebyshev's inequality bound (eq. 6): `P[|X − E X| > t] ≤ Var X / t²`.
///
/// # Panics
///
/// Panics if `t <= 0`.
#[must_use]
pub fn chebyshev_bound(variance: f64, t: f64) -> f64 {
    assert!(t > 0.0, "deviation must be positive");
    (variance / (t * t)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials_exact_small() {
        assert_eq!(ln_factorial(0), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(20) - 2_432_902_008_176_640_000f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..30u64 {
            let via_gamma = ln_gamma(n as f64 + 1.0);
            let direct = ln_factorial(n);
            assert!(
                (via_gamma - direct).abs() < 1e-9,
                "n={n}: {via_gamma} vs {direct}"
            );
        }
    }

    #[test]
    fn choose_small_cases() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (40, 0.9)] {
            let total: f64 = (0..=n).map(|j| binomial_pmf(n, p, j)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn binomial_degenerate() {
        assert_eq!(binomial_pmf(5, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(5, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(5, 1.0, 5), 1.0);
        assert_eq!(binomial_pmf(5, 0.5, 6), 0.0);
    }

    #[test]
    fn hypergeometric_sums_to_one() {
        let (n, b, r) = (20u64, 8u64, 7u64);
        let total: f64 = (0..=r).map(|k| hypergeometric_pmf(n, b, r, k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn hypergeometric_known_value() {
        // P[draw 2 specials of 2 in sample 2 from population 4 with 2] =
        // C(2,2)C(2,0)/C(4,2) = 1/6.
        assert!((hypergeometric_pmf(4, 2, 2, 2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hypergeometric_moments_match_formulas() {
        let (n, b, r) = (30u64, 12u64, 10u64);
        let mean: f64 = (0..=r)
            .map(|k| k as f64 * hypergeometric_pmf(n, b, r, k))
            .sum();
        assert!((mean - hypergeometric_mean(n, b, r)).abs() < 1e-9);
        let var: f64 = (0..=r)
            .map(|k| (k as f64 - mean).powi(2) * hypergeometric_pmf(n, b, r, k))
            .sum();
        assert!((var - hypergeometric_variance(n, b, r)).abs() < 1e-9);
    }

    #[test]
    fn tail_gt_complements_pmf() {
        let (n, b, r) = (15u64, 6u64, 5u64);
        for thr in 0..=5u64 {
            let tail = hypergeometric_tail_gt(n, b, r, thr);
            let direct: f64 = ((thr + 1)..=r)
                .map(|k| hypergeometric_pmf(n, b, r, k))
                .sum();
            assert!((tail - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_upper_known_points() {
        assert!((phi_upper(0.0) - 0.5).abs() < 1e-7);
        // Standard normal: P[X > 1.96] ≈ 0.0249979.
        assert!((phi_upper(1.96) - 0.024_997_9).abs() < 1e-5);
        assert!((phi_upper(-1.0) - 0.841_344_7).abs() < 1e-5);
        assert!(phi_upper(8.0) < 1e-14);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.5, 1.3, 2.7] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7);
        }
    }

    #[test]
    fn chebyshev_caps_at_one() {
        assert_eq!(chebyshev_bound(100.0, 1.0), 1.0);
        assert!((chebyshev_bound(1.0, 2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_eq7_chebyshev_instance() {
        // §4.1: with l² = 1.5, w_{n/2 − l√n/2 − 1} < 1/(2l²) = 1/3 (eq. 7).
        // Chebyshev with t = l√n/2 and Var ≈ n/8 · (something ≤ 1) gives the
        // 1/(2l²) form; check the generic inequality shape.
        let l2 = 1.5f64;
        assert!((chebyshev_bound(1.0 / 8.0, l2.sqrt() / 2.0) - 1.0 / (2.0 * l2)).abs() < 1e-12);
    }
}
