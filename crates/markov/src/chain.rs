//! Generic absorbing Markov chains and the fundamental-matrix method.

use core::fmt;

use crate::Matrix;

/// An absorbing Markov chain: a stochastic transition matrix plus a set of
/// absorbing states.
///
/// Expected absorption times come from the fundamental matrix
/// `N = (I − Q)⁻¹` where `Q` is the transition matrix restricted to
/// transient states: the expected number of steps from transient state `i`
/// is the `i`-th row sum of `N` — the method §4 cites from \[Isaa76\].
pub struct AbsorbingChain {
    p: Matrix,
    absorbing: Vec<bool>,
}

impl AbsorbingChain {
    /// Creates a chain, validating stochasticity.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not square, `absorbing.len()` mismatches, any row
    /// does not sum to 1 (±1e-9), or no state is absorbing.
    #[must_use]
    pub fn new(p: Matrix, absorbing: Vec<bool>) -> Self {
        assert_eq!(p.rows(), p.cols(), "transition matrix must be square");
        assert_eq!(p.rows(), absorbing.len(), "absorbing mask length mismatch");
        assert!(
            absorbing.iter().any(|a| *a),
            "an absorbing chain needs at least one absorbing state"
        );
        for i in 0..p.rows() {
            let sum = p.row_sum(i);
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "row {i} sums to {sum}, not 1 — not a stochastic matrix"
            );
            for j in 0..p.cols() {
                assert!(
                    (-1e-12..=1.0 + 1e-9).contains(&p[(i, j)]),
                    "entry ({i}, {j}) = {} is not a probability",
                    p[(i, j)]
                );
            }
        }
        AbsorbingChain { p, absorbing }
    }

    /// Number of states.
    #[must_use]
    pub fn states(&self) -> usize {
        self.p.rows()
    }

    /// Whether `state` is absorbing.
    #[must_use]
    pub fn is_absorbing(&self, state: usize) -> bool {
        self.absorbing[state]
    }

    /// The full transition matrix.
    #[must_use]
    pub fn transition_matrix(&self) -> &Matrix {
        &self.p
    }

    /// One-step probability of landing in the absorbing set from `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn one_step_absorption(&self, state: usize) -> f64 {
        (0..self.states())
            .filter(|j| self.absorbing[*j])
            .map(|j| self.p[(state, j)])
            .sum()
    }

    /// Absorption probabilities: `result[i][a]` is the probability that the
    /// chain started in state `i` is eventually absorbed in absorbing state
    /// `a` (columns indexed by position within the absorbing set, in state
    /// order). Computed as `B = N·R` with `R` the transient→absorbing block
    /// — the second standard use of the fundamental matrix. Rows for
    /// absorbing states are unit vectors. `None` if `I − Q` is singular.
    #[must_use]
    pub fn absorption_probabilities(&self) -> Option<Vec<Vec<f64>>> {
        let transient: Vec<usize> = (0..self.states()).filter(|s| !self.absorbing[*s]).collect();
        let absorbing: Vec<usize> = (0..self.states()).filter(|s| self.absorbing[*s]).collect();
        let mut result = vec![vec![0.0; absorbing.len()]; self.states()];
        for (col, &a) in absorbing.iter().enumerate() {
            result[a][col] = 1.0;
        }
        if transient.is_empty() {
            return Some(result);
        }
        let m = transient.len();
        let mut q = Matrix::zeros(m, m);
        let mut r = Matrix::zeros(m, absorbing.len());
        for (row, &i) in transient.iter().enumerate() {
            for (col, &j) in transient.iter().enumerate() {
                q[(row, col)] = self.p[(i, j)];
            }
            for (col, &a) in absorbing.iter().enumerate() {
                r[(row, col)] = self.p[(i, a)];
            }
        }
        let n = Matrix::identity(m).sub(&q).inverse()?;
        let b = n.mul(&r);
        for (row, &i) in transient.iter().enumerate() {
            for col in 0..absorbing.len() {
                result[i][col] = b[(row, col)];
            }
        }
        Some(result)
    }

    /// The indices of the absorbing states, in state order (the column
    /// order of [`AbsorbingChain::absorption_probabilities`]).
    #[must_use]
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.states()).filter(|s| self.absorbing[*s]).collect()
    }

    /// Expected number of steps to absorption from every state (0 for
    /// absorbing states), via the fundamental matrix. `None` if `I − Q` is
    /// singular (some transient state cannot reach the absorbing set).
    #[must_use]
    pub fn expected_absorption_times(&self) -> Option<Vec<f64>> {
        let transient: Vec<usize> = (0..self.states()).filter(|s| !self.absorbing[*s]).collect();
        if transient.is_empty() {
            return Some(vec![0.0; self.states()]);
        }
        let m = transient.len();
        let mut q = Matrix::zeros(m, m);
        for (a, &i) in transient.iter().enumerate() {
            for (b, &j) in transient.iter().enumerate() {
                q[(a, b)] = self.p[(i, j)];
            }
        }
        let n = Matrix::identity(m).sub(&q).inverse()?;
        let mut times = vec![0.0; self.states()];
        for (a, &i) in transient.iter().enumerate() {
            times[i] = n.row_sum(a);
        }
        Some(times)
    }
}

impl fmt::Debug for AbsorbingChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbsorbingChain")
            .field("states", &self.states())
            .field(
                "absorbing",
                &(0..self.states())
                    .filter(|s| self.absorbing[*s])
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gambler's ruin on {0,1,2,3} with absorbing ends and fair coin:
    /// E[T | start=1] = 1·(3−1) = 2, E[T | start=2] = 2·(3−2) = 2.
    #[test]
    fn gamblers_ruin_expected_times() {
        let p = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let chain = AbsorbingChain::new(p, vec![true, false, false, true]);
        let t = chain.expected_absorption_times().unwrap();
        assert_eq!(t[0], 0.0);
        assert!((t[1] - 2.0).abs() < 1e-10);
        assert!((t[2] - 2.0).abs() < 1e-10);
        assert_eq!(t[3], 0.0);
    }

    #[test]
    fn one_step_absorption_probability() {
        let p = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.3, 0.5, 0.2], &[0.0, 0.0, 1.0]]);
        let chain = AbsorbingChain::new(p, vec![true, false, true]);
        assert!((chain.one_step_absorption(1) - 0.5).abs() < 1e-12);
        assert_eq!(chain.one_step_absorption(0), 1.0);
    }

    #[test]
    fn geometric_absorption() {
        // Single transient state that falls in with prob 0.25 per step:
        // expected time 4.
        let p = Matrix::from_rows(&[&[0.75, 0.25], &[0.0, 1.0]]);
        let chain = AbsorbingChain::new(p, vec![false, true]);
        let t = chain.expected_absorption_times().unwrap();
        assert!((t[0] - 4.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "not a stochastic matrix")]
    fn rejects_non_stochastic_rows() {
        let p = Matrix::from_rows(&[&[0.5, 0.4], &[0.0, 1.0]]);
        let _ = AbsorbingChain::new(p, vec![false, true]);
    }

    #[test]
    #[should_panic(expected = "at least one absorbing state")]
    fn rejects_no_absorbing() {
        let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let _ = AbsorbingChain::new(p, vec![false, false]);
    }

    #[test]
    fn gamblers_ruin_absorption_probabilities() {
        // Fair gambler's ruin on {0,1,2,3}: from state i, P[absorb at 3] =
        // i/3.
        let p = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let chain = AbsorbingChain::new(p, vec![true, false, false, true]);
        assert_eq!(chain.absorbing_states(), vec![0, 3]);
        let b = chain.absorption_probabilities().unwrap();
        // Columns: [state 0, state 3].
        assert!((b[1][1] - 1.0 / 3.0).abs() < 1e-10);
        assert!((b[2][1] - 2.0 / 3.0).abs() < 1e-10);
        assert!((b[1][0] + b[1][1] - 1.0).abs() < 1e-10, "rows sum to 1");
        assert_eq!(b[0], vec![1.0, 0.0], "absorbing rows are unit vectors");
        assert_eq!(b[3], vec![0.0, 1.0]);
    }

    #[test]
    fn all_absorbing_is_trivial() {
        let p = Matrix::identity(3);
        let chain = AbsorbingChain::new(p, vec![true, true, true]);
        assert_eq!(
            chain.expected_absorption_times().unwrap(),
            vec![0.0, 0.0, 0.0]
        );
    }
}
