//! The §4.1 Markov chain: the simple-majority variant under fail-stop
//! faults.
//!
//! The system is in state `i` when `i` processes hold value 1. Each phase
//! every process receives a uniformly random view of `n−k` of the `n`
//! messages (the paper's simplifying assumption), so it flips to 1 with the
//! hypergeometric-majority probability
//!
//! ```text
//! w_i = P[ X(n, i, n−k) > (n−k)/2 ]        (ties adopt 0)
//! ```
//!
//! and — taking the processes' views as independent, as the paper does —
//! the next state is `Binomial(n, w_i)`, giving eq. (1):
//! `P_{i,j} = C(n,j) · w_i^j · (1 − w_i)^{n−j}`.

use crate::{binomial_pmf, hypergeometric_tail_gt, AbsorbingChain, Matrix};

/// The §4.1 chain for given `(n, k)`.
#[derive(Debug)]
pub struct FailStopChain {
    n: usize,
    k: usize,
    chain: AbsorbingChain,
}

impl FailStopChain {
    /// The paper's instance: `k = n/3`, absorbing states `[0, n/3−1]` and
    /// `[2n/3+1, n]`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 3.
    #[must_use]
    pub fn paper(n: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(3),
            "the paper's instance needs 3 | n"
        );
        let k = n / 3;
        let lo = n / 3; // absorbing: i < lo
        let hi = 2 * n / 3; // absorbing: i > hi
        Self::with_absorbing(n, k, lo, hi)
    }

    /// A generalized instance: absorbing exactly where the view majority is
    /// deterministic (`w_i = 0` or `w_i = 1`), i.e. `i ≤ (n−k)/2 − (k+1)`…
    /// more precisely where no view can reach a 1-majority (`i` small) or
    /// must (`i` large).
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k < n, "need at least one correct process");
        // w_i = 0 iff even the all-ones view cannot reach a majority:
        // min(i, n−k) ≤ (n−k)/2 ⇒ i ≤ (n−k)/2.
        // w_i = 1 iff even the all-zeros view fails: (n − i) ≤ (n−k)/2.
        let quota = n - k;
        let lo = quota / 2 + 1; // absorbing: i < lo
        let hi = n - (quota / 2 + 1); // absorbing: i > hi
        Self::with_absorbing(n, k, lo, hi)
    }

    /// Fully explicit construction: absorbing states are `i < lo` and
    /// `i > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`. The regions may overlap (making every state
    /// absorbing — as happens for `k = 0`, where every view's majority is
    /// deterministic).
    #[must_use]
    pub fn with_absorbing(n: usize, k: usize, lo: usize, hi: usize) -> Self {
        assert!(k < n, "need at least one correct process");
        let states = n + 1;
        let mut p = Matrix::zeros(states, states);
        let mut absorbing = vec![false; states];
        for i in 0..states {
            if i < lo || i > hi {
                absorbing[i] = true;
                p[(i, i)] = 1.0;
                continue;
            }
            let w = Self::w_value(n, k, i);
            for j in 0..states {
                p[(i, j)] = binomial_pmf(n as u64, w, j as u64);
            }
        }
        FailStopChain {
            n,
            k,
            chain: AbsorbingChain::new(p, absorbing),
        }
    }

    /// `w_i`: the probability that a uniformly random view of `n−k` of the
    /// `n` values (of which `i` are 1) contains a strict 1-majority.
    #[must_use]
    pub fn w_value(n: usize, k: usize, i: usize) -> f64 {
        let quota = (n - k) as u64;
        hypergeometric_tail_gt(n as u64, i as u64, quota, quota / 2)
    }

    /// The number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The assumed number of faulty processes.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying chain.
    #[must_use]
    pub fn chain(&self) -> &AbsorbingChain {
        &self.chain
    }

    /// Expected phases to absorption from state `i` (0 for absorbing
    /// states).
    ///
    /// # Panics
    ///
    /// Panics if the transient part cannot reach absorption (degenerate
    /// parameters).
    #[must_use]
    pub fn expected_phases_from(&self, i: usize) -> f64 {
        self.chain
            .expected_absorption_times()
            .expect("the §4.1 chain always reaches absorption")[i]
    }

    /// Expected phases from the hardest, balanced start `i = ⌊n/2⌋`.
    #[must_use]
    pub fn expected_phases_balanced(&self) -> f64 {
        self.expected_phases_from(self.n / 2)
    }

    /// The probability that the system started with `i` ones is absorbed on
    /// the **high** side (the all-ones decision region) — the analytic
    /// version of the paper's "the consensus value is … likely to be equal
    /// to the majority of the initial input values". The complementary mass
    /// is absorbed low.
    ///
    /// # Panics
    ///
    /// Panics if `i > n` or the chain is degenerate.
    #[must_use]
    pub fn probability_decides_one(&self, i: usize) -> f64 {
        assert!(i <= self.n, "state out of range");
        let absorbing = self.chain.absorbing_states();
        let probs = self
            .chain
            .absorption_probabilities()
            .expect("the §4.1 chain always reaches absorption");
        // High-side absorbing states are the ones above the transient band.
        absorbing
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > self.n / 2)
            .map(|(col, _)| probs[i][col])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_is_monotone_in_i() {
        let (n, k) = (30, 10);
        let mut prev = -1.0;
        for i in 0..=n {
            let w = FailStopChain::w_value(n, k, i);
            assert!(w >= prev - 1e-12, "w must be nondecreasing");
            assert!((0.0..=1.0).contains(&w));
            prev = w;
        }
    }

    #[test]
    fn w_symmetry() {
        // Swapping ones and zeros: w_i(majority of 1s) vs views of 0s.
        // With an odd quota there are no ties, so w_i + w'_{n−i} = 1 where
        // w' is the 0-majority probability = 1 − w by symmetry of the
        // hypergeometric: w_i = 1 − w_{n−i}.
        let (n, k) = (20, 5); // quota 15, odd
        for i in 0..=n {
            let a = FailStopChain::w_value(n, k, i);
            let b = FailStopChain::w_value(n, k, n - i);
            assert!((a + b - 1.0).abs() < 1e-9, "i={i}: {a} + {b}");
        }
    }

    #[test]
    fn w_extremes() {
        let (n, k) = (12, 4);
        assert_eq!(FailStopChain::w_value(n, k, 0), 0.0);
        assert_eq!(FailStopChain::w_value(n, k, n), 1.0);
        // i ≤ quota/2 ⇒ 0 (cannot out-vote within the view).
        assert_eq!(FailStopChain::w_value(n, k, 4), 0.0); // quota 8, need >4
        assert!(FailStopChain::w_value(n, k, 5) > 0.0);
    }

    #[test]
    fn paper_chain_shape() {
        let c = FailStopChain::paper(12);
        assert_eq!(c.chain().states(), 13);
        // Absorbing: 0..=3 and 9..=12.
        for i in 0..=3 {
            assert!(c.chain().is_absorbing(i), "{i}");
        }
        for i in 4..=8 {
            assert!(!c.chain().is_absorbing(i), "{i}");
        }
        for i in 9..=12 {
            assert!(c.chain().is_absorbing(i), "{i}");
        }
    }

    #[test]
    fn expected_phases_balanced_is_small() {
        // The headline claim (eq. 13): < 7 expected phases, independent of n.
        for n in [12usize, 18, 24, 30, 36] {
            let c = FailStopChain::paper(n);
            let e = c.expected_phases_balanced();
            assert!(
                e > 0.0 && e < 7.0,
                "n={n}: expected phases {e} out of the paper's range"
            );
        }
    }

    #[test]
    fn expected_phases_decrease_towards_absorbing() {
        let c = FailStopChain::paper(18);
        // Paper: E_{n/2} ≥ E_{n/2+1} ≥ … ≥ E_{2n/3+1} = 0.
        let balanced = c.expected_phases_from(9);
        let off = c.expected_phases_from(11);
        let edge = c.expected_phases_from(12);
        assert!(balanced >= off - 1e-9);
        assert!(off >= edge - 1e-9);
        assert_eq!(c.expected_phases_from(13), 0.0);
    }

    #[test]
    fn generalized_constructor_boundaries() {
        // n = 10, k = 2: quota 8, absorbing where a view majority is forced:
        // i ≤ 4 (can't out-vote) and i ≥ 6 (can't be out-voted).
        let c = FailStopChain::new(10, 2);
        assert!(c.chain().is_absorbing(4));
        assert!(!c.chain().is_absorbing(5));
        assert!(c.chain().is_absorbing(6));
        assert!(c.expected_phases_from(5) > 0.0);
    }

    #[test]
    fn zero_faults_makes_every_state_absorbing() {
        // k = 0: every view is the full vote, so every majority is
        // deterministic and the chain resolves in the current phase.
        let c = FailStopChain::new(10, 0);
        for i in 0..=10 {
            assert!(c.chain().is_absorbing(i), "{i}");
        }
    }

    #[test]
    #[should_panic(expected = "3 | n")]
    fn paper_requires_divisibility() {
        let _ = FailStopChain::paper(10);
    }

    #[test]
    fn decision_split_is_monotone_and_symmetric() {
        let c = FailStopChain::paper(18);
        let mut prev = 0.0;
        for i in 0..=18 {
            let p = c.probability_decides_one(i);
            assert!((0.0..=1.0 + 1e-9).contains(&p), "i={i}: {p}");
            assert!(p >= prev - 1e-9, "monotone in initial ones");
            prev = p;
        }
        // Extremes are certain.
        assert!(c.probability_decides_one(0) < 1e-12);
        assert!((c.probability_decides_one(18) - 1.0).abs() < 1e-12);
        // The protocol breaks view ties towards 0 (`majority_of`), and the
        // paper chain's quota 2n/3 = 12 is even, so ties exist: the split
        // from a balanced start leans towards 0 rather than being exactly
        // even.
        // The bias compounds: w < 1/2 at balance drags the mean below
        // balance, where w is smaller still — so the 1-side probability
        // from an exactly balanced start is tiny (≈ 2% at n = 18).
        let balanced = c.probability_decides_one(9);
        assert!(
            balanced < 0.5 && balanced > 0.0,
            "tie-to-zero bias expected, got {balanced}"
        );
    }

    #[test]
    fn decision_split_symmetric_with_odd_quota() {
        // With an odd quota there are no ties, so the split is exactly
        // symmetric: P[1 | i] = 1 − P[1 | n − i].
        let c = FailStopChain::new(20, 5); // quota 15, odd
        for i in 0..=20 {
            let a = c.probability_decides_one(i);
            let b = c.probability_decides_one(20 - i);
            assert!((a + b - 1.0).abs() < 1e-8, "i={i}: {a} + {b}");
        }
        assert!((c.probability_decides_one(10) - 0.5).abs() < 1e-8);
    }
}
