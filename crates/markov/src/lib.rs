//! # markov — the §4 performance analysis, reproduced analytically
//!
//! Section 4 of Bracha & Toueg bounds the expected number of phases of the
//! consensus protocols by modelling them as absorbing Markov chains. This
//! crate rebuilds the whole pipeline from scratch:
//!
//! * [`Matrix`] — dense linear algebra (Gauss-Jordan inversion) for the
//!   fundamental-matrix method `N = (I − Q)⁻¹` of \[Isaa76\];
//! * distributions ([`binomial_pmf`], [`hypergeometric_pmf`], …) —
//!   eqs. 1 and 3–5, the normal upper tail [`phi_upper`] (eq. 2) and
//!   Chebyshev's inequality (eq. 6);
//! * [`FailStopChain`] — the §4.1 chain: state = number of processes with
//!   value 1, hypergeometric view-majority probability `w_i`, binomial
//!   transition rows;
//! * [`collapsed`] — the 5-state partition `A/B/C/D/E`, the collapsed
//!   matrix `R` (eq. 11), and the closed-form bound (eq. 13) — **fewer than
//!   7 expected phases** at the paper's `l² = 1.5`;
//! * [`MaliciousChain`] — the §4.2 chain against the balancing adversary,
//!   with the `1/(2Φ(l))` bound: **constant expected phases for
//!   `k = o(√n)`**.
//!
//! Experiments E3 and E4 cross-check these analytic numbers against
//! Monte-Carlo simulation of the actual protocols.
//!
//! ## Quickstart
//!
//! ```
//! use markov::{collapsed, FailStopChain};
//!
//! // The exact chain for n = 30, k = n/3: expected phases from a 15/15
//! // split, versus the paper's closed-form bound.
//! let chain = FailStopChain::paper(30);
//! let exact = chain.expected_phases_balanced();
//! let bound = collapsed::headline_bound(30);
//! assert!(exact < bound);
//! assert!(bound < 7.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chain;
pub mod collapsed;
mod dist;
mod failstop_chain;
mod linalg;
mod malicious_chain;
mod simulate;

pub use chain::AbsorbingChain;
pub use dist::{
    binomial_pmf, chebyshev_bound, erfc, hypergeometric_mean, hypergeometric_pmf,
    hypergeometric_tail_gt, hypergeometric_variance, ln_choose, ln_factorial, ln_gamma, phi_upper,
};
pub use failstop_chain::FailStopChain;
pub use linalg::Matrix;
pub use malicious_chain::MaliciousChain;
pub use simulate::ChainSampler;
