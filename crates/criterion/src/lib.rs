//! # criterion — offline stand-in for the criterion benchmark harness
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This crate provides the exact surface the
//! workspace's benches use — `Criterion::default().sample_size(n)`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — timing with [`std::time::Instant`] and printing a
//! plain-text summary (min / mean / max per sample) to stdout.
//!
//! There is no statistical regression analysis, warm-up tuning, or HTML
//! report; benches here are smoke-level timers whose numbers are still
//! comparable run-over-run on the same machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as the real crate provides.
pub use std::hint::black_box;

/// The benchmark driver: collects samples and prints a summary line.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: calls `f` once per sample and reports the
    /// distribution of per-iteration times.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // One untimed pass to warm caches and lazy statics.
        let mut warmup = Bencher::default();
        f(&mut warmup);
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "bench {id:<44} samples {:>3}  min {:>12?}  mean {:>12?}  max {:>12?}",
            samples.len(),
            min,
            mean,
            max
        );
        self
    }
}

/// Times the closure passed to [`Bencher::iter`] for one sample.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once, timing it; the routine under test returns a value so
    /// the optimizer cannot discard the work (it is also black-boxed).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Declares a benchmark group function, mirroring the real macro's two
/// accepted shapes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_runs_and_times() {
        benches();
    }

    #[test]
    fn bencher_accumulates_time() {
        let mut b = Bencher::default();
        b.iter(|| std::thread::sleep(std::time::Duration::from_millis(1)));
        assert!(b.elapsed >= std::time::Duration::from_millis(1));
    }
}
