//! The per-node write-ahead log: crash recovery for the socket runtime.
//!
//! A node's entire execution is a deterministic function of its
//! configuration and the sequence of messages delivered to its state
//! machine (coin flips included — the RNG is seeded and its state is
//! checkpointed). The WAL therefore records exactly that sequence: one
//! [`WalRecord::Boot`] header, then one [`WalRecord::Delivery`] per
//! delivered message, with an optional [`WalRecord::Snapshot`] checkpoint
//! so replay need not start from genesis.
//!
//! The recovery invariant is **log-before-send**: the event loop appends
//! (and flushes) the delivery record *before* dispatching any message that
//! delivery produced. A node restarted from its log re-derives the exact
//! state it had durably reached, and re-produces byte-identical frames
//! under the same sequence numbers — pure retransmission, which the
//! receiver's seq-dedup layer absorbs. A crashed-and-recovered node can
//! therefore never equivocate: it is benign, not Byzantine, exactly the
//! paper's fail-stop model extended with rejoin.
//!
//! # On-disk format
//!
//! The log is a flat sequence of records, each
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [body: len bytes]
//! ```
//!
//! where the checksum (CRC-32/ISO-HDLC, the zlib polynomial) covers the
//! body, and the body is the [`Wire`] encoding of a [`WalRecord`]. Records
//! are appended with a single `write(2)` each, so a SIGKILL can leave at
//! most one torn record at the tail. [`Wal::open`] scans until the first
//! torn or corrupt record, reports how many bytes it discarded, and
//! truncates the file there so subsequent appends extend a clean prefix.
//! Durability is against *process* death (the kernel holds the page cache
//! once `write` returns); deployments that must survive power loss would
//! add an `fdatasync` per append at the same call site.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use simnet::{ProcessId, Wire, WireError, WireReader};

/// Hard cap on one record body; far above any frame the runtime produces
/// (snapshots of big systems included), so a corrupt length prefix is
/// rejected rather than allocated for.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// CRC-32/ISO-HDLC lookup table (reflected 0xEDB88320 polynomial).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32/ISO-HDLC checksum of `bytes` (zlib's `crc32`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The log header: enough to refuse replaying a log onto the wrong node
/// or the wrong cluster configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootRecord {
    /// The process this log belongs to.
    pub node: ProcessId,
    /// System size `n` at boot.
    pub n: usize,
    /// The node's RNG seed.
    pub seed: u64,
}

impl Wire for BootRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.n.encode(out);
        self.seed.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BootRecord {
            node: Wire::decode(r)?,
            n: Wire::decode(r)?,
            seed: Wire::decode(r)?,
        })
    }
}

/// One message delivered to the state machine, in delivery order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Who the message came from (possibly this node itself).
    pub from: ProcessId,
    /// The wire sequence number for remote deliveries — replay restores
    /// the receiver's per-peer high-water mark from it — or `None` for
    /// self-deliveries, which never touch a socket.
    pub seq: Option<u64>,
    /// The message payload, exactly as decoded from the wire (or as
    /// produced locally for self-sends).
    pub payload: Vec<u8>,
}

impl Wire for DeliveryRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.seq.encode(out);
        self.payload.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DeliveryRecord {
            from: Wire::decode(r)?,
            seq: Wire::decode(r)?,
            payload: Wire::decode(r)?,
        })
    }
}

/// A full node checkpoint: everything needed to resume without replaying
/// the deliveries that precede it.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SnapshotRecord {
    /// Local step counter at the checkpoint.
    pub step: u64,
    /// The RNG's original seed.
    pub rng_seed: u64,
    /// The RNG's 256-bit state (always 4 words).
    pub rng_state: Vec<u64>,
    /// The protocol state machine's own [`simnet::Process::snapshot`].
    pub process: Vec<u8>,
    /// Next outbound sequence number per peer.
    pub out_seq: Vec<u64>,
    /// Next expected inbound sequence number per peer (the durable
    /// delivered high-water marks).
    pub next_seq: Vec<u64>,
    /// Per-peer unacked outbound backlog: `(seq, payload)` pairs that must
    /// be offered for retransmission after restart.
    pub backlogs: Vec<Vec<(u64, Vec<u8>)>>,
    /// Pending self-deliveries (encoded messages the process sent to
    /// itself that had not yet been consumed at the checkpoint).
    pub self_queue: Vec<Vec<u8>>,
    /// The fault injector's 256-bit RNG state (always 4 words). Injector
    /// decisions consume random draws *and* gate sequence-number
    /// assignment (a dropped send allocates no seq), so replaying
    /// deliveries after the checkpoint with the injector stream at the
    /// wrong position would assign different seqs to the same payloads —
    /// wire-level equivocation. Restoring the stream keeps replayed
    /// frames byte-identical.
    pub injector_state: Vec<u64>,
}

impl Wire for SnapshotRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.step.encode(out);
        self.rng_seed.encode(out);
        self.rng_state.encode(out);
        self.process.encode(out);
        self.out_seq.encode(out);
        self.next_seq.encode(out);
        self.backlogs.encode(out);
        self.self_queue.encode(out);
        self.injector_state.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SnapshotRecord {
            step: Wire::decode(r)?,
            rng_seed: Wire::decode(r)?,
            rng_state: Wire::decode(r)?,
            process: Wire::decode(r)?,
            out_seq: Wire::decode(r)?,
            next_seq: Wire::decode(r)?,
            backlogs: Wire::decode(r)?,
            self_queue: Wire::decode(r)?,
            injector_state: Wire::decode(r)?,
        })
    }
}

/// One unit of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Log header; always the first record.
    Boot(BootRecord),
    /// One delivered message.
    Delivery(DeliveryRecord),
    /// A checkpoint superseding everything before it.
    Snapshot(SnapshotRecord),
}

impl Wire for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Boot(b) => {
                out.push(0);
                b.encode(out);
            }
            WalRecord::Delivery(d) => {
                out.push(1);
                d.encode(out);
            }
            WalRecord::Snapshot(s) => {
                out.push(2);
                s.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(WalRecord::Boot(Wire::decode(r)?)),
            1 => Ok(WalRecord::Delivery(Wire::decode(r)?)),
            2 => Ok(WalRecord::Snapshot(Wire::decode(r)?)),
            _ => Err(WireError::Invalid {
                what: "wal record tag",
                offset,
            }),
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every intact record, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from a torn or corrupt tail (0 for a clean log).
    pub tail_lost: u64,
}

impl Recovered {
    /// The boot header, if the log has one.
    #[must_use]
    pub fn boot(&self) -> Option<&BootRecord> {
        self.records.iter().find_map(|r| match r {
            WalRecord::Boot(b) => Some(b),
            _ => None,
        })
    }

    /// The latest snapshot, if any, and the deliveries logged after it
    /// (or after boot when no snapshot exists), in order.
    #[must_use]
    pub fn replay_plan(&self) -> (Option<&SnapshotRecord>, Vec<&DeliveryRecord>) {
        let last_snap = self
            .records
            .iter()
            .rposition(|r| matches!(r, WalRecord::Snapshot(_)));
        let snapshot = last_snap.map(|i| match &self.records[i] {
            WalRecord::Snapshot(s) => s,
            _ => unreachable!(),
        });
        let start = last_snap.map_or(0, |i| i + 1);
        let deliveries = self.records[start..]
            .iter()
            .filter_map(|r| match r {
                WalRecord::Delivery(d) => Some(d),
                _ => None,
            })
            .collect();
        (snapshot, deliveries)
    }
}

/// An open write-ahead log, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

/// Assembles the on-disk bytes of one record.
fn frame_record(record: &WalRecord) -> Vec<u8> {
    let body = record.to_bytes();
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Scans `bytes`, returning the intact records and the offset of the
/// first torn or corrupt record (== `bytes.len()` for a clean log).
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN || bytes.len() - pos - 8 < len {
            break; // torn tail or garbage length
        }
        let body = &bytes[pos + 8..pos + 8 + len];
        if crc32(body) != crc {
            break; // corrupt record: nothing after it can be trusted
        }
        match WalRecord::from_bytes(body) {
            Ok(record) => records.push(record),
            Err(_) => break, // checksummed but malformed: treat as corrupt
        }
        pos += 8 + len;
    }
    (records, pos)
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, recovering every
    /// intact record and truncating any torn or corrupt tail so the log
    /// ends on a record boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Wal, Recovered)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, good) = scan(&bytes);
        let tail_lost = (bytes.len() - good) as u64;
        if tail_lost > 0 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        Ok((Wal { file, path }, Recovered { records, tail_lost }))
    }

    /// Appends one record. A single `write(2)` makes the append atomic
    /// against process death; the call returns only once the kernel owns
    /// the bytes, which is the durability point of log-before-send.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.file.write_all(&frame_record(record))
    }

    /// Rewrites the log as `boot` + `snapshot` atomically (write to a
    /// sibling temp file, rename over), discarding the replayed history
    /// the snapshot supersedes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn compact(&mut self, boot: &BootRecord, snapshot: &SnapshotRecord) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        let mut out = Vec::new();
        out.extend_from_slice(&frame_record(&WalRecord::Boot(boot.clone())));
        out.extend_from_slice(&frame_record(&WalRecord::Snapshot(snapshot.clone())));
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        Ok(())
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> WalRecord {
        WalRecord::Boot(BootRecord {
            node: ProcessId::new(2),
            n: 5,
            seed: 77,
        })
    }

    fn delivery(from: usize, seq: Option<u64>, payload: &[u8]) -> WalRecord {
        WalRecord::Delivery(DeliveryRecord {
            from: ProcessId::new(from),
            seq,
            payload: payload.to_vec(),
        })
    }

    fn snapshot() -> WalRecord {
        WalRecord::Snapshot(SnapshotRecord {
            step: 42,
            rng_seed: 7,
            rng_state: vec![1, 2, 3, 4],
            process: vec![9, 9, 9],
            out_seq: vec![3, 0, 5],
            next_seq: vec![1, 0, 2],
            backlogs: vec![vec![(2, vec![8])], vec![], vec![(4, vec![])]],
            self_queue: vec![vec![1, 2], vec![]],
            injector_state: vec![5, 6, 7, 8],
        })
    }

    #[test]
    fn crc32_reference_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        for r in [
            boot(),
            delivery(1, Some(9), b"abc"),
            delivery(0, None, b""),
            snapshot(),
        ] {
            let bytes = r.to_bytes();
            assert_eq!(WalRecord::from_bytes(&bytes), Ok(r));
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.records.is_empty());
        let records = vec![
            boot(),
            delivery(1, Some(0), b"x"),
            delivery(2, Some(0), b"yy"),
        ];
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records, records);
        assert_eq!(recovered.tail_lost, 0);
        assert_eq!(
            recovered.boot().unwrap().node,
            ProcessId::new(2),
            "boot header survives"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_recovers_to_last_good_record() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&boot()).unwrap();
        wal.append(&delivery(1, Some(0), b"keep me")).unwrap();
        wal.append(&delivery(3, Some(1), b"torn away")).unwrap();
        drop(wal);

        // Tear the last record mid-body, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(
            recovered.records,
            vec![boot(), delivery(1, Some(0), b"keep me")],
            "replay stops at the last intact record"
        );
        assert!(recovered.tail_lost > 0);

        // The torn tail was truncated: new appends extend a clean log.
        wal.append(&delivery(4, Some(0), b"after repair")).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records.len(), 3);
        assert_eq!(recovered.tail_lost, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flipped_checksum_stops_replay_without_panic() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flipped.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&boot()).unwrap();
        wal.append(&delivery(1, Some(0), b"good")).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        wal.append(&delivery(2, Some(0), b"about to rot")).unwrap();
        wal.append(&delivery(3, Some(0), b"unreachable")).unwrap();
        drop(wal);

        // Flip one bit inside the third record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = good_len as usize + 10;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(
            recovered.records,
            vec![boot(), delivery(1, Some(0), b"good")],
            "nothing at or past the corruption is replayed"
        );
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "the corrupt suffix is truncated away"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hostile.wal");
        let mut bytes = frame_record(&boot());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records, vec![boot()]);
        assert!(recovered.tail_lost > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_plan_prefers_latest_snapshot() {
        let records = vec![
            boot(),
            delivery(0, Some(0), b"superseded"),
            snapshot(),
            delivery(1, Some(4), b"replay me"),
            delivery(0, None, b"self"),
        ];
        let recovered = Recovered {
            records,
            tail_lost: 0,
        };
        let (snap, deliveries) = recovered.replay_plan();
        assert_eq!(snap.unwrap().step, 42);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].payload, b"replay me");
        assert_eq!(deliveries[1].seq, None);

        // Without a snapshot, everything replays from genesis.
        let recovered = Recovered {
            records: vec![boot(), delivery(1, Some(0), b"a")],
            tail_lost: 0,
        };
        let (snap, deliveries) = recovered.replay_plan();
        assert!(snap.is_none());
        assert_eq!(deliveries.len(), 1);
    }

    #[test]
    fn compact_rewrites_to_boot_plus_snapshot() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&boot()).unwrap();
        for i in 0..50 {
            wal.append(&delivery(1, Some(i), b"bulk")).unwrap();
        }
        let bloated = std::fs::metadata(&path).unwrap().len();

        let WalRecord::Boot(b) = boot() else {
            unreachable!()
        };
        let WalRecord::Snapshot(s) = snapshot() else {
            unreachable!()
        };
        wal.compact(&b, &s).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < bloated);

        // Appends after compaction land after the snapshot.
        wal.append(&delivery(2, Some(50), b"tail")).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records.len(), 3);
        let (snap, deliveries) = recovered.replay_plan();
        assert_eq!(snap.unwrap(), &s);
        assert_eq!(deliveries.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
