//! The per-node write-ahead log: crash recovery for the socket runtime.
//!
//! A node's entire execution is a deterministic function of its
//! configuration and the sequence of messages delivered to its state
//! machine (coin flips included — the RNG is seeded and its state is
//! checkpointed). The WAL therefore records exactly that sequence: one
//! [`WalRecord::Boot`] header, then one [`WalRecord::Delivery`] per
//! delivered message, with an optional [`WalRecord::Snapshot`] checkpoint
//! so replay need not start from genesis.
//!
//! The recovery invariant is **log-before-send**: the event loop appends
//! (and flushes) the delivery record *before* dispatching any message that
//! delivery produced. A node restarted from its log re-derives the exact
//! state it had durably reached, and re-produces byte-identical frames
//! under the same sequence numbers — pure retransmission, which the
//! receiver's seq-dedup layer absorbs. A crashed-and-recovered node can
//! therefore never equivocate: it is benign, not Byzantine, exactly the
//! paper's fail-stop model extended with rejoin.
//!
//! # On-disk format
//!
//! The log is a flat sequence of records, each
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [body: len bytes]
//! ```
//!
//! where the checksum (CRC-32/ISO-HDLC, the zlib polynomial) covers the
//! body, and the body is the [`Wire`] encoding of a [`WalRecord`]. Records
//! are appended with a single `write(2)` each, so a SIGKILL can leave at
//! most one torn record at the tail. Durability is against *process*
//! death (the kernel holds the page cache once `write` returns);
//! deployments that must survive power loss would add an `fdatasync` per
//! append at the same call site.
//!
//! # Damage classification
//!
//! [`Wal::open`] scans until the first bad record and *classifies* the
//! damage ([`WalDamage`]) instead of blindly truncating:
//!
//! * **torn tail** — the bad region is an *incomplete* final record (a
//!   header shorter than 8 bytes, or a plausible length whose body runs
//!   past end-of-file). This is the only shape a crash mid-append can
//!   produce; the record never reached durability, so truncating it and
//!   replaying the clean prefix is safe. [`Wal::open`] does exactly that.
//! * **mid-log damage** — a *fully framed* record fails its checksum,
//!   decodes to garbage, or announces a hostile length. A single
//!   `write(2)` cannot leave this behind: it is bit rot, a short write
//!   that later appends buried, or tampering. Everything from the damage
//!   onward is untrusted **and the prefix watermark is a lie** — the node
//!   durably acknowledged deliveries the surviving prefix does not
//!   contain, so replaying the prefix and rejoining would re-send
//!   different bytes under used sequence numbers (equivocation). The log
//!   is left untouched as evidence and the caller must refuse to rejoin
//!   from it (see `node`'s amnesiac mode).
//!
//! A *missing* log (the third unsafe shape: lost rename, deleted file) is
//! indistinguishable from a fresh boot down here; the node layer detects
//! it by being told to expect history.
//!
//! All file I/O goes through the [`Storage`] trait so the fuzzer can
//! inject the damage above deterministically; see the [`storage`] module.
//!
//! [`storage`]: crate::storage

use std::io;
use std::path::{Path, PathBuf};

use simnet::{ProcessId, Value, Wire, WireError, WireReader};

use crate::storage::{RealStorage, Storage};

/// Hard cap on one record body; far above any frame the runtime produces
/// (snapshots of big systems included), so a corrupt length prefix is
/// rejected rather than allocated for.
pub const MAX_RECORD_LEN: usize = 1 << 24;

/// CRC-32/ISO-HDLC lookup table (reflected 0xEDB88320 polynomial).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32/ISO-HDLC checksum of `bytes` (zlib's `crc32`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The log header: enough to refuse replaying a log onto the wrong node
/// or the wrong cluster configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootRecord {
    /// The process this log belongs to.
    pub node: ProcessId,
    /// System size `n` at boot.
    pub n: usize,
    /// The node's RNG seed.
    pub seed: u64,
}

impl Wire for BootRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.n.encode(out);
        self.seed.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(BootRecord {
            node: Wire::decode(r)?,
            n: Wire::decode(r)?,
            seed: Wire::decode(r)?,
        })
    }
}

/// One message delivered to the state machine, in delivery order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Who the message came from (possibly this node itself).
    pub from: ProcessId,
    /// The wire sequence number for remote deliveries — replay restores
    /// the receiver's per-peer high-water mark from it — or `None` for
    /// self-deliveries, which never touch a socket.
    pub seq: Option<u64>,
    /// The message payload, exactly as decoded from the wire (or as
    /// produced locally for self-sends).
    pub payload: Vec<u8>,
}

impl Wire for DeliveryRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.seq.encode(out);
        self.payload.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DeliveryRecord {
            from: Wire::decode(r)?,
            seq: Wire::decode(r)?,
            payload: Wire::decode(r)?,
        })
    }
}

/// A full node checkpoint: everything needed to resume without replaying
/// the deliveries that precede it.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SnapshotRecord {
    /// Local step counter at the checkpoint.
    pub step: u64,
    /// The RNG's original seed.
    pub rng_seed: u64,
    /// The RNG's 256-bit state (always 4 words).
    pub rng_state: Vec<u64>,
    /// The protocol state machine's own [`simnet::Process::snapshot`].
    pub process: Vec<u8>,
    /// Next outbound sequence number per peer.
    pub out_seq: Vec<u64>,
    /// Next expected inbound sequence number per peer (the durable
    /// delivered high-water marks).
    pub next_seq: Vec<u64>,
    /// Per-peer unacked outbound backlog: `(seq, payload)` pairs that must
    /// be offered for retransmission after restart.
    pub backlogs: Vec<Vec<(u64, Vec<u8>)>>,
    /// Pending self-deliveries (encoded messages the process sent to
    /// itself that had not yet been consumed at the checkpoint).
    pub self_queue: Vec<Vec<u8>>,
    /// The fault injector's 256-bit RNG state (always 4 words). Injector
    /// decisions consume random draws *and* gate sequence-number
    /// assignment (a dropped send allocates no seq), so replaying
    /// deliveries after the checkpoint with the injector stream at the
    /// wrong position would assign different seqs to the same payloads —
    /// wire-level equivocation. Restoring the stream keeps replayed
    /// frames byte-identical.
    pub injector_state: Vec<u64>,
    /// Whether this checkpoint was installed by quorum state transfer
    /// rather than derived from the node's own history. An adopted node
    /// is a *learner*: it reports `adopted_decision` and serves state,
    /// but never sends protocol messages again (its own history is gone,
    /// so a fresh `on_start` could equivocate at the protocol level).
    /// The flag survives further restarts so the node resumes as a
    /// learner instead of replaying adopted state as if it were its own.
    pub adopted: bool,
    /// The decision confirmed by `f + 1` matching peers at adoption time
    /// (`None` when the quorum had not decided a one-shot value, e.g.
    /// for long-lived replicated-log processes).
    pub adopted_decision: Option<Value>,
}

impl Wire for SnapshotRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.step.encode(out);
        self.rng_seed.encode(out);
        self.rng_state.encode(out);
        self.process.encode(out);
        self.out_seq.encode(out);
        self.next_seq.encode(out);
        self.backlogs.encode(out);
        self.self_queue.encode(out);
        self.injector_state.encode(out);
        self.adopted.encode(out);
        self.adopted_decision.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SnapshotRecord {
            step: Wire::decode(r)?,
            rng_seed: Wire::decode(r)?,
            rng_state: Wire::decode(r)?,
            process: Wire::decode(r)?,
            out_seq: Wire::decode(r)?,
            next_seq: Wire::decode(r)?,
            backlogs: Wire::decode(r)?,
            self_queue: Wire::decode(r)?,
            injector_state: Wire::decode(r)?,
            adopted: Wire::decode(r)?,
            adopted_decision: Wire::decode(r)?,
        })
    }
}

/// One unit of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Log header; always the first record.
    Boot(BootRecord),
    /// One delivered message.
    Delivery(DeliveryRecord),
    /// A checkpoint superseding everything before it.
    Snapshot(SnapshotRecord),
}

impl Wire for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Boot(b) => {
                out.push(0);
                b.encode(out);
            }
            WalRecord::Delivery(d) => {
                out.push(1);
                d.encode(out);
            }
            WalRecord::Snapshot(s) => {
                out.push(2);
                s.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(WalRecord::Boot(Wire::decode(r)?)),
            1 => Ok(WalRecord::Delivery(Wire::decode(r)?)),
            2 => Ok(WalRecord::Snapshot(Wire::decode(r)?)),
            _ => Err(WireError::Invalid {
                what: "wal record tag",
                offset,
            }),
        }
    }
}

/// How the log's intact prefix ended — the recovery-safety judgement.
/// See the module docs for why the distinction matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalDamage {
    /// The log is clean: every byte belongs to an intact record.
    #[default]
    None,
    /// The final record is incomplete — the only shape a crash
    /// mid-append leaves. Safe: the torn bytes were truncated and the
    /// prefix replays.
    TornTail {
        /// Bytes truncated from the torn tail.
        lost: u64,
    },
    /// A fully framed record is corrupt (bad checksum, hostile length,
    /// or undecodable body). Unsafe: the durable watermark cannot be
    /// trusted, the file is left untouched as evidence, and the caller
    /// must not rejoin from this log.
    MidLog {
        /// Byte offset of the first corrupt record.
        offset: u64,
    },
}

impl WalDamage {
    /// Whether recovering from this log would risk equivocation — i.e.
    /// the node must declare amnesia instead of replaying.
    #[must_use]
    pub fn is_unsafe(&self) -> bool {
        matches!(self, WalDamage::MidLog { .. })
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every intact record before the first damage, in log order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from a torn tail (0 otherwise; mid-log damage is
    /// never discarded).
    pub tail_lost: u64,
    /// How the intact prefix ended.
    pub damage: WalDamage,
}

impl Recovered {
    /// The boot header, if the log has one.
    #[must_use]
    pub fn boot(&self) -> Option<&BootRecord> {
        self.records.iter().find_map(|r| match r {
            WalRecord::Boot(b) => Some(b),
            _ => None,
        })
    }

    /// The latest snapshot, if any, and the deliveries logged after it
    /// (or after boot when no snapshot exists), in order.
    #[must_use]
    pub fn replay_plan(&self) -> (Option<&SnapshotRecord>, Vec<&DeliveryRecord>) {
        let last_snap = self
            .records
            .iter()
            .rposition(|r| matches!(r, WalRecord::Snapshot(_)));
        let snapshot = last_snap.map(|i| match &self.records[i] {
            WalRecord::Snapshot(s) => s,
            _ => unreachable!(),
        });
        let start = last_snap.map_or(0, |i| i + 1);
        let deliveries = self.records[start..]
            .iter()
            .filter_map(|r| match r {
                WalRecord::Delivery(d) => Some(d),
                _ => None,
            })
            .collect();
        (snapshot, deliveries)
    }
}

/// An open write-ahead log, positioned for appending. All I/O is routed
/// through a [`Storage`] implementation ([`RealStorage`] unless
/// [`Wal::open_with`] injects another).
#[derive(Debug)]
pub struct Wal {
    storage: Box<dyn Storage>,
    path: PathBuf,
}

/// Assembles the on-disk bytes of one record.
fn frame_record(record: &WalRecord) -> Vec<u8> {
    let body = record.to_bytes();
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Scans `bytes`, returning the intact records and the offset of the
/// first torn or corrupt record (== `bytes.len()` for a clean log).
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN || bytes.len() - pos - 8 < len {
            break; // torn tail or garbage length
        }
        let body = &bytes[pos + 8..pos + 8 + len];
        if crc32(body) != crc {
            break; // corrupt record: nothing after it can be trusted
        }
        match WalRecord::from_bytes(body) {
            Ok(record) => records.push(record),
            Err(_) => break, // checksummed but malformed: treat as corrupt
        }
        pos += 8 + len;
    }
    (records, pos)
}

/// Classifies the bad region starting at `pos`: an incomplete final
/// record is a torn tail (the only shape a crash mid-append produces — a
/// partial `write(2)` persists a strict prefix of one record); anything
/// fully framed but invalid is mid-log corruption, wherever it sits.
fn classify(bytes: &[u8], pos: usize) -> WalDamage {
    let avail = bytes.len() - pos;
    if avail == 0 {
        return WalDamage::None;
    }
    if avail < 8 {
        return WalDamage::TornTail { lost: avail as u64 };
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    if len <= MAX_RECORD_LEN && avail - 8 < len {
        return WalDamage::TornTail { lost: avail as u64 };
    }
    WalDamage::MidLog { offset: pos as u64 }
}

impl Wal {
    /// Opens (creating if absent) the log at `path` through the real
    /// filesystem, recovering every intact record. A torn tail is
    /// truncated so appends extend a clean prefix; mid-log corruption is
    /// preserved and reported via [`Recovered::damage`] — the caller
    /// must check it before trusting the records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Wal, Recovered)> {
        Wal::open_with(path, Box::new(RealStorage::new()))
    }

    /// [`Wal::open`] through an arbitrary [`Storage`] layer — the fault
    /// injection seam.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open_with(
        path: impl AsRef<Path>,
        mut storage: Box<dyn Storage>,
    ) -> io::Result<(Wal, Recovered)> {
        let path = path.as_ref().to_path_buf();
        let bytes = storage.open(&path)?;
        let (records, good) = scan(&bytes);
        let damage = classify(&bytes, good);
        let mut tail_lost = 0;
        if let WalDamage::TornTail { lost } = damage {
            // Safe to repair: the torn record never reached durability.
            storage.truncate(good as u64)?;
            tail_lost = lost;
        }
        Ok((
            Wal { storage, path },
            Recovered {
                records,
                tail_lost,
                damage,
            },
        ))
    }

    /// Appends one record. A single `write(2)` makes the append atomic
    /// against process death; the call returns only once the kernel owns
    /// the bytes, which is the durability point of log-before-send.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.storage.append(&frame_record(record))
    }

    /// Rewrites the log as `boot` + `snapshot` atomically: stage to a
    /// sibling temp file, data-sync it, rename over the log, then sync
    /// the parent directory so the rename itself is durable (without the
    /// directory sync a compaction that survived `sync_data` can still
    /// vanish wholesale on power loss — leaving exactly the missing-log
    /// amnesia case).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn compact(&mut self, boot: &BootRecord, snapshot: &SnapshotRecord) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(&frame_record(&WalRecord::Boot(boot.clone())));
        out.extend_from_slice(&frame_record(&WalRecord::Snapshot(snapshot.clone())));
        self.storage.stage_replacement(&out)?;
        self.storage.commit_replacement()?;
        self.storage.sync_dir()
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> WalRecord {
        WalRecord::Boot(BootRecord {
            node: ProcessId::new(2),
            n: 5,
            seed: 77,
        })
    }

    fn delivery(from: usize, seq: Option<u64>, payload: &[u8]) -> WalRecord {
        WalRecord::Delivery(DeliveryRecord {
            from: ProcessId::new(from),
            seq,
            payload: payload.to_vec(),
        })
    }

    fn snapshot() -> WalRecord {
        WalRecord::Snapshot(SnapshotRecord {
            step: 42,
            rng_seed: 7,
            rng_state: vec![1, 2, 3, 4],
            process: vec![9, 9, 9],
            out_seq: vec![3, 0, 5],
            next_seq: vec![1, 0, 2],
            backlogs: vec![vec![(2, vec![8])], vec![], vec![(4, vec![])]],
            self_queue: vec![vec![1, 2], vec![]],
            injector_state: vec![5, 6, 7, 8],
            adopted: true,
            adopted_decision: Some(Value::One),
        })
    }

    #[test]
    fn crc32_reference_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        for r in [
            boot(),
            delivery(1, Some(9), b"abc"),
            delivery(0, None, b""),
            snapshot(),
        ] {
            let bytes = r.to_bytes();
            assert_eq!(WalRecord::from_bytes(&bytes), Ok(r));
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.records.is_empty());
        let records = vec![
            boot(),
            delivery(1, Some(0), b"x"),
            delivery(2, Some(0), b"yy"),
        ];
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records, records);
        assert_eq!(recovered.tail_lost, 0);
        assert_eq!(
            recovered.boot().unwrap().node,
            ProcessId::new(2),
            "boot header survives"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_recovers_to_last_good_record() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&boot()).unwrap();
        wal.append(&delivery(1, Some(0), b"keep me")).unwrap();
        wal.append(&delivery(3, Some(1), b"torn away")).unwrap();
        drop(wal);

        // Tear the last record mid-body, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(
            recovered.records,
            vec![boot(), delivery(1, Some(0), b"keep me")],
            "replay stops at the last intact record"
        );
        assert!(recovered.tail_lost > 0);
        assert_eq!(
            recovered.damage,
            WalDamage::TornTail {
                lost: recovered.tail_lost
            }
        );
        assert!(!recovered.damage.is_unsafe(), "a torn tail is repairable");

        // The torn tail was truncated: new appends extend a clean log.
        wal.append(&delivery(4, Some(0), b"after repair")).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records.len(), 3);
        assert_eq!(recovered.tail_lost, 0);
        assert_eq!(recovered.damage, WalDamage::None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_classified_midlog_and_preserved() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flipped.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&boot()).unwrap();
        wal.append(&delivery(1, Some(0), b"good")).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        wal.append(&delivery(2, Some(0), b"about to rot")).unwrap();
        wal.append(&delivery(3, Some(0), b"unreachable")).unwrap();
        drop(wal);

        // Flip one bit inside the third record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let full_len = bytes.len() as u64;
        let target = good_len as usize + 10;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(
            recovered.records,
            vec![boot(), delivery(1, Some(0), b"good")],
            "nothing at or past the corruption is replayed"
        );
        assert_eq!(recovered.damage, WalDamage::MidLog { offset: good_len });
        assert!(
            recovered.damage.is_unsafe(),
            "a flipped record is not a torn tail"
        );
        assert_eq!(recovered.tail_lost, 0, "nothing was discarded");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            full_len,
            "the damaged log is preserved as evidence, not truncated"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_final_record_is_midlog_not_torn() {
        // A fully framed record with a bad checksum at the very tail:
        // a crash mid-append cannot produce this (partial writes leave
        // an incomplete record), so it must classify as mid-log damage
        // even with nothing after it.
        let mut record = frame_record(&delivery(1, Some(0), b"rotted"));
        let last = record.len() - 1;
        record[last] ^= 0x01;
        let mut bytes = frame_record(&boot());
        let offset = bytes.len() as u64;
        bytes.extend_from_slice(&record);

        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail-rot.wal");
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records, vec![boot()]);
        assert_eq!(recovered.damage, WalDamage::MidLog { offset });
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            bytes.len() as u64,
            "preserved, not repaired"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hostile_length_prefix_is_midlog() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hostile.wal");
        let mut bytes = frame_record(&boot());
        let offset = bytes.len() as u64;
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records, vec![boot()]);
        // A length field can only be hostile if it was fully written —
        // a torn append persists a strict prefix — so this is corruption.
        assert_eq!(recovered.damage, WalDamage::MidLog { offset });
        assert_eq!(recovered.tail_lost, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipping_storage_surfaces_midlog_without_touching_disk() {
        use crate::storage::{DiskFault, FaultyStorage};

        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inject.wal");
        let _ = std::fs::remove_file(&path);

        // Offset 8 is the first body byte of the Boot record, so the
        // flip lands inside Boot on any non-empty log — including a
        // freshly compacted Boot+Snapshot one.
        let faulty = || Box::new(FaultyStorage::new(vec![DiskFault::Flip { offset: 8 }]));
        let (mut wal, recovered) = Wal::open_with(&path, faulty()).unwrap();
        assert_eq!(recovered.damage, WalDamage::None, "fresh log: no-op");
        wal.append(&boot()).unwrap();
        wal.append(&delivery(1, Some(0), b"x")).unwrap();
        drop(wal);

        let (_, recovered) = Wal::open_with(&path, faulty()).unwrap();
        assert_eq!(recovered.damage, WalDamage::MidLog { offset: 0 });
        assert!(recovered.records.is_empty(), "boot itself is untrusted");

        // The same log through honest storage is perfectly clean.
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.damage, WalDamage::None);
        assert_eq!(recovered.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_plan_prefers_latest_snapshot() {
        let records = vec![
            boot(),
            delivery(0, Some(0), b"superseded"),
            snapshot(),
            delivery(1, Some(4), b"replay me"),
            delivery(0, None, b"self"),
        ];
        let recovered = Recovered {
            records,
            tail_lost: 0,
            damage: WalDamage::None,
        };
        let (snap, deliveries) = recovered.replay_plan();
        assert_eq!(snap.unwrap().step, 42);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].payload, b"replay me");
        assert_eq!(deliveries[1].seq, None);

        // Without a snapshot, everything replays from genesis.
        let recovered = Recovered {
            records: vec![boot(), delivery(1, Some(0), b"a")],
            tail_lost: 0,
            damage: WalDamage::None,
        };
        let (snap, deliveries) = recovered.replay_plan();
        assert!(snap.is_none());
        assert_eq!(deliveries.len(), 1);
    }

    #[test]
    fn compact_rewrites_to_boot_plus_snapshot() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&boot()).unwrap();
        for i in 0..50 {
            wal.append(&delivery(1, Some(i), b"bulk")).unwrap();
        }
        let bloated = std::fs::metadata(&path).unwrap().len();

        let WalRecord::Boot(b) = boot() else {
            unreachable!()
        };
        let WalRecord::Snapshot(s) = snapshot() else {
            unreachable!()
        };
        wal.compact(&b, &s).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < bloated);

        // Appends after compaction land after the snapshot.
        wal.append(&delivery(2, Some(50), b"tail")).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.records.len(), 3);
        let (snap, deliveries) = recovered.replay_plan();
        assert_eq!(snap.unwrap(), &s);
        assert_eq!(deliveries.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    /// Records every [`Storage`] call, delegating to the real thing.
    #[derive(Debug)]
    struct SpyStorage {
        inner: RealStorage,
        ops: std::sync::Arc<std::sync::Mutex<Vec<&'static str>>>,
    }

    impl Storage for SpyStorage {
        fn open(&mut self, path: &Path) -> io::Result<Vec<u8>> {
            self.ops.lock().unwrap().push("open");
            self.inner.open(path)
        }
        fn truncate(&mut self, len: u64) -> io::Result<()> {
            self.ops.lock().unwrap().push("truncate");
            self.inner.truncate(len)
        }
        fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.ops.lock().unwrap().push("append");
            self.inner.append(bytes)
        }
        fn stage_replacement(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.ops.lock().unwrap().push("stage_replacement");
            self.inner.stage_replacement(bytes)
        }
        fn commit_replacement(&mut self) -> io::Result<()> {
            self.ops.lock().unwrap().push("commit_replacement");
            self.inner.commit_replacement()
        }
        fn sync_dir(&mut self) -> io::Result<()> {
            self.ops.lock().unwrap().push("sync_dir");
            self.inner.sync_dir()
        }
    }

    #[test]
    fn compact_syncs_the_parent_directory_after_the_rename() {
        let dir = std::env::temp_dir().join(format!("wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirsync.wal");
        let _ = std::fs::remove_file(&path);

        let ops = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let spy = SpyStorage {
            inner: RealStorage::new(),
            ops: ops.clone(),
        };
        let (mut wal, _) = Wal::open_with(&path, Box::new(spy)).unwrap();
        wal.append(&boot()).unwrap();
        let WalRecord::Boot(b) = boot() else {
            unreachable!()
        };
        let WalRecord::Snapshot(s) = snapshot() else {
            unreachable!()
        };
        wal.compact(&b, &s).unwrap();
        assert_eq!(
            *ops.lock().unwrap(),
            vec![
                "open",
                "append",
                "stage_replacement",
                "commit_replacement",
                "sync_dir"
            ],
            "the directory sync must follow the rename — a rename that \
             survives sync_data can still vanish with an unsynced dir entry"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
