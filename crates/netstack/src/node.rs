//! One networked consensus node: a [`Process`] state machine, its event
//! loop, and its socket plumbing.
//!
//! A node runs the *same* state machine the simulator runs — the type is
//! `Box<dyn Process<Msg = M> + Send>`, unchanged — but the engine around
//! it is threads and sockets instead of a discrete-event loop:
//!
//! ```text
//!            ┌────────────────────────────── node ─────────────────────────────┐
//!  peers ──▶ │ acceptor ─▶ readers ─▶ inbound queue ─▶ event loop ─▶ Process  │
//!            │                (seq dedup, acks,            │   ▲               │
//!            │                 wire validation)         outbox  rng (seeded)   │
//!            │                                             │                   │
//!            │            fault injector ─▶ per-peer sender threads ──────────▶│ ──▶ peers
//!            └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The event loop is the only thread that touches the process, so the
//! state machine needs no locking and keeps the simulator's atomic-step
//! semantics: one delivery, one computation, a finite set of sends that
//! leave before the next delivery is consumed. Self-addressed sends (the
//! paper's broadcasts include the sender) short-circuit through the
//! inbound queue — a node's channel to itself is memory, not a socket,
//! and is trivially reliable.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use simnet::{Ctx, Envelope, Event, Process, ProcessId, SharedSubscriber, SimRng, Wire};

use crate::conn::{spawn_sender, LinkStats, OutFrame};
use crate::fault::{FaultInjector, FaultPlan, LinkAction};
use crate::frame::{read_frame, write_frame, Frame};

/// Accepted-connection registry: stream clones by token, so shutdown can
/// unblock readers and each reader can prune its own entry when its
/// connection dies.
type StreamRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Locks a [`NodeStatus`] mutex, tolerating poisoning: the event loop may
/// die mid-update (see [`NodeStatus::died`]) and the snapshot must stay
/// readable afterwards.
fn lock_status(status: &Mutex<NodeStatus>) -> MutexGuard<'_, NodeStatus> {
    status.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// Static description of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's identity (also its index into `peers`).
    pub id: ProcessId,
    /// System size.
    pub n: usize,
    /// Seed for this node's deterministic random stream (randomized
    /// protocols draw coins from it, exactly as in the simulator).
    pub seed: u64,
    /// Faults to inject on this node's outbound links.
    pub fault: FaultPlan,
}

/// A live snapshot of a node's protocol state, updated by the event loop
/// after every atomic step.
#[derive(Clone, Debug, Default)]
pub struct NodeStatus {
    /// The decision `d_p`, once set (irrevocable).
    pub decision: Option<simnet::Value>,
    /// The phase in which the decision was made.
    pub decision_phase: Option<u64>,
    /// The node-local atomic step at which the decision was made.
    pub decision_step: Option<u64>,
    /// Current `phaseno`.
    pub phase: u64,
    /// Node-local atomic steps taken (start + deliveries).
    pub steps: u64,
    /// Whether the process has left the protocol.
    pub halted: bool,
    /// The event-loop thread panicked (a bug, or a hostile input the
    /// defensive layers missed): the node is dead, not merely undecided,
    /// and will never make progress. Surfaced so harnesses can fail fast
    /// instead of hanging until their deadline.
    pub died: bool,
}

/// Message-level counters for one node.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Messages the protocol asked to send (including to self).
    pub sent: AtomicU64,
    /// Messages delivered to the process.
    pub delivered: AtomicU64,
    /// Messages the fault injector dropped on purpose.
    pub injected_drops: AtomicU64,
    /// Messages discarded because this process had halted.
    pub dropped_at_halted: AtomicU64,
    /// Inbound payloads rejected at the wire: bytes that did not decode,
    /// or decoded to contents out of range for this system (e.g. a
    /// process id `>= n`). Byzantine bytes land here, not in the process.
    pub wire_rejected: AtomicU64,
    /// Inbound frames whose sequence number skipped ahead of the next
    /// expected one. An honest sender never skips (it replays its whole
    /// unacked backlog in order), so a gap marks a reliability violation
    /// or a hostile peer; the frame is dropped, never delivered.
    pub seq_gaps: AtomicU64,
}

/// A handle to a spawned node: status snapshots plus shutdown.
#[derive(Debug)]
pub struct NodeHandle {
    id: ProcessId,
    status: Arc<Mutex<NodeStatus>>,
    counters: Arc<NetCounters>,
    link_stats: Vec<Arc<LinkStats>>,
    shutdown: Arc<AtomicBool>,
    streams: StreamRegistry,
    threads: Vec<JoinHandle<()>>,
}

impl NodeHandle {
    /// This node's identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// A snapshot of the node's protocol state.
    #[must_use]
    pub fn status(&self) -> NodeStatus {
        lock_status(&self.status).clone()
    }

    /// Whether the node's event loop died (see [`NodeStatus::died`]).
    #[must_use]
    pub fn died(&self) -> bool {
        self.status().died
    }

    /// The node's decision, if it has made one.
    #[must_use]
    pub fn decision(&self) -> Option<simnet::Value> {
        self.status().decision
    }

    /// Total messages this node's protocol sent (including self-sends).
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.counters.sent.load(Ordering::Relaxed)
    }

    /// Total messages delivered to this node's protocol.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Relaxed)
    }

    /// Messages lost to fault injection plus messages addressed to this
    /// node after it halted.
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.counters.injected_drops.load(Ordering::Relaxed)
            + self.counters.dropped_at_halted.load(Ordering::Relaxed)
    }

    /// Times any outbound link of this node had to redial.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.link_stats
            .iter()
            .map(|s| s.reconnects.load(Ordering::Relaxed))
            .sum()
    }

    /// Unacked frames this node's links replayed after reconnects.
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.link_stats
            .iter()
            .map(|s| s.retransmits.load(Ordering::Relaxed))
            .sum()
    }

    /// Inbound payloads rejected at the wire (undecodable bytes or
    /// contents out of range for the system).
    #[must_use]
    pub fn wire_rejected(&self) -> u64 {
        self.counters.wire_rejected.load(Ordering::Relaxed)
    }

    /// Inbound frames dropped because their sequence number skipped ahead
    /// of the next expected one (see [`NetCounters::seq_gaps`]).
    #[must_use]
    pub fn seq_gaps(&self) -> u64 {
        self.counters.seq_gaps.load(Ordering::Relaxed)
    }

    /// Asks every thread to stop, unblocks them, and joins them. Safe to
    /// call more than once.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock reader threads stuck in read_exact.
        for s in self
            .streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Boots a node: takes ownership of its (already bound) listener, dials
/// its peers lazily, runs `process` on the event loop, and streams events
/// to `subscriber` if one is attached.
///
/// Binding the listener *before* spawning (and passing it in) is the
/// loopback-cluster handshake discipline: all addresses exist before any
/// node dials, so a dial failure is transient, never fatal.
///
/// # Errors
///
/// Propagates listener configuration failures; later socket errors are
/// handled by reconnection, not surfaced here.
pub fn spawn<M>(
    cfg: NodeConfig,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    process: Box<dyn Process<Msg = M> + Send>,
    subscriber: Option<SharedSubscriber>,
) -> io::Result<NodeHandle>
where
    M: Wire + Send + 'static,
{
    assert_eq!(peers.len(), cfg.n, "one address per process");
    assert!(cfg.id.index() < cfg.n, "node id within the system");

    let shutdown = Arc::new(AtomicBool::new(false));
    let status = Arc::new(Mutex::new(NodeStatus::default()));
    let counters = Arc::new(NetCounters::default());
    let streams: StreamRegistry = Arc::new(Mutex::new(HashMap::new()));
    let mut threads = Vec::new();

    // Inbound: readers push decoded envelopes, the event loop pops them.
    let (inbound_tx, inbound_rx) = mpsc::channel::<(ProcessId, M)>();

    // Receiver-side exactly-once: next expected sequence number per peer.
    let next_seq: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; cfg.n]));

    // Outbound: one sender thread per remote peer.
    let mut peer_txs: Vec<Option<mpsc::Sender<OutFrame>>> = Vec::with_capacity(cfg.n);
    let mut link_stats = Vec::new();
    for (i, addr) in peers.iter().enumerate() {
        if i == cfg.id.index() {
            peer_txs.push(None);
            continue;
        }
        let (tx, stats, handle) = spawn_sender(cfg.id, *addr, Arc::clone(&shutdown));
        peer_txs.push(Some(tx));
        link_stats.push(stats);
        threads.push(handle);
    }

    // Acceptor: non-blocking accept loop so shutdown can interrupt it.
    listener.set_nonblocking(true)?;
    {
        let shutdown = Arc::clone(&shutdown);
        let streams = Arc::clone(&streams);
        let inbound_tx = inbound_tx.clone();
        let next_seq = Arc::clone(&next_seq);
        let acceptor_counters = Arc::clone(&counters);
        let n = cfg.n;
        let me = cfg.id;
        let handle = thread::Builder::new()
            .name(format!("netstack-accept-p{}", me.index()))
            .spawn(move || {
                let mut reader_threads: Vec<JoinHandle<()>> = Vec::new();
                let mut next_token: u64 = 0;
                while !shutdown.load(Ordering::Relaxed) {
                    // Reap readers whose connections have closed, so flaky
                    // links cannot grow the handle list without bound (a
                    // reader prunes its own stream clone on the way out).
                    let mut i = 0;
                    while i < reader_threads.len() {
                        if reader_threads[i].is_finished() {
                            let _ = reader_threads.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            let token = next_token;
                            next_token += 1;
                            if let Ok(clone) = stream.try_clone() {
                                streams
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .insert(token, clone);
                            }
                            let reader = Reader {
                                stream,
                                token,
                                n,
                                tx: inbound_tx.clone(),
                                seqs: Arc::clone(&next_seq),
                                counters: Arc::clone(&acceptor_counters),
                                shutdown: Arc::clone(&shutdown),
                                registry: Arc::clone(&streams),
                            };
                            if let Ok(h) = thread::Builder::new()
                                .name(format!("netstack-read-p{}", me.index()))
                                .spawn(move || reader.run())
                            {
                                reader_threads.push(h);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                for h in reader_threads {
                    let _ = h.join();
                }
            })
            .expect("spawning the acceptor thread");
        threads.push(handle);
    }

    // The event loop: owns the process.
    let id = cfg.id;
    {
        let shutdown = Arc::clone(&shutdown);
        let status = Arc::clone(&status);
        let counters = Arc::clone(&counters);
        let injector = FaultInjector::new(cfg.fault.clone(), cfg.seed ^ 0x6e65_7473); // distinct stream from the protocol's
        let handle = thread::Builder::new()
            .name(format!("netstack-loop-p{}", cfg.id.index()))
            .spawn(move || {
                // A panic here (a protocol bug, or hostile input the
                // defensive layers missed) must not leave the node as a
                // silent zombie: catch it and mark the node dead so
                // status readers can fail fast.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    event_loop(
                        &cfg,
                        process,
                        &inbound_rx,
                        inbound_tx,
                        peer_txs,
                        &injector,
                        &status,
                        &counters,
                        subscriber,
                        &shutdown,
                    );
                }));
                if result.is_err() {
                    let mut st = lock_status(&status);
                    st.died = true;
                    st.halted = true;
                }
            })
            .expect("spawning the event loop thread");
        threads.push(handle);
    }

    Ok(NodeHandle {
        id,
        status,
        counters,
        link_stats,
        shutdown,
        streams,
        threads,
    })
}

/// What the sequence-number table says to do with an inbound frame.
enum Disposition {
    /// `seq` is the next expected: deliver it.
    Deliver,
    /// Already delivered (a reconnect replay): ack again, drop.
    Duplicate,
    /// Skipped ahead of the next expected seq. An honest sender replays
    /// its unacked backlog in order, so this is a reliability violation
    /// or a hostile peer: count it and drop, never deliver out of order.
    Gap,
}

/// One accepted inbound connection: reads frames until EOF, error, or
/// shutdown, acking delivered sequence numbers back to the sender.
struct Reader<M> {
    stream: TcpStream,
    /// This connection's key in the stream registry, pruned on exit.
    token: u64,
    n: usize,
    tx: mpsc::Sender<(ProcessId, M)>,
    seqs: Arc<Mutex<Vec<u64>>>,
    counters: Arc<NetCounters>,
    shutdown: Arc<AtomicBool>,
    registry: StreamRegistry,
}

impl<M: Wire> Reader<M> {
    fn run(mut self) {
        self.read_connection();
        // Dead connections must not accumulate in the registry.
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.token);
    }

    fn read_connection(&mut self) {
        // Handshake: the first frame must identify the peer.
        let from = match read_frame(&mut self.stream) {
            Ok(Frame::Hello { from }) if from.index() < self.n => from,
            _ => return, // not a peer speaking our protocol
        };
        while !self.shutdown.load(Ordering::Relaxed) {
            match read_frame(&mut self.stream) {
                Ok(Frame::Msg { seq, payload }) => {
                    let (disposition, ack) = {
                        let mut seqs = self.seqs.lock().expect("seq table poisoned");
                        let next = &mut seqs[from.index()];
                        let d = if seq > *next {
                            Disposition::Gap
                        } else if seq < *next {
                            Disposition::Duplicate
                        } else {
                            *next += 1;
                            Disposition::Deliver
                        };
                        (d, *next)
                    };
                    // Cumulative ack — re-sent even for duplicates and
                    // gaps so a reconnected sender can retire its backlog
                    // and resynchronize.
                    if write_frame(&mut self.stream, &Frame::Ack { next: ack }).is_err() {
                        return; // connection died; the sender will redial
                    }
                    match disposition {
                        Disposition::Deliver => {}
                        Disposition::Duplicate => continue,
                        Disposition::Gap => {
                            self.counters.seq_gaps.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                    // Byzantine bytes: payloads that do not decode, or
                    // decode to contents out of range for this system,
                    // are dropped here — they must never reach (and
                    // possibly kill) the protocol. The link stays up.
                    let Ok(msg) = M::from_bytes(&payload) else {
                        self.counters.wire_rejected.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    if !msg.validate(self.n) {
                        self.counters.wire_rejected.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if self.tx.send((from, msg)).is_err() {
                        return; // event loop gone
                    }
                }
                Ok(Frame::Hello { .. } | Frame::Ack { .. }) => continue, // not meaningful inbound
                Err(_) => return, // EOF, reset, or malformed framing
            }
        }
    }
}

/// Runs the process: one `on_start`, then one `on_receive` per delivery.
#[allow(clippy::too_many_arguments)] // internal plumbing, never public API
fn event_loop<M: Wire + Send + 'static>(
    cfg: &NodeConfig,
    mut process: Box<dyn Process<Msg = M> + Send>,
    inbound_rx: &mpsc::Receiver<(ProcessId, M)>,
    self_tx: mpsc::Sender<(ProcessId, M)>,
    peer_txs: Vec<Option<mpsc::Sender<OutFrame>>>,
    injector: &FaultInjector,
    status: &Mutex<NodeStatus>,
    counters: &NetCounters,
    subscriber: Option<SharedSubscriber>,
    shutdown: &AtomicBool,
) {
    let me = cfg.id;
    let n = cfg.n;
    let mut rng = SimRng::seed(cfg.seed);
    let mut step: u64 = 0;
    let mut out_seq: Vec<u64> = vec![0; n];
    let mut outbox: Vec<(ProcessId, M)> = Vec::new();
    let observed = subscriber.is_some();
    let mut decided = false;
    let mut halt_published = false;

    let publish = |event: Event| {
        if let Some(s) = &subscriber {
            s.lock().expect("subscriber lock poisoned").on_event(&event);
        }
    };

    // The initial atomic step.
    publish(Event::Start { pid: me });
    {
        let mut ctx = Ctx::new(me, n, step, &mut outbox, &mut rng).with_obs(observed);
        process.on_start(&mut ctx);
        for event in ctx.take_events() {
            publish(Event::Protocol {
                step,
                pid: me,
                event,
            });
        }
    }
    dispatch(
        me,
        step,
        &mut outbox,
        &mut out_seq,
        &self_tx,
        &peer_txs,
        injector,
        counters,
        &publish,
    );
    observe(
        process.as_ref(),
        me,
        step,
        status,
        &mut decided,
        &mut halt_published,
        &publish,
    );

    // Delivery steps.
    while !shutdown.load(Ordering::Relaxed) {
        let (from, msg) = match inbound_rx.recv_timeout(POLL) {
            Ok(delivery) => delivery,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        if process.halted() {
            counters.dropped_at_halted.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        step += 1;
        counters.delivered.fetch_add(1, Ordering::Relaxed);
        // A networked node has no delivery buffer the scheduler indexes
        // into — the OS hands messages over in arrival order — so the
        // schedule slot is always 0.
        publish(Event::Deliver {
            step,
            to: me,
            from,
            index: 0,
        });
        {
            let mut ctx = Ctx::new(me, n, step, &mut outbox, &mut rng).with_obs(observed);
            process.on_receive(Envelope::new(from, msg), &mut ctx);
            for event in ctx.take_events() {
                publish(Event::Protocol {
                    step,
                    pid: me,
                    event,
                });
            }
        }
        dispatch(
            me,
            step,
            &mut outbox,
            &mut out_seq,
            &self_tx,
            &peer_txs,
            injector,
            counters,
            &publish,
        );
        observe(
            process.as_ref(),
            me,
            step,
            status,
            &mut decided,
            &mut halt_published,
            &publish,
        );
    }
}

/// Routes one step's outbox: self-sends loop back, remote sends pass the
/// fault injector and land on the link queues.
#[allow(clippy::too_many_arguments)] // internal plumbing, never public API
fn dispatch<M: Wire>(
    me: ProcessId,
    step: u64,
    outbox: &mut Vec<(ProcessId, M)>,
    out_seq: &mut [u64],
    self_tx: &mpsc::Sender<(ProcessId, M)>,
    peer_txs: &[Option<mpsc::Sender<OutFrame>>],
    injector: &FaultInjector,
    counters: &NetCounters,
    publish: &impl Fn(Event),
) {
    for (to, msg) in outbox.drain(..) {
        counters.sent.fetch_add(1, Ordering::Relaxed);
        publish(Event::Send { step, from: me, to });
        if to == me {
            let _ = self_tx.send((me, msg));
            continue;
        }
        let Some(tx) = peer_txs.get(to.index()).and_then(Option::as_ref) else {
            continue; // address outside the system: a Byzantine no-op
        };
        let not_before = match injector.action(me, to) {
            LinkAction::Drop => {
                counters.injected_drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            LinkAction::Deliver => Instant::now(),
            LinkAction::DelayBy(d) => Instant::now() + d,
        };
        let seq = out_seq[to.index()];
        out_seq[to.index()] += 1;
        let _ = tx.send(OutFrame {
            seq,
            not_before,
            payload: msg.to_bytes(),
        });
    }
}

/// Mirrors `Sim::observe`: records decisions and halts exactly once.
fn observe<M>(
    process: &(dyn Process<Msg = M> + Send),
    me: ProcessId,
    step: u64,
    status: &Mutex<NodeStatus>,
    decided: &mut bool,
    halt_published: &mut bool,
    publish: &impl Fn(Event),
) {
    let halted = process.halted();
    let mut newly_decided = None;
    {
        let mut st = lock_status(status);
        st.steps = step + 1;
        st.phase = process.phase();
        st.halted = halted;
        if !*decided {
            if let Some(v) = process.decision() {
                *decided = true;
                st.decision = Some(v);
                st.decision_phase = process.decision_phase();
                st.decision_step = Some(step);
                newly_decided = Some(v);
            }
        }
    }
    if let Some(value) = newly_decided {
        publish(Event::Decide {
            step,
            pid: me,
            value,
        });
    }
    if halted && !*halt_published {
        *halt_published = true;
        publish(Event::Halt { step, pid: me });
    }
}
