//! One networked consensus node: a [`Process`] state machine driven by a
//! single nonblocking event loop that owns every socket.
//!
//! A node runs the *same* state machine the simulator runs — the type is
//! `Box<dyn Process<Msg = M> + Send>`, unchanged — but the engine around
//! it is one poll loop instead of a discrete-event scheduler:
//!
//! ```text
//!           ┌───────────────────────── node (ONE thread) ─────────────────────┐
//! peers ──▶ │ listener ─▶ inbound conns ─▶ seq dedup / acks / wire validation │
//!           │                  │                          │                   │
//!           │               poller ◀── readiness ──▶   Process ◀── rng (seeded)
//!           │                  │                          │                   │
//!           │        WAL (log-before-send) ◀────── deliveries                 │
//!           │          fault injector ─▶ per-peer links (ack-gated backlog,   │
//!           │                            coalesced writev) ──────────────────▶│ ──▶ peers
//!           └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The event thread is the only thread, full stop: it accepts, reads,
//! frames, dedups, delivers, journals, and writes. The previous runtime
//! spent `2 + 2(n-1)` threads per node (acceptor, event loop, a reader
//! and a sender per peer) — `O(n²)` threads per cluster; this one spends
//! exactly one per node. The process still needs no locking and keeps
//! the simulator's atomic-step semantics: one delivery, one computation,
//! a finite set of sends that leave before the next delivery is
//! consumed. Self-addressed sends (the paper's broadcasts include the
//! sender) never touch a socket: they sit in a loop-owned queue, which
//! also makes them checkpointable.
//!
//! Per tick the loop waits on the poller (capped at [`POLL`] so shutdown
//! and timers stay responsive, shortened to the next link deadline —
//! a redial or a fault-injected delay release), handles each readiness
//! event by draining the socket until `WouldBlock` (the edge-triggered
//! contract), and then pumps every outbound link once: eligible backlog
//! frames are coalesced into a single vectored write per peer. Acks for
//! a batch of inbound frames are likewise flushed once per event, not
//! once per frame.
//!
//! # Crash recovery
//!
//! With [`NodeConfig::wal`] set, the node journals its execution to a
//! write-ahead log (see [`crate::wal`]). A node's run is a deterministic
//! function of its configuration and the sequence of messages delivered
//! to its state machine — coins included, because the RNG is seeded — so
//! the log records exactly that sequence, plus periodic snapshots so
//! replay need not start from genesis.
//!
//! The invariant is **log-before-send**: a delivery is durable before any
//! message it produces reaches a socket. The event loop appends inside
//! [`Loop::deliver`] and flushes sockets only afterwards, so the order
//! holds by construction. A restarted node replays its log, re-derives
//! exactly the state it had durably reached, and re-sends byte-identical
//! frames under the same sequence numbers — pure retransmission, absorbed
//! by the receivers' seq-dedup. A recovered node can therefore never emit
//! two different payloads for the same sequence slot; receivers
//! cross-check this with per-`(peer, seq)` payload hashes and count
//! violations in [`NetCounters::equivocations`].
//!
//! When the WAL is on, acks are *durability-gated*: the loop acknowledges
//! only what it has journalled, so a sender cannot retire a frame this
//! node could still lose to a crash. (Because the journal append happens
//! before the ack is computed, the ack for a just-delivered frame already
//! covers it — the watermark is never stale, only conservative for
//! frames that were rejected at the wire.)

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use obs::metrics::{Counter, Histogram, Registry, Snapshot};
use simnet::{Ctx, Envelope, Event, Process, ProcessId, SharedSubscriber, SimRng, Wire};

use crate::conn::{InConn, Link, LinkStats, LoopStats, QueuedFrame};
use crate::fault::{FaultInjector, FaultPlan, LinkAction};
use crate::frame::{encode_chunk, Frame};
use crate::poll::{connect_nonblocking, Dial, PollEvent, Poller};
use crate::storage::FaultyStorage;
use crate::wal::{BootRecord, DeliveryRecord, SnapshotRecord, Wal, WalRecord};

/// How often an amnesiac node re-probes its peers with
/// [`Frame::StateRequest`] until `k + 1` matching answers arrive.
const PROBE_EVERY: Duration = Duration::from_millis(25);

/// Locks a [`NodeStatus`] mutex, tolerating poisoning: the event loop may
/// die mid-update (see [`NodeStatus::died`]) and the snapshot must stay
/// readable afterwards.
fn lock_status(status: &Mutex<NodeStatus>) -> MutexGuard<'_, NodeStatus> {
    status.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The poller-wait cap: how often the loop re-checks the shutdown flag
/// even when no socket stirs and no timer is due.
const POLL: Duration = Duration::from_millis(20);

/// Token of the listening socket in the poller.
const TOKEN_LISTENER: u64 = 0;
/// Outbound link tokens: `OUT_BASE + peer_index`, stable for the life of
/// the node (each peer has at most one outbound connection at a time).
const OUT_BASE: u64 = 1;
/// Inbound connection tokens count up from here, never reused.
const IN_BASE: u64 = 1 << 32;

/// FNV-1a 64-bit hash of a payload — cheap, dependency-free, and plenty
/// for flagging a restarted sender that re-sends different bytes under a
/// sequence number it already used.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Static description of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's identity (also its index into `peers`).
    pub id: ProcessId,
    /// System size.
    pub n: usize,
    /// Seed for this node's deterministic random stream (randomized
    /// protocols draw coins from it, exactly as in the simulator).
    pub seed: u64,
    /// Resilience parameter: up to `k` peers may be faulty. Quorum state
    /// transfer accepts state only once `k + 1` peers agree on it, so no
    /// coalition of faulty peers can feed an amnesiac a forged state.
    pub k: usize,
    /// Faults to inject on this node's outbound links (and, via the
    /// `disk=` clauses, on this node's WAL storage).
    pub fault: FaultPlan,
    /// This boot is expected to find durable history on disk — set by a
    /// supervisor respawning a crashed incarnation. An empty or missing
    /// WAL is then a *lost log* (the node marks itself amnesiac and
    /// requests quorum state transfer) rather than a fresh start.
    pub expect_history: bool,
    /// Path of this node's write-ahead log. `None` (the default for a
    /// plain cluster) runs without durability; `Some` journals every
    /// delivery under the log-before-send invariant and recovers from
    /// the log on spawn if it already has history.
    pub wal: Option<PathBuf>,
    /// Checkpoint cadence: compact the WAL to a snapshot after this many
    /// processed deliveries (0 = never snapshot; replay runs from
    /// genesis). Ignored when `wal` is `None`.
    pub snapshot_every: u64,
    /// The metrics registry this node records into. `None` gives the node
    /// a fresh enabled registry of its own. A supervisor that restarts
    /// nodes should pass the *same* registry to every incarnation: the
    /// cells are keyed by `(name, labels)`, so the replacement's handles
    /// land on the predecessor's cells and long-run totals survive the
    /// restart.
    pub metrics: Option<Arc<Registry>>,
}

impl NodeConfig {
    /// A WAL-less config — the common case for ephemeral clusters.
    #[must_use]
    pub fn new(id: ProcessId, n: usize, seed: u64, fault: FaultPlan) -> Self {
        NodeConfig {
            id,
            n,
            seed,
            k: 0,
            fault,
            expect_history: false,
            wal: None,
            snapshot_every: 0,
            metrics: None,
        }
    }
}

/// A live snapshot of a node's protocol state, updated by the event loop
/// after every atomic step.
#[derive(Clone, Debug, Default)]
pub struct NodeStatus {
    /// The decision `d_p`, once set (irrevocable).
    pub decision: Option<simnet::Value>,
    /// The phase in which the decision was made.
    pub decision_phase: Option<u64>,
    /// The node-local atomic step at which the decision was made.
    pub decision_step: Option<u64>,
    /// Current `phaseno`.
    pub phase: u64,
    /// Node-local atomic steps taken (start + deliveries).
    pub steps: u64,
    /// Whether the process has left the protocol.
    pub halted: bool,
    /// The event-loop thread panicked (a bug, or a hostile input the
    /// defensive layers missed): the node is dead, not merely undecided,
    /// and will never make progress. Surfaced so harnesses can fail fast
    /// instead of hanging until their deadline.
    pub died: bool,
    /// Deliveries replayed from the WAL when this incarnation booted
    /// (0 for a fresh start).
    pub recovered: u64,
    /// The node found its WAL unsafely damaged (mid-log corruption or a
    /// lost log) at boot and is refusing to send protocol messages until
    /// quorum state transfer completes. See `docs/RECOVERY.md`.
    pub amnesiac: bool,
    /// This incarnation (or a predecessor sharing its WAL) rebuilt its
    /// state from `k + 1` matching peer responses rather than from its
    /// own log. The node participates as a learner from then on.
    pub state_transferred: bool,
}

/// Message-level counters for one node, as registry handles labelled
/// `{node}`. Handles address cells in the node's [`Registry`], so a
/// restarted incarnation sharing the registry keeps counting where its
/// predecessor stopped.
#[derive(Debug)]
pub struct NetCounters {
    /// Messages the protocol asked to send (including to self).
    pub sent: Counter,
    /// Messages delivered to the process.
    pub delivered: Counter,
    /// Messages the fault injector dropped on purpose.
    pub injected_drops: Counter,
    /// Messages discarded because this process had halted.
    pub dropped_at_halted: Counter,
    /// Inbound payloads rejected at the wire: bytes that did not decode,
    /// or decoded to contents out of range for this system (e.g. a
    /// process id `>= n`). Byzantine bytes land here, not in the process.
    pub wire_rejected: Counter,
    /// Inbound frames whose sequence number skipped ahead of the next
    /// expected one. An honest sender never skips (it replays its whole
    /// unacked backlog in order), so a gap marks a reliability violation
    /// or a hostile peer; the frame is dropped, never delivered.
    pub seq_gaps: Counter,
    /// Re-sent frames whose payload differed from the one first delivered
    /// under the same sequence number. A correct node — including one
    /// that crashed and recovered from its WAL — retransmits only
    /// byte-identical frames, so any count here is a recovery bug or a
    /// hostile peer caught red-handed.
    pub equivocations: Counter,
    /// Boots that found the WAL unsafely damaged: mid-log corruption, a
    /// hostile record, or a log that should exist but does not. Each one
    /// put the node into amnesiac refusal instead of a silent rejoin.
    pub wal_corruptions: Counter,
    /// Quorum state transfers completed: an amnesiac incarnation adopted
    /// state confirmed by `k + 1` matching peer responses and rejoined.
    pub state_transfers: Counter,
    /// [`Frame::StateRequest`] probes this node answered with a
    /// [`Frame::StateChunk`].
    pub state_requests_served: Counter,
}

impl NetCounters {
    /// Registers (or re-attaches to) the message counters for node `me`.
    #[must_use]
    pub fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        let labels: &[(&str, &str)] = &[("node", &node)];
        NetCounters {
            sent: registry.counter(
                "bt_msgs_sent_total",
                "messages the protocol asked to send, self-sends included",
                labels,
            ),
            delivered: registry.counter(
                "bt_msgs_delivered_total",
                "messages delivered to the process state machine",
                labels,
            ),
            injected_drops: registry.counter(
                "bt_injected_drops_total",
                "messages the fault injector dropped on purpose",
                labels,
            ),
            dropped_at_halted: registry.counter(
                "bt_dropped_at_halted_total",
                "messages discarded because this process had halted",
                labels,
            ),
            wire_rejected: registry.counter(
                "bt_wire_rejected_total",
                "inbound payloads rejected at the wire (undecodable or out of range)",
                labels,
            ),
            seq_gaps: registry.counter(
                "bt_seq_gaps_total",
                "inbound frames dropped for skipping ahead of the expected seq",
                labels,
            ),
            equivocations: registry.counter(
                "bt_equivocations_total",
                "re-sent frames whose payload differed under the same seq",
                labels,
            ),
            wal_corruptions: registry.counter(
                "bt_wal_corruptions_total",
                "boots that found the WAL unsafely damaged (mid-log corruption or lost log)",
                labels,
            ),
            state_transfers: registry.counter(
                "bt_state_transfers_total",
                "quorum state transfers completed by an amnesiac node",
                labels,
            ),
            state_requests_served: registry.counter(
                "bt_state_requests_served_total",
                "state-transfer probes answered with a StateChunk",
                labels,
            ),
        }
    }
}

/// Latency and durability telemetry for one node, labelled `{node}`.
#[derive(Clone, Debug)]
pub(crate) struct NodeMetrics {
    /// Protocol-message encode time (microseconds), on the send path.
    pub msg_encode_us: Histogram,
    /// Protocol-message decode time (microseconds), on the receive path.
    pub msg_decode_us: Histogram,
    /// WAL append latency (microseconds): the log-before-send write that
    /// makes a delivery durable. Appends are single `write(2)` calls —
    /// the fsync cost lives in compaction, measured separately.
    pub wal_append_us: Histogram,
    /// WAL compactions performed (tmp + fsync + rename checkpoints).
    pub wal_compactions: Counter,
    /// WAL compaction latency (microseconds), fsync included.
    pub wal_compact_us: Histogram,
    /// Times this node booted from a WAL with prior history.
    pub recoveries: Counter,
    /// Deliveries replayed from the WAL across all recoveries.
    pub recovered_deliveries: Counter,
    /// Wall-clock time one recovery replay took (microseconds).
    pub recovery_replay_us: Histogram,
}

impl NodeMetrics {
    fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        let labels: &[(&str, &str)] = &[("node", &node)];
        NodeMetrics {
            msg_encode_us: registry.histogram(
                "bt_msg_encode_us",
                "protocol message encode time on the send path (microseconds)",
                labels,
            ),
            msg_decode_us: registry.histogram(
                "bt_msg_decode_us",
                "protocol message decode time on the receive path (microseconds)",
                labels,
            ),
            wal_append_us: registry.histogram(
                "bt_wal_append_us",
                "WAL append latency for the log-before-send write (microseconds)",
                labels,
            ),
            wal_compactions: registry.counter(
                "bt_wal_compactions_total",
                "WAL compactions performed (tmp + fsync + rename)",
                labels,
            ),
            wal_compact_us: registry.histogram(
                "bt_wal_compact_us",
                "WAL compaction latency, fsync included (microseconds)",
                labels,
            ),
            recoveries: registry.counter(
                "bt_recoveries_total",
                "boots from a WAL with prior history",
                labels,
            ),
            recovered_deliveries: registry.counter(
                "bt_recovered_deliveries_total",
                "deliveries replayed from the WAL across all recoveries",
                labels,
            ),
            recovery_replay_us: registry.histogram(
                "bt_recovery_replay_us",
                "wall-clock duration of one recovery replay (microseconds)",
                labels,
            ),
        }
    }
}

/// A handle to a spawned node: status snapshots plus shutdown.
#[derive(Debug)]
pub struct NodeHandle {
    id: ProcessId,
    status: Arc<Mutex<NodeStatus>>,
    counters: Arc<NetCounters>,
    link_stats: Vec<Arc<LinkStats>>,
    registry: Arc<Registry>,
    next_seq: Arc<Mutex<Vec<u64>>>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl NodeHandle {
    /// This node's identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// A snapshot of the node's protocol state.
    #[must_use]
    pub fn status(&self) -> NodeStatus {
        lock_status(&self.status).clone()
    }

    /// The live status cell itself — what an admin endpoint polls without
    /// holding the whole handle.
    #[must_use]
    pub fn status_cell(&self) -> Arc<Mutex<NodeStatus>> {
        Arc::clone(&self.status)
    }

    /// The registry this node records its runtime telemetry into.
    #[must_use]
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A point-in-time snapshot of this node's metrics.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Whether the node's event loop died (see [`NodeStatus::died`]).
    #[must_use]
    pub fn died(&self) -> bool {
        self.status().died
    }

    /// The node's decision, if it has made one.
    #[must_use]
    pub fn decision(&self) -> Option<simnet::Value> {
        self.status().decision
    }

    /// Total messages this node's protocol sent (including self-sends).
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.counters.sent.get()
    }

    /// Total messages delivered to this node's protocol.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.counters.delivered.get()
    }

    /// Messages lost to fault injection plus messages addressed to this
    /// node after it halted.
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.counters.injected_drops.get() + self.counters.dropped_at_halted.get()
    }

    /// Times any outbound link of this node had to redial.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.link_stats.iter().map(|s| s.reconnects.get()).sum()
    }

    /// Unacked frames this node's links replayed after reconnects.
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.link_stats.iter().map(|s| s.retransmits.get()).sum()
    }

    /// Inbound payloads rejected at the wire (undecodable bytes or
    /// contents out of range for the system).
    #[must_use]
    pub fn wire_rejected(&self) -> u64 {
        self.counters.wire_rejected.get()
    }

    /// Inbound frames dropped because their sequence number skipped ahead
    /// of the next expected one (see [`NetCounters::seq_gaps`]).
    #[must_use]
    pub fn seq_gaps(&self) -> u64 {
        self.counters.seq_gaps.get()
    }

    /// Re-sent frames whose payload differed from the one first seen
    /// under the same sequence number (see [`NetCounters::equivocations`]).
    /// Always 0 for correct peers, crashed-and-recovered ones included.
    #[must_use]
    pub fn equivocations(&self) -> u64 {
        self.counters.equivocations.get()
    }

    /// Boots that found this node's WAL unsafely damaged (see
    /// [`NetCounters::wal_corruptions`]).
    #[must_use]
    pub fn wal_corruptions(&self) -> u64 {
        self.counters.wal_corruptions.get()
    }

    /// Quorum state transfers this node completed (see
    /// [`NetCounters::state_transfers`]).
    #[must_use]
    pub fn state_transfers(&self) -> u64 {
        self.counters.state_transfers.get()
    }

    /// The next sequence number this node expects from `peer` — i.e. one
    /// past the highest frame it has accepted under that peer slot,
    /// including frames recovered from the WAL. A client gateway that
    /// injects frames under its own node's peer slot resumes numbering
    /// from here after a restart, so its frames land as fresh deliveries
    /// rather than duplicates.
    #[must_use]
    pub fn next_expected_from(&self, peer: ProcessId) -> u64 {
        self.next_seq.lock().unwrap_or_else(PoisonError::into_inner)[peer.index()]
    }

    /// Asks the event thread to stop and joins it. The loop re-checks the
    /// flag at least every [`POLL`], so this returns promptly. Safe to
    /// call more than once.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Converts a stored RNG state vector back to its fixed-width form.
fn words4(v: &[u64], what: &str) -> io::Result<[u64; 4]> {
    v.try_into().map_err(|_| bad(what))
}

/// What the log said this boot is.
enum BootMode {
    /// No prior history: run `on_start` live.
    Fresh,
    /// The log has history: restore the latest snapshot (if any) and
    /// replay the deliveries after it, publishing nothing and counting
    /// nothing — the world already saw this prefix.
    Restart {
        snapshot: Box<Option<SnapshotRecord>>,
        deliveries: Vec<DeliveryRecord>,
    },
    /// The log is unsafely damaged (mid-log corruption) or missing when
    /// the supervisor says it must exist: the node cannot trust any
    /// re-derived state. It boots *amnesiac* — silent on the protocol
    /// plane, probing peers for quorum state transfer — and the damaged
    /// log is preserved untouched as evidence until adoption replaces it.
    Amnesiac,
}

/// Boots a node: takes ownership of its (already bound) listener, dials
/// its peers lazily, runs `process` on the event loop, and streams events
/// to `subscriber` if one is attached.
///
/// Binding the listener *before* spawning (and passing it in) is the
/// loopback-cluster handshake discipline: all addresses exist before any
/// node dials, so a dial failure is transient, never fatal.
///
/// With [`NodeConfig::wal`] set and prior history on disk, recovery runs
/// *synchronously here*, before the event thread starts accepting: the
/// sequence tables are initialized from the log, the snapshot (if any)
/// is restored, the logged deliveries are replayed through the state
/// machine, and the resulting (byte-identical) frames are re-queued on
/// the links. Only then does the loop begin consulting the tables, so a
/// frame arriving mid-recovery can never be mistaken for new.
///
/// # Errors
///
/// Propagates listener/poller configuration failures and WAL I/O errors,
/// and rejects a WAL that belongs to a different node/configuration or
/// whose snapshot is inconsistent with this system (`InvalidData`).
pub fn spawn<M>(
    cfg: NodeConfig,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    process: Box<dyn Process<Msg = M> + Send>,
    subscriber: Option<SharedSubscriber>,
) -> io::Result<NodeHandle>
where
    M: Wire + Send + 'static,
{
    assert_eq!(peers.len(), cfg.n, "one address per process");
    assert!(cfg.id.index() < cfg.n, "node id within the system");

    let shutdown = Arc::new(AtomicBool::new(false));
    let status = Arc::new(Mutex::new(NodeStatus::default()));
    let registry = cfg
        .metrics
        .clone()
        .unwrap_or_else(|| Arc::new(Registry::new()));
    let counters = Arc::new(NetCounters::new(&registry, cfg.id));
    let metrics = NodeMetrics::new(&registry, cfg.id);
    let io_stats = LoopStats::new(&registry, cfg.id);

    // Open the WAL (if configured) and decide fresh start vs. restart
    // before anything touches a socket.
    let boot = BootRecord {
        node: cfg.id,
        n: cfg.n,
        seed: cfg.seed,
    };
    let mut wal = None;
    let mut mode = BootMode::Fresh;
    if let Some(path) = &cfg.wal {
        let disk = cfg.fault.disk_for(cfg.id.index());
        let (mut w, recovered) = if disk.is_empty() {
            Wal::open(path)?
        } else {
            Wal::open_with(path, Box::new(FaultyStorage::new(disk)))?
        };
        if recovered.damage.is_unsafe() {
            // Mid-log damage: the durable prefix cannot be trusted (the
            // records after the damage are gone, so replay would regress
            // the watermark peers saw acked). Refuse to rejoin on it.
            counters.wal_corruptions.inc();
            mode = BootMode::Amnesiac;
        } else if recovered.records.is_empty() {
            if cfg.expect_history {
                // A supervisor restarted us, so the log must exist; an
                // empty one means it was lost (or torn back to nothing).
                counters.wal_corruptions.inc();
                mode = BootMode::Amnesiac;
            } else {
                w.append(&WalRecord::Boot(boot.clone()))?;
            }
        } else {
            let on_disk = recovered
                .boot()
                .ok_or_else(|| bad("wal has no boot header"))?;
            if *on_disk != boot {
                return Err(bad("wal belongs to a different node or configuration"));
            }
            let (snapshot, deliveries) = recovered.replay_plan();
            mode = BootMode::Restart {
                snapshot: Box::new(snapshot.cloned()),
                deliveries: deliveries.into_iter().cloned().collect(),
            };
        }
        wal = Some(w);
    }

    // Receiver-side exactly-once: next expected sequence number per peer,
    // initialized from the log so that frames already journalled by a
    // previous incarnation re-arrive as duplicates, not deliveries.
    let mut initial_next = vec![0u64; cfg.n];
    if let BootMode::Restart {
        snapshot,
        deliveries,
    } = &mode
    {
        if let Some(s) = &**snapshot {
            if s.next_seq.len() != cfg.n {
                return Err(bad("wal snapshot sized for a different system"));
            }
            initial_next.copy_from_slice(&s.next_seq);
        }
        for d in deliveries {
            if d.from.index() >= cfg.n {
                return Err(bad("wal delivery from a process outside the system"));
            }
            if let Some(s) = d.seq {
                let slot = &mut initial_next[d.from.index()];
                *slot = (*slot).max(s + 1);
            }
        }
    }
    let next_seq: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(initial_next.clone()));
    let durable_next: Arc<Vec<AtomicU64>> =
        Arc::new(initial_next.iter().map(|&v| AtomicU64::new(v)).collect());

    // Outbound: one passive link per remote peer, owned by the loop.
    let mut links: Vec<Option<Link>> = Vec::with_capacity(cfg.n);
    let mut link_stats = Vec::new();
    for (i, addr) in peers.iter().enumerate() {
        if i == cfg.id.index() {
            links.push(None);
            continue;
        }
        let link = Link::new(cfg.id, i, *addr, &registry);
        link_stats.push(Arc::clone(&link.stats));
        links.push(Some(link));
    }

    // The execution state the event loop will own, built (and possibly
    // recovered) on this thread so the node is fully caught up before it
    // starts accepting.
    let observed = subscriber.is_some();
    let mut lp = Loop {
        me: cfg.id,
        n: cfg.n,
        k: cfg.k,
        process,
        rng: SimRng::seed(cfg.seed),
        injector: FaultInjector::new(cfg.fault.clone(), cfg.seed ^ 0x6e65_7473), // distinct stream from the protocol's
        step: 0,
        out_seq: vec![0; cfg.n],
        outbox: Vec::new(),
        self_queue: VecDeque::new(),
        links,
        wal,
        boot,
        snapshot_every: cfg.snapshot_every,
        since_snapshot: 0,
        sent_log: vec![Vec::new(); cfg.n],
        durable_next: Arc::clone(&durable_next),
        status: Arc::clone(&status),
        counters: Arc::clone(&counters),
        metrics: metrics.clone(),
        subscriber,
        observed,
        decided: false,
        halt_published: false,
        amnesiac: false,
        adopted: false,
        adopted_decision: None,
        transfer_probe_at: None,
        transfer_offers: HashMap::new(),
    };

    match mode {
        BootMode::Fresh => lp.run_start(true),
        BootMode::Restart {
            snapshot,
            deliveries,
        } => {
            let replay_started = Instant::now();
            let replayed = lp.recover(*snapshot, &deliveries, &cfg)?;
            metrics.recoveries.inc();
            metrics.recovered_deliveries.add(replayed);
            metrics
                .recovery_replay_us
                .record_us(replay_started.elapsed());
            lock_status(&status).recovered = replayed;
            lp.publish(Event::Recover {
                step: lp.step,
                pid: cfg.id,
                replayed,
            });
        }
        BootMode::Amnesiac => {
            // No `on_start`, no replay, no WAL appends: the node joins
            // the network silently and probes for quorum state transfer.
            lp.amnesiac = true;
            lp.transfer_probe_at = Some(Instant::now());
            let mut st = lock_status(&status);
            st.amnesiac = true;
            st.steps = 1;
        }
    }

    // The poller and the listener registration happen here so
    // configuration failures surface as spawn errors, not a dead node.
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER)?;

    let id = cfg.id;
    let ev = EventLoop {
        lp,
        poller,
        listener,
        inconns: HashMap::new(),
        next_in_token: 0,
        seqs: Arc::clone(&next_seq),
        hashes: vec![HashMap::new(); cfg.n],
        io: io_stats,
        shutdown: Arc::clone(&shutdown),
    };
    let mut threads = Vec::new();
    {
        let status = Arc::clone(&status);
        let handle = thread::Builder::new()
            .name(format!("netstack-loop-p{}", cfg.id.index()))
            .spawn(move || {
                // A panic here (a protocol bug, hostile input the
                // defensive layers missed, or a WAL that can no longer
                // be appended to) must not leave the node as a silent
                // zombie: catch it and mark the node dead so status
                // readers can fail fast. Dying on a WAL write failure is
                // deliberate — without durability the no-equivocation
                // guarantee is gone, and fail-stop is the honest mode.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut ev = ev;
                    ev.run();
                }));
                if result.is_err() {
                    let mut st = lock_status(&status);
                    st.died = true;
                    st.halted = true;
                }
            })
            .expect("spawning the event loop thread");
        threads.push(handle);
    }

    Ok(NodeHandle {
        id,
        status,
        counters,
        link_stats,
        registry,
        next_seq,
        shutdown,
        threads,
    })
}

/// What the sequence-number table says to do with an inbound frame.
enum Disposition {
    /// `seq` is the next expected: deliver it.
    Deliver,
    /// Already delivered (a reconnect replay): ack again, drop.
    Duplicate,
    /// Skipped ahead of the next expected seq. An honest sender replays
    /// its unacked backlog in order, so this is a reliability violation
    /// or a hostile peer: count it and drop, never deliver out of order.
    Gap,
}

/// One peer's answer to a state-transfer probe, held until `k + 1` of
/// them match on `(decision, app_digest)`.
#[derive(Clone, Debug)]
struct TransferOffer {
    decision: Option<simnet::Value>,
    app_digest: u64,
    app: Option<Vec<u8>>,
}

/// The execution state owned by the event loop: the process, its RNG and
/// step counter, the outbound links, and (optionally) the WAL.
struct Loop<M: Wire> {
    me: ProcessId,
    n: usize,
    k: usize,
    process: Box<dyn Process<Msg = M> + Send>,
    rng: SimRng,
    injector: FaultInjector,
    step: u64,
    out_seq: Vec<u64>,
    outbox: Vec<(ProcessId, M)>,
    /// Pending self-deliveries (encoded), oldest first. Owned by the
    /// event loop — not a channel — so a checkpoint can capture it.
    self_queue: VecDeque<Vec<u8>>,
    /// Outbound links by peer index (`None` at this node's own slot).
    /// [`Loop`] only ever *queues* onto them; all socket I/O happens in
    /// [`EventLoop`], after the delivery (and its WAL append) completes.
    links: Vec<Option<Link>>,
    wal: Option<Wal>,
    boot: BootRecord,
    snapshot_every: u64,
    since_snapshot: u64,
    /// Per-peer journal of sent frames `(seq, payload)`, kept only when
    /// the WAL is on; pruned of acked frames at checkpoint time, what
    /// remains becomes the snapshot's retransmission backlog.
    sent_log: Vec<Vec<(u64, Vec<u8>)>>,
    /// Durable delivered watermark per peer (what acks may cover).
    durable_next: Arc<Vec<AtomicU64>>,
    status: Arc<Mutex<NodeStatus>>,
    counters: Arc<NetCounters>,
    metrics: NodeMetrics,
    subscriber: Option<SharedSubscriber>,
    observed: bool,
    decided: bool,
    halt_published: bool,
    /// Booted on an unsafely damaged (or missing) WAL: refuse to send
    /// protocol messages or append to the log until state transfer.
    amnesiac: bool,
    /// Rebuilt from quorum state transfer (this incarnation or one it
    /// restored from). An adopted node stays a learner: its pre-crash
    /// send history is unknowable, so a fresh `on_start` could emit a
    /// second, different INITIAL under new sequence numbers — exactly
    /// the protocol-level equivocation amnesia detection exists to stop.
    adopted: bool,
    /// The decision adopted from the quorum, if the peers had one.
    adopted_decision: Option<simnet::Value>,
    /// When the next state-transfer probe is due (`None` unless
    /// amnesiac).
    transfer_probe_at: Option<Instant>,
    /// Peer answers collected so far, keyed by peer index.
    transfer_offers: HashMap<usize, TransferOffer>,
}

impl<M: Wire> Loop<M> {
    fn publish(&self, event: Event) {
        if let Some(s) = &self.subscriber {
            s.lock().expect("subscriber lock poisoned").on_event(&event);
        }
    }

    /// The initial atomic step. With `live` false this is a replay
    /// re-derivation: same state, same sends, no publishing, no counting.
    fn run_start(&mut self, live: bool) {
        if live {
            self.publish(Event::Start { pid: self.me });
        }
        let events = {
            let mut ctx = Ctx::new(self.me, self.n, self.step, &mut self.outbox, &mut self.rng)
                .with_obs(self.observed && live)
                .with_live(live);
            self.process.on_start(&mut ctx);
            ctx.take_events()
        };
        if live {
            for event in events {
                self.publish(Event::Protocol {
                    step: self.step,
                    pid: self.me,
                    event,
                });
            }
        }
        self.dispatch(live);
        self.observe(live);
    }

    /// Restores the snapshot (if any) and replays the logged deliveries,
    /// returning how many were replayed. Runs before the loop starts.
    fn recover(
        &mut self,
        snapshot: Option<SnapshotRecord>,
        deliveries: &[DeliveryRecord],
        cfg: &NodeConfig,
    ) -> io::Result<u64> {
        match snapshot {
            Some(s) => {
                if s.out_seq.len() != self.n
                    || s.backlogs.len() != self.n
                    || s.next_seq.len() != self.n
                {
                    return Err(bad("wal snapshot sized for a different system"));
                }
                self.step = s.step;
                self.rng = SimRng::restore(s.rng_seed, words4(&s.rng_state, "rng state")?);
                self.injector = FaultInjector::with_state(
                    cfg.fault.clone(),
                    words4(&s.injector_state, "injector state")?,
                );
                self.adopted = s.adopted;
                self.adopted_decision = s.adopted_decision;
                if s.adopted {
                    // A learner's checkpoint may carry no process bytes
                    // (protocols without snapshot support adopt decisions
                    // only); the state machine then stays fresh — safe,
                    // because a learner never sends.
                    if !s.process.is_empty() && !self.process.restore(&s.process) {
                        return Err(bad("protocol state machine rejected its snapshot"));
                    }
                } else if !self.process.restore(&s.process) {
                    return Err(bad("protocol state machine rejected its snapshot"));
                }
                self.out_seq = s.out_seq;
                self.self_queue = s.self_queue.into();
                self.sent_log = s.backlogs;
                // Re-offer the unacked backlog: frames a peer may never
                // have received, byte-identical under their original
                // sequence numbers.
                for (i, frames) in self.sent_log.iter().enumerate() {
                    let Some(link) = self.links[i].as_mut() else {
                        continue;
                    };
                    for (seq, payload) in frames {
                        let chunk = Arc::new(encode_chunk(&Frame::Msg {
                            seq: *seq,
                            payload: payload.clone(),
                        }));
                        link.enqueue(QueuedFrame {
                            seq: *seq,
                            not_before: Instant::now(),
                            payload_len: payload.len(),
                            chunk,
                        });
                    }
                }
            }
            // No checkpoint: re-derive genesis, silently.
            None => self.run_start(false),
        }
        for d in deliveries {
            let msg = match d.seq {
                // A logged self-delivery consumes the queue head, which
                // determinism says must be byte-identical to the record.
                None => {
                    if d.from != self.me {
                        return Err(bad("wal self-delivery not from this node"));
                    }
                    let bytes = self
                        .self_queue
                        .pop_front()
                        .ok_or_else(|| bad("wal self-delivery with no pending self-send"))?;
                    if bytes != d.payload {
                        return Err(bad("replay diverged: self-delivery bytes differ from log"));
                    }
                    M::from_bytes(&bytes).map_err(|_| bad("undecodable logged self-delivery"))?
                }
                Some(_) => M::from_bytes(&d.payload)
                    .map_err(|_| bad("undecodable logged delivery payload"))?,
            };
            self.deliver(d.from, d.seq, msg, &d.payload, false);
        }
        // Refresh the externally visible status from the recovered state
        // even when every delivery was compacted into the snapshot — a
        // decision restored from the checkpoint alone must still be
        // reported (silently: it belongs to the crashed incarnation).
        self.observe(false);
        if self.adopted {
            let adopted_decision = self.adopted_decision;
            let mut st = lock_status(&self.status);
            st.state_transferred = true;
            if let Some(v) = adopted_decision {
                if st.decision.is_none() {
                    st.decision = Some(v);
                    st.decision_step = Some(self.step);
                }
                drop(st);
                self.decided = true;
            }
        }
        Ok(deliveries.len() as u64)
    }

    /// One delivery step — the WAL append, the process step, the sends it
    /// causes, and the status/telemetry fallout. With `live` false this
    /// is log replay: the append is skipped (the record is the log) and
    /// nothing is published or counted, but sends still queue on the
    /// links — they are retransmissions of frames the crashed
    /// incarnation already owned.
    fn deliver(&mut self, from: ProcessId, seq: Option<u64>, msg: M, payload: &[u8], live: bool) {
        // An amnesiac has no trustworthy log to append to (the damaged
        // file is evidence, not a journal). Its deliveries feed the
        // process as a passive learner only — `dispatch` stays silent —
        // so skipping durability here cannot cause equivocation.
        if live && !self.amnesiac {
            if let Some(wal) = &mut self.wal {
                // Log-before-send: the record must be durable before any
                // message this delivery produces reaches a socket. A
                // failed append forfeits that guarantee, so die (the
                // panic is caught and surfaced as NodeStatus::died).
                let append_started = self.metrics.wal_append_us.enabled().then(Instant::now);
                wal.append(&WalRecord::Delivery(DeliveryRecord {
                    from,
                    seq,
                    payload: payload.to_vec(),
                }))
                .expect("wal append failed: cannot guarantee no-equivocation");
                if let Some(t) = append_started {
                    self.metrics.wal_append_us.record_us(t.elapsed());
                }
                if let Some(s) = seq {
                    // Now — and only now — may acks cover this frame.
                    self.durable_next[from.index()].store(s + 1, Ordering::Release);
                }
            }
        }
        if self.process.halted() {
            if live {
                self.counters.dropped_at_halted.inc();
            }
            return;
        }
        self.step += 1;
        if live {
            self.counters.delivered.inc();
            // A networked node has no delivery buffer the scheduler
            // indexes into — the OS hands messages over in arrival order
            // — so the schedule slot is always 0.
            self.publish(Event::Deliver {
                step: self.step,
                to: self.me,
                from,
                index: 0,
            });
        }
        let events = {
            let mut ctx = Ctx::new(self.me, self.n, self.step, &mut self.outbox, &mut self.rng)
                .with_obs(self.observed && live)
                .with_live(live);
            self.process.on_receive(Envelope::new(from, msg), &mut ctx);
            ctx.take_events()
        };
        if live {
            for event in events {
                self.publish(Event::Protocol {
                    step: self.step,
                    pid: self.me,
                    event,
                });
            }
        }
        self.dispatch(live);
        self.observe(live);
        if live {
            self.maybe_snapshot();
        }
    }

    /// Routes one step's outbox: self-sends join the local queue, remote
    /// sends pass the fault injector and queue on the links. The
    /// injector is consulted (and the RNG stream advanced) in replay too
    /// — drop decisions gate sequence-number assignment, so skipping them
    /// would renumber the replayed frames.
    fn dispatch(&mut self, live: bool) {
        // A node without a trusted durable history must stay silent on
        // the protocol plane, forever: its pre-damage send history is
        // unknowable, and any fresh send could contradict it. This is
        // the "treat a state-lossy process as faulty until re-validated"
        // rule — and after adoption the node stays a learner, because
        // re-validation recovers *state*, not the right to re-send.
        if self.amnesiac || self.adopted {
            self.outbox.clear();
            return;
        }
        let mut outbox = std::mem::take(&mut self.outbox);
        for (to, msg) in outbox.drain(..) {
            if live {
                self.counters.sent.inc();
                self.publish(Event::Send {
                    step: self.step,
                    from: self.me,
                    to,
                });
            }
            if to == self.me {
                self.self_queue.push_back(msg.to_bytes());
                continue;
            }
            if self
                .links
                .get(to.index())
                .and_then(Option::as_ref)
                .is_none()
            {
                continue; // address outside the system: a Byzantine no-op
            }
            let not_before = match self.injector.action(self.me, to) {
                LinkAction::Drop => {
                    if live {
                        self.counters.injected_drops.inc();
                    }
                    continue;
                }
                LinkAction::Deliver => Instant::now(),
                LinkAction::DelayBy(d) => Instant::now() + d,
            };
            let seq = self.out_seq[to.index()];
            self.out_seq[to.index()] += 1;
            let encode_started = self.metrics.msg_encode_us.enabled().then(Instant::now);
            let frame_payload = msg.to_bytes();
            if let Some(t) = encode_started {
                self.metrics.msg_encode_us.record_us(t.elapsed());
            }
            if self.wal.is_some() {
                self.sent_log[to.index()].push((seq, frame_payload.clone()));
            }
            let payload_len = frame_payload.len();
            let chunk = Arc::new(encode_chunk(&Frame::Msg {
                seq,
                payload: frame_payload,
            }));
            let link = self.links[to.index()].as_mut().expect("checked above");
            link.enqueue(QueuedFrame {
                seq,
                not_before,
                payload_len,
                chunk,
            });
        }
        self.outbox = outbox;
    }

    /// Mirrors `Sim::observe`: records decisions and halts exactly once.
    /// In replay the status still updates (the recovered node resumes
    /// with correct phase/decision) but nothing is re-published — the
    /// world already saw those events from the previous incarnation.
    fn observe(&mut self, live: bool) {
        let halted = self.process.halted();
        let mut newly_decided = None;
        {
            let mut st = lock_status(&self.status);
            st.steps = self.step + 1;
            st.phase = self.process.phase();
            st.halted = halted;
            if !self.decided {
                if let Some(v) = self.process.decision() {
                    self.decided = true;
                    st.decision = Some(v);
                    st.decision_phase = self.process.decision_phase();
                    st.decision_step = Some(self.step);
                    newly_decided = Some(v);
                }
            }
        }
        if let Some(value) = newly_decided {
            if live {
                self.publish(Event::Decide {
                    step: self.step,
                    pid: self.me,
                    value,
                });
            }
        }
        if halted && !self.halt_published {
            self.halt_published = true;
            if live {
                self.publish(Event::Halt {
                    step: self.step,
                    pid: self.me,
                });
            }
        }
    }

    /// Compacts the WAL to boot + snapshot every `snapshot_every`
    /// processed deliveries, if the protocol supports checkpointing.
    fn maybe_snapshot(&mut self) {
        if self.snapshot_every == 0 || self.wal.is_none() || self.amnesiac {
            return;
        }
        self.since_snapshot += 1;
        if self.since_snapshot < self.snapshot_every {
            return;
        }
        let Some(process_bytes) = self.process.snapshot() else {
            return; // protocol opted out of checkpointing; replay from genesis
        };
        self.since_snapshot = 0;
        // Retire frames the peers have acknowledged; what's left is the
        // unacked backlog a restarted node must re-offer.
        for (i, log) in self.sent_log.iter_mut().enumerate() {
            if let Some(link) = &self.links[i] {
                let acked = link.stats.acked.get();
                log.retain(|(seq, _)| *seq >= acked);
            }
        }
        let (rng_seed, rng_state) = self.rng.save();
        let snapshot = SnapshotRecord {
            step: self.step,
            rng_seed,
            rng_state: rng_state.to_vec(),
            process: process_bytes,
            out_seq: self.out_seq.clone(),
            // The durable watermark: what this node has journalled and
            // therefore acked. Anything beyond it was never acked, so a
            // post-crash sender re-offers it.
            next_seq: self
                .durable_next
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .collect(),
            backlogs: self.sent_log.clone(),
            self_queue: self.self_queue.iter().cloned().collect(),
            injector_state: self.injector.rng_state().to_vec(),
            adopted: self.adopted,
            adopted_decision: self.adopted_decision,
        };
        if let Some(wal) = &mut self.wal {
            // A failed compaction is not fatal — the log just stays long
            // and replay starts further back.
            let compact_started = Instant::now();
            if wal.compact(&self.boot, &snapshot).is_ok() {
                self.metrics.wal_compactions.inc();
                self.metrics
                    .wal_compact_us
                    .record_us(compact_started.elapsed());
            }
        }
    }

    /// This node's answer to a peer's [`Frame::StateRequest`].
    fn state_chunk(&self) -> Frame {
        Frame::StateChunk {
            from: self.me,
            // The status cell's decision, not the process's: an adopted
            // learner's decision lives there, and it is just as
            // quorum-backed as one the process derived itself.
            decision: lock_status(&self.status).decision,
            phase: self.process.phase(),
            app_digest: self.process.transfer_digest(),
            app: self.process.transfer_state(),
        }
    }

    /// Adopts quorum-confirmed state: installs the replicated bytes (if
    /// the protocol transfers any), writes a fresh Boot + Snapshot WAL
    /// marked `adopted`, and leaves amnesia — as a learner. Returns
    /// `false` when adoption could not complete (garbled bytes or a
    /// still-failing disk); the caller keeps probing.
    fn adopt(
        &mut self,
        decision: Option<simnet::Value>,
        digest: u64,
        app: Option<Vec<u8>>,
        next_seq: &[u64],
    ) -> bool {
        if digest != 0 {
            let Some(bytes) = app.as_deref() else {
                return false; // matching digests but nobody sent the bytes
            };
            if fnv1a64(bytes) != digest || !self.process.adopt_transfer(bytes) {
                return false;
            }
        }
        let (rng_seed, rng_state) = self.rng.save();
        let snapshot = SnapshotRecord {
            step: self.step,
            rng_seed,
            rng_state: rng_state.to_vec(),
            process: self.process.snapshot().unwrap_or_default(),
            out_seq: self.out_seq.clone(),
            // The speculative acks this amnesiac already sent become
            // durable here: the snapshot pins the same watermark, so a
            // future restart dedups exactly what was acked.
            next_seq: next_seq.to_vec(),
            backlogs: vec![Vec::new(); self.n],
            self_queue: Vec::new(),
            injector_state: self.injector.rng_state().to_vec(),
            adopted: true,
            adopted_decision: decision,
        };
        if let Some(wal) = &mut self.wal {
            if wal.compact(&self.boot, &snapshot).is_err() {
                return false; // disk still sick; stay amnesiac
            }
        }
        for (slot, &s) in self.durable_next.iter().zip(next_seq) {
            slot.store(s, Ordering::Release);
        }
        self.amnesiac = false;
        self.adopted = true;
        self.adopted_decision = decision;
        self.transfer_probe_at = None;
        self.transfer_offers.clear();
        self.counters.state_transfers.inc();
        {
            let mut st = lock_status(&self.status);
            st.amnesiac = false;
            st.state_transferred = true;
            if let Some(v) = decision {
                if st.decision.is_none() {
                    st.decision = Some(v);
                    st.decision_step = Some(self.step);
                }
            }
        }
        if decision.is_some() {
            self.decided = true;
        }
        self.publish(Event::Recover {
            step: self.step,
            pid: self.me,
            replayed: 0,
        });
        true
    }
}

/// The node's one thread: the poller, every socket, and the [`Loop`].
struct EventLoop<M: Wire> {
    lp: Loop<M>,
    poller: Poller,
    listener: TcpListener,
    /// Accepted connections by token.
    inconns: HashMap<u64, InConn>,
    next_in_token: u64,
    /// Receiver-side next-expected table, shared with [`NodeHandle`]
    /// readers (`next_expected_from`); written only by this thread.
    seqs: Arc<Mutex<Vec<u64>>>,
    /// Payload hashes of delivered frames per peer, for the
    /// no-equivocation check on duplicates. Loop-owned, no locking.
    hashes: Vec<HashMap<u64, u64>>,
    io: LoopStats,
    shutdown: Arc<AtomicBool>,
}

impl<M: Wire> EventLoop<M> {
    fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut frames: Vec<Frame> = Vec::new();
        // Boot work queued by run_start/recover: deliver pending
        // self-sends, then get the first frames moving.
        self.drain_self();
        self.maybe_probe(Instant::now());
        self.pump_links();
        while !self.shutdown.load(Ordering::Relaxed) {
            let timeout = self.next_timeout(Instant::now());
            self.io.loop_ticks.inc();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing poller (fd exhaustion mid-registration) has
                // no recovery story; back off rather than spin.
                thread::sleep(POLL);
                continue;
            }
            self.io.poll_wakeups.add(events.len() as u64);
            for ev in events.drain(..) {
                self.dispatch_event(ev, &mut frames);
            }
            // One pass after the batch: dial due links, release delayed
            // frames, and flush everything the deliveries above queued —
            // the per-peer coalescing point. An amnesiac refreshes its
            // state-transfer probes first so they ride the same flush.
            self.maybe_probe(Instant::now());
            self.pump_links();
        }
    }

    /// While amnesiac, (re)issues a [`Frame::StateRequest`] to every
    /// peer each [`PROBE_EVERY`]. Pending unsent probes are cleared
    /// first so a dead link never accumulates duplicates; answered or
    /// lost probes are simply superseded by the next round. The [`POLL`]
    /// cap bounds how late a probe can fire.
    fn maybe_probe(&mut self, now: Instant) {
        if !self.lp.amnesiac {
            return;
        }
        match self.lp.transfer_probe_at {
            Some(at) if at > now => return,
            _ => {}
        }
        self.lp.transfer_probe_at = Some(now + PROBE_EVERY);
        let probe = Arc::new(encode_chunk(&Frame::StateRequest { from: self.lp.me }));
        for link in self.lp.links.iter_mut().flatten() {
            link.clear_control();
            link.enqueue_control(Arc::clone(&probe));
        }
    }

    /// How long the poller may sleep: the [`POLL`] cap, shortened to the
    /// earliest link deadline (redial or delayed-frame release).
    fn next_timeout(&self, now: Instant) -> Duration {
        let mut timeout = POLL;
        for link in self.lp.links.iter().flatten() {
            if let Some(at) = link.next_deadline(now) {
                timeout = timeout.min(at.saturating_duration_since(now));
            }
        }
        timeout
    }

    /// Delivers pending self-sends, oldest first, until the queue is dry
    /// (a delivery may enqueue more).
    fn drain_self(&mut self) {
        while let Some(bytes) = self.lp.self_queue.pop_front() {
            let msg = M::from_bytes(&bytes).expect("locally encoded self-delivery decodes");
            let me = self.lp.me;
            self.lp.deliver(me, None, msg, &bytes, true);
        }
    }

    fn dispatch_event(&mut self, ev: PollEvent, frames: &mut Vec<Frame>) {
        if ev.token == TOKEN_LISTENER {
            if ev.readable {
                self.accept_ready(frames);
            }
        } else if ev.token >= IN_BASE {
            self.inbound_event(ev, frames);
        } else {
            let peer = usize::try_from(ev.token - OUT_BASE).expect("peer token fits usize");
            self.outbound_event(peer, ev);
        }
    }

    /// Accepts until `WouldBlock` (the edge-triggered contract) and reads
    /// each new connection immediately — its first bytes may have landed
    /// before it was registered, which with epoll's edge semantics would
    /// otherwise never produce an event.
    fn accept_ready(&mut self, frames: &mut Vec<Frame>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = IN_BASE + self.next_in_token;
                    self.next_in_token += 1;
                    if self.poller.register(stream.as_raw_fd(), token).is_err() {
                        continue;
                    }
                    self.inconns.insert(token, InConn::new(stream));
                    self.inbound_readable(token, frames);
                }
                Err(_) => return, // WouldBlock, or transient accept noise
            }
        }
    }

    fn inbound_event(&mut self, ev: PollEvent, frames: &mut Vec<Frame>) {
        if ev.readable {
            self.inbound_readable(ev.token, frames);
        }
        if ev.writable {
            // Blocked ack writes resume here.
            let Some(conn) = self.inconns.get_mut(&ev.token) else {
                return;
            };
            if conn.write_blocked {
                let failed = conn.on_writable(&self.io).is_err();
                let blocked = conn.write_blocked;
                if failed {
                    self.teardown_inbound(ev.token);
                } else {
                    self.poller.set_write_interest(ev.token, blocked);
                }
            }
        }
    }

    /// Drains one inbound connection and processes every complete frame
    /// it produced, in order: handshake, seq-dedup, ack, delivery.
    fn inbound_readable(&mut self, token: u64, frames: &mut Vec<Frame>) {
        let Some(conn) = self.inconns.get_mut(&token) else {
            return;
        };
        frames.clear();
        // A read error or unparseable stream still yields the complete
        // frames that preceded it — process them, then tear down, exactly
        // as the blocking reader did frame by frame.
        let dead = conn.read_frames(frames, &self.io).unwrap_or(true);
        let mut hostile = false;
        for frame in frames.drain(..) {
            let Some(conn) = self.inconns.get_mut(&token) else {
                return;
            };
            match frame {
                Frame::Hello { from } => {
                    if conn.peer.is_none() {
                        if from.index() < self.lp.n {
                            conn.peer = Some(from);
                        } else {
                            hostile = true; // not a peer of this system
                            break;
                        }
                    }
                    // A repeated Hello is meaningless but harmless.
                }
                Frame::Msg { seq, payload } => {
                    let Some(from) = conn.peer else {
                        hostile = true; // the first frame must be Hello
                        break;
                    };
                    self.handle_msg(token, from, seq, &payload);
                }
                Frame::Ack { .. } => {} // not meaningful inbound
                Frame::StateRequest { from } => {
                    if from.index() >= self.lp.n {
                        hostile = true; // not a peer of this system
                        break;
                    }
                    // Serve our durable state on the connection the
                    // probe arrived on. An amnesiac has nothing
                    // trustworthy to serve and stays silent.
                    if !self.lp.amnesiac {
                        let chunk = self.lp.state_chunk();
                        conn.queue_frame(&chunk);
                        self.lp.counters.state_requests_served.inc();
                    }
                }
                // A state chunk is a *reply*; it belongs on the probing
                // node's outbound connection, not here. Harmless noise.
                Frame::StateChunk { .. } => {}
            }
        }
        // One coalesced flush for the whole batch of acks.
        if let Some(conn) = self.inconns.get_mut(&token) {
            if conn.flush(&self.io).is_err() {
                self.teardown_inbound(token);
                return;
            }
            let blocked = conn.write_blocked;
            self.poller.set_write_interest(token, blocked);
        }
        if dead || hostile {
            self.teardown_inbound(token);
        }
    }

    /// One inbound protocol message: consult the sequence table, apply
    /// the no-equivocation cross-check, deliver if it is the next
    /// expected frame, and queue the cumulative ack.
    fn handle_msg(&mut self, token: u64, from: ProcessId, seq: u64, payload: &[u8]) {
        let (disposition, speculative) = {
            let mut seqs = self.seqs.lock().expect("seq table poisoned");
            let next = &mut seqs[from.index()];
            let d = if seq > *next {
                Disposition::Gap
            } else if seq < *next {
                Disposition::Duplicate
            } else {
                *next += 1;
                Disposition::Deliver
            };
            (d, *next)
        };
        match disposition {
            Disposition::Deliver => {
                self.hashes[from.index()].insert(seq, fnv1a64(payload));
                // Byzantine bytes: payloads that do not decode, or decode
                // to contents out of range for this system, are dropped
                // here — they must never reach (and possibly kill) the
                // protocol. The link stays up, the seq stays consumed.
                let decode_us = &self.lp.metrics.msg_decode_us;
                let decode_started = decode_us.enabled().then(Instant::now);
                let decoded = M::from_bytes(payload);
                if let Some(t) = decode_started {
                    decode_us.record_us(t.elapsed());
                }
                match decoded {
                    Ok(msg) if msg.validate(self.lp.n) => {
                        let bytes = msg.to_bytes();
                        self.lp.deliver(from, Some(seq), msg, &bytes, true);
                        self.drain_self();
                    }
                    _ => self.lp.counters.wire_rejected.inc(),
                }
            }
            Disposition::Duplicate => {
                // A retransmission must be byte-identical to the frame
                // first delivered under this seq — recovered nodes
                // included. Anything else is equivocation.
                if let Some(&h) = self.hashes[from.index()].get(&seq) {
                    if h != fnv1a64(payload) {
                        self.lp.counters.equivocations.inc();
                    }
                }
            }
            Disposition::Gap => self.lp.counters.seq_gaps.inc(),
        }
        // Cumulative ack per Msg — re-sent even for duplicates and gaps
        // so a reconnected sender can retire its backlog and resync.
        // With a WAL the ack is the durable watermark, read *after* the
        // delivery journalled, so it already covers this frame. An
        // amnesiac journals nothing but may still ack speculatively: a
        // learner never sends protocol messages, so the replay-
        // equivocation hazard durable acks exist to prevent cannot
        // arise, and adoption pins this same watermark durably.
        let ack = if self.lp.wal.is_some() && !self.lp.amnesiac {
            self.lp.durable_next[from.index()].load(Ordering::Acquire)
        } else {
            speculative
        };
        if let Some(conn) = self.inconns.get_mut(&token) {
            conn.queue_ack(ack);
        }
    }

    fn teardown_inbound(&mut self, token: u64) {
        if let Some(conn) = self.inconns.remove(&token) {
            self.poller.deregister(conn.stream.as_raw_fd(), token);
            // conn drops here, closing the socket.
        }
    }

    /// A readiness event on an outbound link's connection: connect
    /// completion, inbound acks, or room to resume a blocked write.
    fn outbound_event(&mut self, peer: usize, ev: PollEvent) {
        let now = Instant::now();
        let mut established = true;
        // Non-ack frames read off the outbound connection: peers answer
        // our state-transfer probes here.
        let mut ctrl: Vec<Frame> = Vec::new();
        let failed = {
            let Some(link) = self.lp.links.get_mut(peer).and_then(Option::as_mut) else {
                return;
            };
            let Some(conn) = link.conn.as_mut() else {
                return;
            };
            if conn.token != ev.token {
                return; // stale event for a predecessor connection
            }
            if conn.connecting {
                if !ev.writable {
                    return; // connect still in flight
                }
                // The nonblocking connect resolved: writable + no error
                // is up, anything else failed.
                match conn.stream.take_error() {
                    Ok(None) => {
                        conn.connecting = false;
                        link.dial_succeeded();
                    }
                    _ => {
                        established = false;
                    }
                }
            }
            if established {
                let read_ok = !ev.readable || link.on_readable(&self.io, &mut ctrl).is_ok();
                let write_ok = read_ok && (!ev.writable || link.on_writable(now, &self.io).is_ok());
                !(read_ok && write_ok)
            } else {
                true
            }
        };
        if failed {
            self.teardown_outbound(peer, established);
        } else {
            self.sync_out_interest(peer);
        }
        for frame in ctrl {
            self.handle_state_chunk(peer, frame);
        }
    }

    /// One peer's answer to a state-transfer probe. The offer is held
    /// until `k + 1` peers agree on `(decision, app_digest)` — only then
    /// is the state adopted, so up to `k` faulty peers can neither forge
    /// a state nor block transfer (there are `n - k - 1` other peers).
    fn handle_state_chunk(&mut self, peer: usize, frame: Frame) {
        let Frame::StateChunk {
            from,
            decision,
            phase: _,
            app_digest,
            app,
        } = frame
        else {
            return; // outbound connections carry nothing else of note
        };
        if !self.lp.amnesiac || from.index() != peer {
            return;
        }
        // An empty offer (undecided, no app state) attests nothing;
        // matching k+1 of them would adopt a vacuous state. Wait for
        // peers that actually have something.
        if decision.is_none() && app_digest == 0 {
            return;
        }
        // Bytes that do not hash to their own digest are forged; drop
        // the offer before it can poison a quorum.
        if let Some(bytes) = &app {
            if fnv1a64(bytes) != app_digest {
                return;
            }
        }
        self.lp.transfer_offers.insert(
            peer,
            TransferOffer {
                decision,
                app_digest,
                app,
            },
        );
        let needed = self.lp.k + 1;
        let offers = &self.lp.transfer_offers;
        let Some(winner) = offers
            .values()
            .find(|o| {
                offers
                    .values()
                    .filter(|p| p.decision == o.decision && p.app_digest == o.app_digest)
                    .count()
                    >= needed
            })
            .cloned()
        else {
            return;
        };
        // Any offer in the winning class may carry the bytes.
        let app = offers
            .values()
            .filter(|p| p.decision == winner.decision && p.app_digest == winner.app_digest)
            .find_map(|p| p.app.clone());
        let seqs = self.seqs.lock().expect("seq table poisoned").clone();
        if !self
            .lp
            .adopt(winner.decision, winner.app_digest, app, &seqs)
        {
            // Adoption failed (no usable bytes, or the disk is still
            // sick): discard the round and keep probing fresh.
            self.lp.transfer_offers.clear();
        }
    }

    /// Drops a link's connection and schedules the redial: immediate for
    /// an established connection that died, backed off for a failed dial.
    fn teardown_outbound(&mut self, peer: usize, established: bool) {
        let Some(link) = self.lp.links.get_mut(peer).and_then(Option::as_mut) else {
            return;
        };
        if let Some(conn) = link.conn.take() {
            self.poller.deregister(conn.stream.as_raw_fd(), conn.token);
        }
        link.conn_failed(established);
    }

    /// Mirrors a link's write interest into the poll(2) backend (no-op
    /// under epoll): connecting sockets and blocked writers want
    /// writable events; anything else would spin on always-writable.
    fn sync_out_interest(&mut self, peer: usize) {
        let Some(link) = self.lp.links.get(peer).and_then(Option::as_ref) else {
            return;
        };
        if let Some(conn) = &link.conn {
            let token = conn.token;
            let want = conn.connecting || conn.write_blocked;
            self.poller.set_write_interest(token, want);
        }
    }

    /// The once-per-tick outbound pass: dial links that want a connection
    /// and are past their backoff, then move eligible backlog frames to
    /// the sockets — one vectored write per peer for the whole batch.
    fn pump_links(&mut self) {
        let now = Instant::now();
        for peer in 0..self.lp.n {
            {
                let Some(link) = self.lp.links.get_mut(peer).and_then(Option::as_mut) else {
                    continue;
                };
                if link.wants_conn() && now >= link.next_dial {
                    let token = OUT_BASE + peer as u64;
                    match connect_nonblocking(link.peer_addr) {
                        Ok(dial) => {
                            let (stream, connecting) = match dial {
                                Dial::Connected(s) => (s, false),
                                Dial::InProgress(s) => (s, true),
                            };
                            let _ = stream.set_nodelay(true);
                            if self.poller.register(stream.as_raw_fd(), token).is_ok() {
                                link.adopt(stream, token, connecting);
                                if !connecting {
                                    link.dial_succeeded();
                                }
                            } else {
                                link.conn_failed(false); // stream drops
                            }
                        }
                        Err(_) => link.conn_failed(false),
                    }
                }
            }
            let failed = {
                let Some(link) = self.lp.links.get_mut(peer).and_then(Option::as_mut) else {
                    continue;
                };
                link.conn.is_some() && link.pump(now, &self.io).is_err()
            };
            if failed {
                self.teardown_outbound(peer, true);
            } else {
                self.sync_out_interest(peer);
            }
        }
    }
}
