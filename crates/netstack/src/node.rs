//! One networked consensus node: a [`Process`] state machine, its event
//! loop, and its socket plumbing.
//!
//! A node runs the *same* state machine the simulator runs — the type is
//! `Box<dyn Process<Msg = M> + Send>`, unchanged — but the engine around
//! it is threads and sockets instead of a discrete-event loop:
//!
//! ```text
//!            ┌────────────────────────────── node ─────────────────────────────┐
//!  peers ──▶ │ acceptor ─▶ readers ─▶ inbound queue ─▶ event loop ─▶ Process  │
//!            │                (seq dedup, acks,            │   ▲               │
//!            │                 wire validation)         outbox  rng (seeded)   │
//!            │                                             │                   │
//!            │          WAL (log-before-send) ◀── deliveries                   │
//!            │            fault injector ─▶ per-peer sender threads ──────────▶│ ──▶ peers
//!            └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The event loop is the only thread that touches the process, so the
//! state machine needs no locking and keeps the simulator's atomic-step
//! semantics: one delivery, one computation, a finite set of sends that
//! leave before the next delivery is consumed. Self-addressed sends (the
//! paper's broadcasts include the sender) never touch a socket: they sit
//! in an event-loop-owned queue, which also makes them checkpointable.
//!
//! # Crash recovery
//!
//! With [`NodeConfig::wal`] set, the node journals its execution to a
//! write-ahead log (see [`crate::wal`]). A node's run is a deterministic
//! function of its configuration and the sequence of messages delivered
//! to its state machine — coins included, because the RNG is seeded — so
//! the log records exactly that sequence, plus periodic snapshots so
//! replay need not start from genesis.
//!
//! The invariant is **log-before-send**: a delivery is durable before any
//! message it produces reaches a socket. A restarted node replays its log,
//! re-derives exactly the state it had durably reached, and re-sends
//! byte-identical frames under the same sequence numbers — pure
//! retransmission, absorbed by the receivers' seq-dedup. A recovered node
//! can therefore never emit two different payloads for the same sequence
//! slot; receivers cross-check this with per-`(peer, seq)` payload hashes
//! and count violations in [`NetCounters::equivocations`].
//!
//! When the WAL is on, acks are *durability-gated*: a reader acknowledges
//! only what the event loop has journalled, never what merely sits in the
//! inbound queue, so a sender cannot retire a frame this node could still
//! lose to a crash.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use obs::metrics::{Counter, Histogram, Registry, Snapshot};
use simnet::{Ctx, Envelope, Event, Process, ProcessId, SharedSubscriber, SimRng, Wire};

use crate::conn::{spawn_sender, LinkStats, OutFrame};
use crate::fault::{FaultInjector, FaultPlan, LinkAction};
use crate::frame::{read_frame, write_frame, Frame};
use crate::wal::{BootRecord, DeliveryRecord, SnapshotRecord, Wal, WalRecord};

/// Accepted-connection registry: stream clones by token, so shutdown can
/// unblock readers and each reader can prune its own entry when its
/// connection dies.
type StreamRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Per-peer map of delivered sequence number → payload hash, shared by
/// all reader threads: the receiver-side no-equivocation cross-check.
type PayloadHashes = Arc<Mutex<Vec<HashMap<u64, u64>>>>;

/// Locks a [`NodeStatus`] mutex, tolerating poisoning: the event loop may
/// die mid-update (see [`NodeStatus::died`]) and the snapshot must stay
/// readable afterwards.
fn lock_status(status: &Mutex<NodeStatus>) -> MutexGuard<'_, NodeStatus> {
    status.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// FNV-1a 64-bit hash of a payload — cheap, dependency-free, and plenty
/// for flagging a restarted sender that re-sends different bytes under a
/// sequence number it already used.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Static description of one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's identity (also its index into `peers`).
    pub id: ProcessId,
    /// System size.
    pub n: usize,
    /// Seed for this node's deterministic random stream (randomized
    /// protocols draw coins from it, exactly as in the simulator).
    pub seed: u64,
    /// Faults to inject on this node's outbound links.
    pub fault: FaultPlan,
    /// Path of this node's write-ahead log. `None` (the default for a
    /// plain cluster) runs without durability; `Some` journals every
    /// delivery under the log-before-send invariant and recovers from
    /// the log on spawn if it already has history.
    pub wal: Option<PathBuf>,
    /// Checkpoint cadence: compact the WAL to a snapshot after this many
    /// processed deliveries (0 = never snapshot; replay runs from
    /// genesis). Ignored when `wal` is `None`.
    pub snapshot_every: u64,
    /// The metrics registry this node records into. `None` gives the node
    /// a fresh enabled registry of its own. A supervisor that restarts
    /// nodes should pass the *same* registry to every incarnation: the
    /// cells are keyed by `(name, labels)`, so the replacement's handles
    /// land on the predecessor's cells and long-run totals survive the
    /// restart.
    pub metrics: Option<Arc<Registry>>,
}

impl NodeConfig {
    /// A WAL-less config — the common case for ephemeral clusters.
    #[must_use]
    pub fn new(id: ProcessId, n: usize, seed: u64, fault: FaultPlan) -> Self {
        NodeConfig {
            id,
            n,
            seed,
            fault,
            wal: None,
            snapshot_every: 0,
            metrics: None,
        }
    }
}

/// A live snapshot of a node's protocol state, updated by the event loop
/// after every atomic step.
#[derive(Clone, Debug, Default)]
pub struct NodeStatus {
    /// The decision `d_p`, once set (irrevocable).
    pub decision: Option<simnet::Value>,
    /// The phase in which the decision was made.
    pub decision_phase: Option<u64>,
    /// The node-local atomic step at which the decision was made.
    pub decision_step: Option<u64>,
    /// Current `phaseno`.
    pub phase: u64,
    /// Node-local atomic steps taken (start + deliveries).
    pub steps: u64,
    /// Whether the process has left the protocol.
    pub halted: bool,
    /// The event-loop thread panicked (a bug, or a hostile input the
    /// defensive layers missed): the node is dead, not merely undecided,
    /// and will never make progress. Surfaced so harnesses can fail fast
    /// instead of hanging until their deadline.
    pub died: bool,
    /// Deliveries replayed from the WAL when this incarnation booted
    /// (0 for a fresh start).
    pub recovered: u64,
}

/// Message-level counters for one node, as registry handles labelled
/// `{node}`. Handles address cells in the node's [`Registry`], so a
/// restarted incarnation sharing the registry keeps counting where its
/// predecessor stopped.
#[derive(Debug)]
pub struct NetCounters {
    /// Messages the protocol asked to send (including to self).
    pub sent: Counter,
    /// Messages delivered to the process.
    pub delivered: Counter,
    /// Messages the fault injector dropped on purpose.
    pub injected_drops: Counter,
    /// Messages discarded because this process had halted.
    pub dropped_at_halted: Counter,
    /// Inbound payloads rejected at the wire: bytes that did not decode,
    /// or decoded to contents out of range for this system (e.g. a
    /// process id `>= n`). Byzantine bytes land here, not in the process.
    pub wire_rejected: Counter,
    /// Inbound frames whose sequence number skipped ahead of the next
    /// expected one. An honest sender never skips (it replays its whole
    /// unacked backlog in order), so a gap marks a reliability violation
    /// or a hostile peer; the frame is dropped, never delivered.
    pub seq_gaps: Counter,
    /// Re-sent frames whose payload differed from the one first delivered
    /// under the same sequence number. A correct node — including one
    /// that crashed and recovered from its WAL — retransmits only
    /// byte-identical frames, so any count here is a recovery bug or a
    /// hostile peer caught red-handed.
    pub equivocations: Counter,
}

impl NetCounters {
    /// Registers (or re-attaches to) the message counters for node `me`.
    #[must_use]
    pub fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        let labels: &[(&str, &str)] = &[("node", &node)];
        NetCounters {
            sent: registry.counter(
                "bt_msgs_sent_total",
                "messages the protocol asked to send, self-sends included",
                labels,
            ),
            delivered: registry.counter(
                "bt_msgs_delivered_total",
                "messages delivered to the process state machine",
                labels,
            ),
            injected_drops: registry.counter(
                "bt_injected_drops_total",
                "messages the fault injector dropped on purpose",
                labels,
            ),
            dropped_at_halted: registry.counter(
                "bt_dropped_at_halted_total",
                "messages discarded because this process had halted",
                labels,
            ),
            wire_rejected: registry.counter(
                "bt_wire_rejected_total",
                "inbound payloads rejected at the wire (undecodable or out of range)",
                labels,
            ),
            seq_gaps: registry.counter(
                "bt_seq_gaps_total",
                "inbound frames dropped for skipping ahead of the expected seq",
                labels,
            ),
            equivocations: registry.counter(
                "bt_equivocations_total",
                "re-sent frames whose payload differed under the same seq",
                labels,
            ),
        }
    }
}

/// Latency and durability telemetry for one node, labelled `{node}`.
#[derive(Clone, Debug)]
pub(crate) struct NodeMetrics {
    /// Protocol-message encode time (microseconds), on the send path.
    pub msg_encode_us: Histogram,
    /// Protocol-message decode time (microseconds), on the receive path.
    pub msg_decode_us: Histogram,
    /// WAL append latency (microseconds): the log-before-send write that
    /// makes a delivery durable. Appends are single `write(2)` calls —
    /// the fsync cost lives in compaction, measured separately.
    pub wal_append_us: Histogram,
    /// WAL compactions performed (tmp + fsync + rename checkpoints).
    pub wal_compactions: Counter,
    /// WAL compaction latency (microseconds), fsync included.
    pub wal_compact_us: Histogram,
    /// Times this node booted from a WAL with prior history.
    pub recoveries: Counter,
    /// Deliveries replayed from the WAL across all recoveries.
    pub recovered_deliveries: Counter,
    /// Wall-clock time one recovery replay took (microseconds).
    pub recovery_replay_us: Histogram,
}

impl NodeMetrics {
    fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        let labels: &[(&str, &str)] = &[("node", &node)];
        NodeMetrics {
            msg_encode_us: registry.histogram(
                "bt_msg_encode_us",
                "protocol message encode time on the send path (microseconds)",
                labels,
            ),
            msg_decode_us: registry.histogram(
                "bt_msg_decode_us",
                "protocol message decode time on the receive path (microseconds)",
                labels,
            ),
            wal_append_us: registry.histogram(
                "bt_wal_append_us",
                "WAL append latency for the log-before-send write (microseconds)",
                labels,
            ),
            wal_compactions: registry.counter(
                "bt_wal_compactions_total",
                "WAL compactions performed (tmp + fsync + rename)",
                labels,
            ),
            wal_compact_us: registry.histogram(
                "bt_wal_compact_us",
                "WAL compaction latency, fsync included (microseconds)",
                labels,
            ),
            recoveries: registry.counter(
                "bt_recoveries_total",
                "boots from a WAL with prior history",
                labels,
            ),
            recovered_deliveries: registry.counter(
                "bt_recovered_deliveries_total",
                "deliveries replayed from the WAL across all recoveries",
                labels,
            ),
            recovery_replay_us: registry.histogram(
                "bt_recovery_replay_us",
                "wall-clock duration of one recovery replay (microseconds)",
                labels,
            ),
        }
    }
}

/// A handle to a spawned node: status snapshots plus shutdown.
#[derive(Debug)]
pub struct NodeHandle {
    id: ProcessId,
    status: Arc<Mutex<NodeStatus>>,
    counters: Arc<NetCounters>,
    link_stats: Vec<Arc<LinkStats>>,
    registry: Arc<Registry>,
    next_seq: Arc<Mutex<Vec<u64>>>,
    shutdown: Arc<AtomicBool>,
    streams: StreamRegistry,
    threads: Vec<JoinHandle<()>>,
}

impl NodeHandle {
    /// This node's identity.
    #[must_use]
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// A snapshot of the node's protocol state.
    #[must_use]
    pub fn status(&self) -> NodeStatus {
        lock_status(&self.status).clone()
    }

    /// The live status cell itself — what an admin endpoint polls without
    /// holding the whole handle.
    #[must_use]
    pub fn status_cell(&self) -> Arc<Mutex<NodeStatus>> {
        Arc::clone(&self.status)
    }

    /// The registry this node records its runtime telemetry into.
    #[must_use]
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// A point-in-time snapshot of this node's metrics.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Whether the node's event loop died (see [`NodeStatus::died`]).
    #[must_use]
    pub fn died(&self) -> bool {
        self.status().died
    }

    /// The node's decision, if it has made one.
    #[must_use]
    pub fn decision(&self) -> Option<simnet::Value> {
        self.status().decision
    }

    /// Total messages this node's protocol sent (including self-sends).
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.counters.sent.get()
    }

    /// Total messages delivered to this node's protocol.
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.counters.delivered.get()
    }

    /// Messages lost to fault injection plus messages addressed to this
    /// node after it halted.
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.counters.injected_drops.get() + self.counters.dropped_at_halted.get()
    }

    /// Times any outbound link of this node had to redial.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.link_stats.iter().map(|s| s.reconnects.get()).sum()
    }

    /// Unacked frames this node's links replayed after reconnects.
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.link_stats.iter().map(|s| s.retransmits.get()).sum()
    }

    /// Inbound payloads rejected at the wire (undecodable bytes or
    /// contents out of range for the system).
    #[must_use]
    pub fn wire_rejected(&self) -> u64 {
        self.counters.wire_rejected.get()
    }

    /// Inbound frames dropped because their sequence number skipped ahead
    /// of the next expected one (see [`NetCounters::seq_gaps`]).
    #[must_use]
    pub fn seq_gaps(&self) -> u64 {
        self.counters.seq_gaps.get()
    }

    /// Re-sent frames whose payload differed from the one first seen
    /// under the same sequence number (see [`NetCounters::equivocations`]).
    /// Always 0 for correct peers, crashed-and-recovered ones included.
    #[must_use]
    pub fn equivocations(&self) -> u64 {
        self.counters.equivocations.get()
    }

    /// The next sequence number this node expects from `peer` — i.e. one
    /// past the highest frame it has accepted under that peer slot,
    /// including frames recovered from the WAL. A client gateway that
    /// injects frames under its own node's peer slot resumes numbering
    /// from here after a restart, so its frames land as fresh deliveries
    /// rather than duplicates.
    #[must_use]
    pub fn next_expected_from(&self, peer: ProcessId) -> u64 {
        self.next_seq.lock().unwrap_or_else(PoisonError::into_inner)[peer.index()]
    }

    /// Asks every thread to stop, unblocks them, and joins them. Safe to
    /// call more than once.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock reader threads stuck in read_exact.
        for s in self
            .streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Converts a stored RNG state vector back to its fixed-width form.
fn words4(v: &[u64], what: &str) -> io::Result<[u64; 4]> {
    v.try_into().map_err(|_| bad(what))
}

/// What the log said this boot is.
enum BootMode {
    /// No prior history: run `on_start` live.
    Fresh,
    /// The log has history: restore the latest snapshot (if any) and
    /// replay the deliveries after it, publishing nothing and counting
    /// nothing — the world already saw this prefix.
    Restart {
        snapshot: Box<Option<SnapshotRecord>>,
        deliveries: Vec<DeliveryRecord>,
    },
}

/// Boots a node: takes ownership of its (already bound) listener, dials
/// its peers lazily, runs `process` on the event loop, and streams events
/// to `subscriber` if one is attached.
///
/// Binding the listener *before* spawning (and passing it in) is the
/// loopback-cluster handshake discipline: all addresses exist before any
/// node dials, so a dial failure is transient, never fatal.
///
/// With [`NodeConfig::wal`] set and prior history on disk, recovery runs
/// *synchronously here*, before the acceptor starts: the sequence tables
/// are initialized from the log, the snapshot (if any) is restored, the
/// logged deliveries are replayed through the state machine, and the
/// resulting (byte-identical) frames are re-offered to the senders. Only
/// then do readers begin consulting the tables, so a frame arriving
/// mid-recovery can never be mistaken for new.
///
/// # Errors
///
/// Propagates listener configuration failures and WAL I/O errors, and
/// rejects a WAL that belongs to a different node/configuration or whose
/// snapshot is inconsistent with this system (`InvalidData`).
pub fn spawn<M>(
    cfg: NodeConfig,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    process: Box<dyn Process<Msg = M> + Send>,
    subscriber: Option<SharedSubscriber>,
) -> io::Result<NodeHandle>
where
    M: Wire + Send + 'static,
{
    assert_eq!(peers.len(), cfg.n, "one address per process");
    assert!(cfg.id.index() < cfg.n, "node id within the system");

    let shutdown = Arc::new(AtomicBool::new(false));
    let status = Arc::new(Mutex::new(NodeStatus::default()));
    let registry = cfg
        .metrics
        .clone()
        .unwrap_or_else(|| Arc::new(Registry::new()));
    let counters = Arc::new(NetCounters::new(&registry, cfg.id));
    let metrics = NodeMetrics::new(&registry, cfg.id);
    let streams: StreamRegistry = Arc::new(Mutex::new(HashMap::new()));
    let payload_hashes: PayloadHashes = Arc::new(Mutex::new(vec![HashMap::new(); cfg.n]));
    let mut threads = Vec::new();

    // Open the WAL (if configured) and decide fresh start vs. restart
    // before anything touches a socket.
    let boot = BootRecord {
        node: cfg.id,
        n: cfg.n,
        seed: cfg.seed,
    };
    let mut wal = None;
    let mut mode = BootMode::Fresh;
    if let Some(path) = &cfg.wal {
        let (mut w, recovered) = Wal::open(path)?;
        if recovered.records.is_empty() {
            w.append(&WalRecord::Boot(boot.clone()))?;
        } else {
            let on_disk = recovered
                .boot()
                .ok_or_else(|| bad("wal has no boot header"))?;
            if *on_disk != boot {
                return Err(bad("wal belongs to a different node or configuration"));
            }
            let (snapshot, deliveries) = recovered.replay_plan();
            mode = BootMode::Restart {
                snapshot: Box::new(snapshot.cloned()),
                deliveries: deliveries.into_iter().cloned().collect(),
            };
        }
        wal = Some(w);
    }

    // Receiver-side exactly-once: next expected sequence number per peer,
    // initialized from the log so that frames already journalled by a
    // previous incarnation re-arrive as duplicates, not deliveries.
    let mut initial_next = vec![0u64; cfg.n];
    if let BootMode::Restart {
        snapshot,
        deliveries,
    } = &mode
    {
        if let Some(s) = &**snapshot {
            if s.next_seq.len() != cfg.n {
                return Err(bad("wal snapshot sized for a different system"));
            }
            initial_next.copy_from_slice(&s.next_seq);
        }
        for d in deliveries {
            if d.from.index() >= cfg.n {
                return Err(bad("wal delivery from a process outside the system"));
            }
            if let Some(s) = d.seq {
                let slot = &mut initial_next[d.from.index()];
                *slot = (*slot).max(s + 1);
            }
        }
    }
    let next_seq: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(initial_next.clone()));
    let durable_next: Arc<Vec<AtomicU64>> =
        Arc::new(initial_next.iter().map(|&v| AtomicU64::new(v)).collect());

    // Inbound: readers push decoded envelopes, the event loop pops them.
    let (inbound_tx, inbound_rx) = mpsc::channel::<(ProcessId, u64, M)>();

    // Outbound: one sender thread per remote peer.
    let mut peer_txs: Vec<Option<mpsc::Sender<OutFrame>>> = Vec::with_capacity(cfg.n);
    let mut link_stats = Vec::new();
    let mut link_stats_by_peer: Vec<Option<Arc<LinkStats>>> = Vec::with_capacity(cfg.n);
    for (i, addr) in peers.iter().enumerate() {
        if i == cfg.id.index() {
            peer_txs.push(None);
            link_stats_by_peer.push(None);
            continue;
        }
        let stats = LinkStats::new(&registry, cfg.id, i);
        let (tx, handle) = spawn_sender(cfg.id, *addr, Arc::clone(&shutdown), Arc::clone(&stats));
        peer_txs.push(Some(tx));
        link_stats_by_peer.push(Some(Arc::clone(&stats)));
        link_stats.push(stats);
        threads.push(handle);
    }

    // The execution state the event loop will own, built (and possibly
    // recovered) on this thread so the node is fully caught up before it
    // starts accepting.
    let observed = subscriber.is_some();
    let mut lp = Loop {
        me: cfg.id,
        n: cfg.n,
        process,
        rng: SimRng::seed(cfg.seed),
        injector: FaultInjector::new(cfg.fault.clone(), cfg.seed ^ 0x6e65_7473), // distinct stream from the protocol's
        step: 0,
        out_seq: vec![0; cfg.n],
        outbox: Vec::new(),
        self_queue: VecDeque::new(),
        peer_txs,
        wal,
        boot,
        snapshot_every: cfg.snapshot_every,
        since_snapshot: 0,
        sent_log: vec![Vec::new(); cfg.n],
        durable_next: Arc::clone(&durable_next),
        link_stats_by_peer,
        status: Arc::clone(&status),
        counters: Arc::clone(&counters),
        metrics: metrics.clone(),
        subscriber,
        observed,
        decided: false,
        halt_published: false,
    };

    match mode {
        BootMode::Fresh => lp.run_start(true),
        BootMode::Restart {
            snapshot,
            deliveries,
        } => {
            let replay_started = Instant::now();
            let replayed = lp.recover(*snapshot, &deliveries, &cfg)?;
            metrics.recoveries.inc();
            metrics.recovered_deliveries.add(replayed);
            metrics
                .recovery_replay_us
                .record_us(replay_started.elapsed());
            lock_status(&status).recovered = replayed;
            lp.publish(Event::Recover {
                step: lp.step,
                pid: cfg.id,
                replayed,
            });
        }
    }

    // Acceptor: non-blocking accept loop so shutdown can interrupt it.
    // Started only now — the sequence tables above are final.
    listener.set_nonblocking(true)?;
    {
        let shutdown = Arc::clone(&shutdown);
        let streams = Arc::clone(&streams);
        let inbound_tx = inbound_tx.clone();
        let next_seq = Arc::clone(&next_seq);
        let acceptor_counters = Arc::clone(&counters);
        let decode_us = metrics.msg_decode_us.clone();
        let hashes = Arc::clone(&payload_hashes);
        let durable = cfg.wal.is_some().then(|| Arc::clone(&durable_next));
        let n = cfg.n;
        let me = cfg.id;
        let handle = thread::Builder::new()
            .name(format!("netstack-accept-p{}", me.index()))
            .spawn(move || {
                let mut reader_threads: Vec<JoinHandle<()>> = Vec::new();
                let mut next_token: u64 = 0;
                while !shutdown.load(Ordering::Relaxed) {
                    // Reap readers whose connections have closed, so flaky
                    // links cannot grow the handle list without bound (a
                    // reader prunes its own stream clone on the way out).
                    let mut i = 0;
                    while i < reader_threads.len() {
                        if reader_threads[i].is_finished() {
                            let _ = reader_threads.swap_remove(i).join();
                        } else {
                            i += 1;
                        }
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            let token = next_token;
                            next_token += 1;
                            if let Ok(clone) = stream.try_clone() {
                                streams
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .insert(token, clone);
                            }
                            let reader = Reader {
                                stream,
                                token,
                                n,
                                tx: inbound_tx.clone(),
                                seqs: Arc::clone(&next_seq),
                                durable: durable.clone(),
                                hashes: Arc::clone(&hashes),
                                counters: Arc::clone(&acceptor_counters),
                                decode_us: decode_us.clone(),
                                shutdown: Arc::clone(&shutdown),
                                registry: Arc::clone(&streams),
                            };
                            if let Ok(h) = thread::Builder::new()
                                .name(format!("netstack-read-p{}", me.index()))
                                .spawn(move || reader.run())
                            {
                                reader_threads.push(h);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                for h in reader_threads {
                    let _ = h.join();
                }
            })
            .expect("spawning the acceptor thread");
        threads.push(handle);
    }

    // The event loop: owns the (possibly recovered) process.
    let id = cfg.id;
    {
        let shutdown = Arc::clone(&shutdown);
        let status = Arc::clone(&status);
        let handle = thread::Builder::new()
            .name(format!("netstack-loop-p{}", cfg.id.index()))
            .spawn(move || {
                // A panic here (a protocol bug, hostile input the
                // defensive layers missed, or a WAL that can no longer
                // be appended to) must not leave the node as a silent
                // zombie: catch it and mark the node dead so status
                // readers can fail fast. Dying on a WAL write failure is
                // deliberate — without durability the no-equivocation
                // guarantee is gone, and fail-stop is the honest mode.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    event_loop(lp, &inbound_rx, &shutdown);
                }));
                if result.is_err() {
                    let mut st = lock_status(&status);
                    st.died = true;
                    st.halted = true;
                }
            })
            .expect("spawning the event loop thread");
        threads.push(handle);
    }

    Ok(NodeHandle {
        id,
        status,
        counters,
        link_stats,
        registry,
        next_seq,
        shutdown,
        streams,
        threads,
    })
}

/// What the sequence-number table says to do with an inbound frame.
enum Disposition {
    /// `seq` is the next expected: deliver it.
    Deliver,
    /// Already delivered (a reconnect replay): ack again, drop.
    Duplicate,
    /// Skipped ahead of the next expected seq. An honest sender replays
    /// its unacked backlog in order, so this is a reliability violation
    /// or a hostile peer: count it and drop, never deliver out of order.
    Gap,
}

/// One accepted inbound connection: reads frames until EOF, error, or
/// shutdown, acking delivered sequence numbers back to the sender.
struct Reader<M> {
    stream: TcpStream,
    /// This connection's key in the stream registry, pruned on exit.
    token: u64,
    n: usize,
    tx: mpsc::Sender<(ProcessId, u64, M)>,
    seqs: Arc<Mutex<Vec<u64>>>,
    /// When this node journals to a WAL, acks advance only as the event
    /// loop logs deliveries (the durable watermark), never as frames
    /// merely enter the inbound queue — otherwise a sender could retire
    /// a frame this node would lose by crashing before the append.
    durable: Option<Arc<Vec<AtomicU64>>>,
    /// Payload hashes of delivered frames, for the no-equivocation check
    /// on duplicates.
    hashes: PayloadHashes,
    counters: Arc<NetCounters>,
    /// Decode-latency histogram for payloads that reach the decode step.
    decode_us: Histogram,
    shutdown: Arc<AtomicBool>,
    registry: StreamRegistry,
}

impl<M: Wire> Reader<M> {
    fn run(mut self) {
        self.read_connection();
        // Dead connections must not accumulate in the registry.
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.token);
    }

    fn read_connection(&mut self) {
        // Handshake: the first frame must identify the peer.
        let from = match read_frame(&mut self.stream) {
            Ok(Frame::Hello { from }) if from.index() < self.n => from,
            _ => return, // not a peer speaking our protocol
        };
        while !self.shutdown.load(Ordering::Relaxed) {
            match read_frame(&mut self.stream) {
                Ok(Frame::Msg { seq, payload }) => {
                    let (disposition, speculative) = {
                        let mut seqs = self.seqs.lock().expect("seq table poisoned");
                        let next = &mut seqs[from.index()];
                        let d = if seq > *next {
                            Disposition::Gap
                        } else if seq < *next {
                            Disposition::Duplicate
                        } else {
                            *next += 1;
                            Disposition::Deliver
                        };
                        (d, *next)
                    };
                    let ack = match &self.durable {
                        Some(d) => d[from.index()].load(Ordering::Acquire),
                        None => speculative,
                    };
                    // Cumulative ack — re-sent even for duplicates and
                    // gaps so a reconnected sender can retire its backlog
                    // and resynchronize.
                    if write_frame(&mut self.stream, &Frame::Ack { next: ack }).is_err() {
                        return; // connection died; the sender will redial
                    }
                    match disposition {
                        Disposition::Deliver => {
                            self.hashes.lock().unwrap_or_else(PoisonError::into_inner)
                                [from.index()]
                            .insert(seq, fnv1a64(&payload));
                        }
                        Disposition::Duplicate => {
                            // A retransmission must be byte-identical to
                            // the frame first delivered under this seq —
                            // recovered nodes included. Anything else is
                            // equivocation.
                            let known = self.hashes.lock().unwrap_or_else(PoisonError::into_inner)
                                [from.index()]
                            .get(&seq)
                            .copied();
                            if let Some(h) = known {
                                if h != fnv1a64(&payload) {
                                    self.counters.equivocations.inc();
                                }
                            }
                            continue;
                        }
                        Disposition::Gap => {
                            self.counters.seq_gaps.inc();
                            continue;
                        }
                    }
                    // Byzantine bytes: payloads that do not decode, or
                    // decode to contents out of range for this system,
                    // are dropped here — they must never reach (and
                    // possibly kill) the protocol. The link stays up.
                    let decode_started = self.decode_us.enabled().then(Instant::now);
                    let decoded = M::from_bytes(&payload);
                    if let Some(t) = decode_started {
                        self.decode_us.record_us(t.elapsed());
                    }
                    let Ok(msg) = decoded else {
                        self.counters.wire_rejected.inc();
                        continue;
                    };
                    if !msg.validate(self.n) {
                        self.counters.wire_rejected.inc();
                        continue;
                    }
                    if self.tx.send((from, seq, msg)).is_err() {
                        return; // event loop gone
                    }
                }
                Ok(Frame::Hello { .. } | Frame::Ack { .. }) => continue, // not meaningful inbound
                Err(_) => return, // EOF, reset, or malformed framing
            }
        }
    }
}

/// The execution state owned by the event loop: the process, its RNG and
/// step counter, the outbound plumbing, and (optionally) the WAL.
struct Loop<M: Wire> {
    me: ProcessId,
    n: usize,
    process: Box<dyn Process<Msg = M> + Send>,
    rng: SimRng,
    injector: FaultInjector,
    step: u64,
    out_seq: Vec<u64>,
    outbox: Vec<(ProcessId, M)>,
    /// Pending self-deliveries (encoded), oldest first. Owned by the
    /// event loop — not a channel — so a checkpoint can capture it.
    self_queue: VecDeque<Vec<u8>>,
    peer_txs: Vec<Option<mpsc::Sender<OutFrame>>>,
    wal: Option<Wal>,
    boot: BootRecord,
    snapshot_every: u64,
    since_snapshot: u64,
    /// Per-peer journal of sent frames `(seq, payload)`, kept only when
    /// the WAL is on; pruned of acked frames at checkpoint time, what
    /// remains becomes the snapshot's retransmission backlog.
    sent_log: Vec<Vec<(u64, Vec<u8>)>>,
    /// Durable delivered watermark per peer (what acks may cover).
    durable_next: Arc<Vec<AtomicU64>>,
    link_stats_by_peer: Vec<Option<Arc<LinkStats>>>,
    status: Arc<Mutex<NodeStatus>>,
    counters: Arc<NetCounters>,
    metrics: NodeMetrics,
    subscriber: Option<SharedSubscriber>,
    observed: bool,
    decided: bool,
    halt_published: bool,
}

impl<M: Wire> Loop<M> {
    fn publish(&self, event: Event) {
        if let Some(s) = &self.subscriber {
            s.lock().expect("subscriber lock poisoned").on_event(&event);
        }
    }

    /// The initial atomic step. With `live` false this is a replay
    /// re-derivation: same state, same sends, no publishing, no counting.
    fn run_start(&mut self, live: bool) {
        if live {
            self.publish(Event::Start { pid: self.me });
        }
        let events = {
            let mut ctx = Ctx::new(self.me, self.n, self.step, &mut self.outbox, &mut self.rng)
                .with_obs(self.observed && live)
                .with_live(live);
            self.process.on_start(&mut ctx);
            ctx.take_events()
        };
        if live {
            for event in events {
                self.publish(Event::Protocol {
                    step: self.step,
                    pid: self.me,
                    event,
                });
            }
        }
        self.dispatch(live);
        self.observe(live);
    }

    /// Restores the snapshot (if any) and replays the logged deliveries,
    /// returning how many were replayed. Runs before the acceptor starts.
    fn recover(
        &mut self,
        snapshot: Option<SnapshotRecord>,
        deliveries: &[DeliveryRecord],
        cfg: &NodeConfig,
    ) -> io::Result<u64> {
        match snapshot {
            Some(s) => {
                if s.out_seq.len() != self.n
                    || s.backlogs.len() != self.n
                    || s.next_seq.len() != self.n
                {
                    return Err(bad("wal snapshot sized for a different system"));
                }
                self.step = s.step;
                self.rng = SimRng::restore(s.rng_seed, words4(&s.rng_state, "rng state")?);
                self.injector = FaultInjector::with_state(
                    cfg.fault.clone(),
                    words4(&s.injector_state, "injector state")?,
                );
                if !self.process.restore(&s.process) {
                    return Err(bad("protocol state machine rejected its snapshot"));
                }
                self.out_seq = s.out_seq;
                self.self_queue = s.self_queue.into();
                self.sent_log = s.backlogs;
                // Re-offer the unacked backlog: frames a peer may never
                // have received, byte-identical under their original
                // sequence numbers.
                for (i, frames) in self.sent_log.iter().enumerate() {
                    let Some(tx) = self.peer_txs[i].as_ref() else {
                        continue;
                    };
                    for (seq, payload) in frames {
                        let _ = tx.send(OutFrame {
                            seq: *seq,
                            not_before: Instant::now(),
                            payload: payload.clone(),
                        });
                    }
                }
            }
            // No checkpoint: re-derive genesis, silently.
            None => self.run_start(false),
        }
        for d in deliveries {
            let msg = match d.seq {
                // A logged self-delivery consumes the queue head, which
                // determinism says must be byte-identical to the record.
                None => {
                    if d.from != self.me {
                        return Err(bad("wal self-delivery not from this node"));
                    }
                    let bytes = self
                        .self_queue
                        .pop_front()
                        .ok_or_else(|| bad("wal self-delivery with no pending self-send"))?;
                    if bytes != d.payload {
                        return Err(bad("replay diverged: self-delivery bytes differ from log"));
                    }
                    M::from_bytes(&bytes).map_err(|_| bad("undecodable logged self-delivery"))?
                }
                Some(_) => M::from_bytes(&d.payload)
                    .map_err(|_| bad("undecodable logged delivery payload"))?,
            };
            self.deliver(d.from, d.seq, msg, &d.payload, false);
        }
        // Refresh the externally visible status from the recovered state
        // even when every delivery was compacted into the snapshot — a
        // decision restored from the checkpoint alone must still be
        // reported (silently: it belongs to the crashed incarnation).
        self.observe(false);
        Ok(deliveries.len() as u64)
    }

    /// One delivery step — the WAL append, the process step, the sends it
    /// causes, and the status/telemetry fallout. With `live` false this
    /// is log replay: the append is skipped (the record is the log) and
    /// nothing is published or counted, but sends still go out — they are
    /// retransmissions of frames the crashed incarnation already owned.
    fn deliver(&mut self, from: ProcessId, seq: Option<u64>, msg: M, payload: &[u8], live: bool) {
        if live {
            if let Some(wal) = &mut self.wal {
                // Log-before-send: the record must be durable before any
                // message this delivery produces reaches a socket. A
                // failed append forfeits that guarantee, so die (the
                // panic is caught and surfaced as NodeStatus::died).
                let append_started = self.metrics.wal_append_us.enabled().then(Instant::now);
                wal.append(&WalRecord::Delivery(DeliveryRecord {
                    from,
                    seq,
                    payload: payload.to_vec(),
                }))
                .expect("wal append failed: cannot guarantee no-equivocation");
                if let Some(t) = append_started {
                    self.metrics.wal_append_us.record_us(t.elapsed());
                }
                if let Some(s) = seq {
                    // Now — and only now — may acks cover this frame.
                    self.durable_next[from.index()].store(s + 1, Ordering::Release);
                }
            }
        }
        if self.process.halted() {
            if live {
                self.counters.dropped_at_halted.inc();
            }
            return;
        }
        self.step += 1;
        if live {
            self.counters.delivered.inc();
            // A networked node has no delivery buffer the scheduler
            // indexes into — the OS hands messages over in arrival order
            // — so the schedule slot is always 0.
            self.publish(Event::Deliver {
                step: self.step,
                to: self.me,
                from,
                index: 0,
            });
        }
        let events = {
            let mut ctx = Ctx::new(self.me, self.n, self.step, &mut self.outbox, &mut self.rng)
                .with_obs(self.observed && live)
                .with_live(live);
            self.process.on_receive(Envelope::new(from, msg), &mut ctx);
            ctx.take_events()
        };
        if live {
            for event in events {
                self.publish(Event::Protocol {
                    step: self.step,
                    pid: self.me,
                    event,
                });
            }
        }
        self.dispatch(live);
        self.observe(live);
        if live {
            self.maybe_snapshot();
        }
    }

    /// Routes one step's outbox: self-sends join the local queue, remote
    /// sends pass the fault injector and land on the link queues. The
    /// injector is consulted (and the RNG stream advanced) in replay too
    /// — drop decisions gate sequence-number assignment, so skipping them
    /// would renumber the replayed frames.
    fn dispatch(&mut self, live: bool) {
        let mut outbox = std::mem::take(&mut self.outbox);
        for (to, msg) in outbox.drain(..) {
            if live {
                self.counters.sent.inc();
                self.publish(Event::Send {
                    step: self.step,
                    from: self.me,
                    to,
                });
            }
            if to == self.me {
                self.self_queue.push_back(msg.to_bytes());
                continue;
            }
            let Some(tx) = self.peer_txs.get(to.index()).and_then(Option::as_ref) else {
                continue; // address outside the system: a Byzantine no-op
            };
            let not_before = match self.injector.action(self.me, to) {
                LinkAction::Drop => {
                    if live {
                        self.counters.injected_drops.inc();
                    }
                    continue;
                }
                LinkAction::Deliver => Instant::now(),
                LinkAction::DelayBy(d) => Instant::now() + d,
            };
            let seq = self.out_seq[to.index()];
            self.out_seq[to.index()] += 1;
            let encode_started = self.metrics.msg_encode_us.enabled().then(Instant::now);
            let frame_payload = msg.to_bytes();
            if let Some(t) = encode_started {
                self.metrics.msg_encode_us.record_us(t.elapsed());
            }
            if self.wal.is_some() {
                self.sent_log[to.index()].push((seq, frame_payload.clone()));
            }
            let _ = tx.send(OutFrame {
                seq,
                not_before,
                payload: frame_payload,
            });
        }
        self.outbox = outbox;
    }

    /// Mirrors `Sim::observe`: records decisions and halts exactly once.
    /// In replay the status still updates (the recovered node resumes
    /// with correct phase/decision) but nothing is re-published — the
    /// world already saw those events from the previous incarnation.
    fn observe(&mut self, live: bool) {
        let halted = self.process.halted();
        let mut newly_decided = None;
        {
            let mut st = lock_status(&self.status);
            st.steps = self.step + 1;
            st.phase = self.process.phase();
            st.halted = halted;
            if !self.decided {
                if let Some(v) = self.process.decision() {
                    self.decided = true;
                    st.decision = Some(v);
                    st.decision_phase = self.process.decision_phase();
                    st.decision_step = Some(self.step);
                    newly_decided = Some(v);
                }
            }
        }
        if let Some(value) = newly_decided {
            if live {
                self.publish(Event::Decide {
                    step: self.step,
                    pid: self.me,
                    value,
                });
            }
        }
        if halted && !self.halt_published {
            self.halt_published = true;
            if live {
                self.publish(Event::Halt {
                    step: self.step,
                    pid: self.me,
                });
            }
        }
    }

    /// Compacts the WAL to boot + snapshot every `snapshot_every`
    /// processed deliveries, if the protocol supports checkpointing.
    fn maybe_snapshot(&mut self) {
        if self.snapshot_every == 0 || self.wal.is_none() {
            return;
        }
        self.since_snapshot += 1;
        if self.since_snapshot < self.snapshot_every {
            return;
        }
        let Some(process_bytes) = self.process.snapshot() else {
            return; // protocol opted out of checkpointing; replay from genesis
        };
        self.since_snapshot = 0;
        // Retire frames the peers have acknowledged; what's left is the
        // unacked backlog a restarted node must re-offer.
        for (i, log) in self.sent_log.iter_mut().enumerate() {
            if let Some(stats) = &self.link_stats_by_peer[i] {
                let acked = stats.acked.get();
                log.retain(|(seq, _)| *seq >= acked);
            }
        }
        let (rng_seed, rng_state) = self.rng.save();
        let snapshot = SnapshotRecord {
            step: self.step,
            rng_seed,
            rng_state: rng_state.to_vec(),
            process: process_bytes,
            out_seq: self.out_seq.clone(),
            // The durable watermark, not the readers' speculative table:
            // frames still in the inbound queue are not yet this node's
            // responsibility — they were never acked, so a post-crash
            // sender re-offers them.
            next_seq: self
                .durable_next
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .collect(),
            backlogs: self.sent_log.clone(),
            self_queue: self.self_queue.iter().cloned().collect(),
            injector_state: self.injector.rng_state().to_vec(),
        };
        if let Some(wal) = &mut self.wal {
            // A failed compaction is not fatal — the log just stays long
            // and replay starts further back.
            let compact_started = Instant::now();
            if wal.compact(&self.boot, &snapshot).is_ok() {
                self.metrics.wal_compactions.inc();
                self.metrics
                    .wal_compact_us
                    .record_us(compact_started.elapsed());
            }
        }
    }
}

/// Runs the delivery loop: pending self-deliveries first (they are
/// already owed to the process), then whatever the readers queued.
fn event_loop<M: Wire + Send + 'static>(
    mut lp: Loop<M>,
    inbound_rx: &mpsc::Receiver<(ProcessId, u64, M)>,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::Relaxed) {
        if let Some(bytes) = lp.self_queue.pop_front() {
            let msg = M::from_bytes(&bytes).expect("locally encoded self-delivery decodes");
            let me = lp.me;
            lp.deliver(me, None, msg, &bytes, true);
            continue;
        }
        match inbound_rx.recv_timeout(POLL) {
            Ok((from, seq, msg)) => {
                let payload = msg.to_bytes();
                lp.deliver(from, Some(seq), msg, &payload, true);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}
