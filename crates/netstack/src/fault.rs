//! Link fault injection: the simnet adversarial schedulers, translated to
//! wall-clock time.
//!
//! In the simulator, the adversary is the *scheduler*: `DelayingScheduler`
//! starves chosen links, `PartitionScheduler` splits the system in two,
//! and the fair scheduler's randomness realises §2.3's probabilistic
//! assumption. Over sockets there is no scheduler to replace, so the same
//! adversities are injected where a real network would produce them — on
//! the sender's outbound path, per link:
//!
//! * **delay** — each message draws a uniform extra latency, the
//!   wall-clock analogue of the fair scheduler's reordering freedom
//!   (messages on *different* links overtake each other; a single link
//!   stays FIFO, which the paper's model permits);
//! * **partition** — messages crossing the cut are held back until the
//!   partition heals, the analogue of `PartitionScheduler`'s deferral.
//!   A healing partition only *delays* traffic, so the §2.1 reliable
//!   channel assumption still holds and consensus must still terminate;
//! * **drop** — true message loss. This one has no simnet counterpart
//!   because the paper's model forbids it; it exists to demonstrate,
//!   on stress runs, that the protocols' liveness (not safety) is what
//!   breaks when reliability is violated.
//!
//! All randomness comes from one seeded [`prng::Prng`], so a given plan +
//! seed injects the same fault pattern per message index on every run
//! (arrival timing still depends on the OS scheduler — networked runs are
//! reproducible in *pattern*, not in interleaving).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use prng::Prng;
use simnet::ProcessId;

use crate::storage::DiskFault;

/// Declarative description of the faults to inject on outbound links.
///
/// The default plan is a perfectly reliable network: no delay, no drops,
/// no partition.
///
/// A plan round-trips losslessly through its [`Display`](fmt::Display)
/// spec string (parse it back with [`str::parse`]), so fuzzer repro
/// artifacts can embed the exact network conditions of a failing run:
///
/// ```
/// use std::time::Duration;
/// use netstack::FaultPlan;
///
/// let plan = FaultPlan::reliable()
///     .with_delay(Duration::ZERO, Duration::from_millis(20))
///     .with_partition(4, &[0, 1], Duration::from_millis(50));
/// let spec = plan.to_string();
/// assert_eq!(spec.parse::<FaultPlan>().unwrap(), plan);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    delay: Option<(Duration, Duration)>,
    drop_per_mille: u16,
    partition: Option<Partition>,
    crashes: Vec<CrashRestart>,
    disk: Vec<(usize, DiskFault)>,
}

/// A scheduled process crash with a later restart: kill node `node` at
/// `kill_after` (measured from cluster start), bring it back at
/// `restart_after`. Unlike the link faults above, this is a *process*
/// fault executed by the cluster supervisor, not by the per-link
/// injector — the injector ignores it. The restarted node recovers from
/// its write-ahead log, so the crash is the paper's benign fail-stop
/// fault extended with rejoin, never a Byzantine one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashRestart {
    /// Index of the node to kill.
    pub node: usize,
    /// When (after cluster start) the node is killed.
    pub kill_after: Duration,
    /// When (after cluster start) the node is restarted.
    pub restart_after: Duration,
}

/// A two-sided network partition that heals after a fixed duration.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Partition {
    /// Membership of side A (everything else is side B).
    side_a: Vec<bool>,
    /// How long after node start the cut lasts.
    heal_after: Duration,
}

impl FaultPlan {
    /// A perfectly reliable network (the default).
    #[must_use]
    pub fn reliable() -> Self {
        FaultPlan::default()
    }

    /// Adds a uniform per-message delay in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn with_delay(mut self, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "delay range must be ordered");
        self.delay = Some((min, max));
        self
    }

    /// Drops each message independently with probability
    /// `per_mille / 1000`. Violates the paper's reliable-channel
    /// assumption — use only to study what loss does to liveness.
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000`.
    #[must_use]
    pub fn with_drop(mut self, per_mille: u16) -> Self {
        assert!(per_mille <= 1000, "probability is at most 1000‰");
        self.drop_per_mille = per_mille;
        self
    }

    /// Partitions `side_a` (indices into the system) from the rest for
    /// `heal_after`, measured from injector creation. Cross-cut messages
    /// are delayed until healing, not lost.
    #[must_use]
    pub fn with_partition(mut self, n: usize, side_a: &[usize], heal_after: Duration) -> Self {
        let mut members = vec![false; n];
        for &i in side_a {
            members[i] = true;
        }
        self.partition = Some(Partition {
            side_a: members,
            heal_after,
        });
        self
    }

    /// Schedules a kill of node `node` at `kill_after` with a restart at
    /// `restart_after` (both measured from cluster start). Executed by
    /// the cluster supervisor; requires recovery (a WAL directory) to be
    /// configured on the cluster, and the restarted node rejoins by
    /// replaying its log.
    ///
    /// # Panics
    ///
    /// Panics if `kill_after > restart_after`.
    #[must_use]
    pub fn with_crash(
        mut self,
        node: usize,
        kill_after: Duration,
        restart_after: Duration,
    ) -> Self {
        assert!(
            kill_after <= restart_after,
            "a node must be killed before it restarts"
        );
        self.crashes.push(CrashRestart {
            node,
            kill_after,
            restart_after,
        });
        self
    }

    /// Injects `fault` into node `node`'s write-ahead-log storage layer
    /// (executed by the node's [`FaultyStorage`](crate::storage::FaultyStorage)
    /// wrapper, not by the per-link injector). Operation counts restart
    /// with each node incarnation, and a `flip` only bites once the log
    /// is long enough — so a fresh boot is unaffected and a *restart*
    /// observes the damage, which is the interesting case.
    #[must_use]
    pub fn with_disk(mut self, node: usize, fault: DiskFault) -> Self {
        self.disk.push((node, fault));
        self
    }

    /// The scheduled crash-restart faults, in the order added.
    #[must_use]
    pub fn crashes(&self) -> &[CrashRestart] {
        &self.crashes
    }

    /// Every `(node, fault)` storage-fault clause, in the order added.
    #[must_use]
    pub fn disk(&self) -> &[(usize, DiskFault)] {
        &self.disk
    }

    /// The storage faults aimed at node `node`, in the order added.
    #[must_use]
    pub fn disk_for(&self, node: usize) -> Vec<DiskFault> {
        self.disk
            .iter()
            .filter(|(i, _)| *i == node)
            .map(|&(_, f)| f)
            .collect()
    }

    /// Whether this plan can lose messages (and therefore void the
    /// reliable-channel guarantee consensus termination rests on).
    #[must_use]
    pub fn is_lossy(&self) -> bool {
        self.drop_per_mille > 0
    }

    /// The configured per-message delay range, if any.
    #[must_use]
    pub fn delay(&self) -> Option<(Duration, Duration)> {
        self.delay
    }

    /// The configured per-message drop probability in per-mille.
    #[must_use]
    pub fn drop_per_mille(&self) -> u16 {
        self.drop_per_mille
    }

    /// The configured partition as `(side_a members, n, heal_after)`,
    /// if any.
    #[must_use]
    pub fn partition(&self) -> Option<(Vec<usize>, usize, Duration)> {
        self.partition.as_ref().map(|p| {
            let members = (0..p.side_a.len()).filter(|&i| p.side_a[i]).collect();
            (members, p.side_a.len(), p.heal_after)
        })
    }
}

/// Renders the plan as a compact spec string — `reliable` for the default
/// plan, otherwise `;`-separated clauses with durations in integer
/// nanoseconds: `delay=0..20000000;drop=5;partition=0,1/4@50000000;`
/// `crash=2@50000000..120000000` (kill node 2 at 50 ms, restart at
/// 120 ms); `disk=2:flip@8` (node 2 reads the log byte at offset 8
/// flipped on every open — see [`DiskFault`] for the fault grammar).
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut clauses = Vec::new();
        if let Some((min, max)) = self.delay {
            clauses.push(format!("delay={}..{}", min.as_nanos(), max.as_nanos()));
        }
        if self.drop_per_mille > 0 {
            clauses.push(format!("drop={}", self.drop_per_mille));
        }
        if let Some((members, n, heal)) = self.partition() {
            let side: Vec<String> = members.iter().map(ToString::to_string).collect();
            clauses.push(format!(
                "partition={}/{}@{}",
                side.join(","),
                n,
                heal.as_nanos()
            ));
        }
        for c in &self.crashes {
            clauses.push(format!(
                "crash={}@{}..{}",
                c.node,
                c.kill_after.as_nanos(),
                c.restart_after.as_nanos()
            ));
        }
        for (node, fault) in &self.disk {
            clauses.push(format!("disk={node}:{fault}"));
        }
        if clauses.is_empty() {
            write!(f, "reliable")
        } else {
            write!(f, "{}", clauses.join(";"))
        }
    }
}

fn parse_nanos(raw: &str, what: &str) -> Result<Duration, String> {
    raw.parse::<u64>()
        .map(Duration::from_nanos)
        .map_err(|_| format!("{what} must be integer nanoseconds, got {raw:?}"))
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::reliable();
        if spec == "reliable" {
            return Ok(plan);
        }
        for clause in spec.split(';') {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause without '=': {clause:?}"))?;
            match key {
                "delay" => {
                    let (min, max) = val
                        .split_once("..")
                        .ok_or_else(|| format!("delay needs 'min..max', got {val:?}"))?;
                    let min = parse_nanos(min, "delay min")?;
                    let max = parse_nanos(max, "delay max")?;
                    if min > max {
                        return Err(format!("delay range must be ordered, got {val:?}"));
                    }
                    plan = plan.with_delay(min, max);
                }
                "drop" => {
                    let pm = val
                        .parse::<u16>()
                        .map_err(|_| format!("drop needs per-mille, got {val:?}"))?;
                    plan = plan.with_drop(pm);
                }
                "partition" => {
                    let (cut, heal) = val
                        .split_once('@')
                        .ok_or_else(|| format!("partition needs '@heal', got {val:?}"))?;
                    let (side, n) = cut
                        .split_once('/')
                        .ok_or_else(|| format!("partition needs 'side/n', got {val:?}"))?;
                    let n = n
                        .parse::<usize>()
                        .map_err(|_| format!("partition size must be a count, got {n:?}"))?;
                    let mut members = Vec::new();
                    for idx in side.split(',').filter(|s| !s.is_empty()) {
                        let i = idx.parse::<usize>().map_err(|_| {
                            format!("partition member must be an index, got {idx:?}")
                        })?;
                        if i >= n {
                            return Err(format!("partition member {i} out of range for n={n}"));
                        }
                        members.push(i);
                    }
                    plan = plan.with_partition(n, &members, parse_nanos(heal, "partition heal")?);
                }
                "crash" => {
                    let (node, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("crash needs 'node@kill..restart', got {val:?}"))?;
                    let node = node
                        .parse::<usize>()
                        .map_err(|_| format!("crash node must be an index, got {node:?}"))?;
                    let (kill, restart) = window
                        .split_once("..")
                        .ok_or_else(|| format!("crash needs 'kill..restart', got {val:?}"))?;
                    let kill = parse_nanos(kill, "crash kill time")?;
                    let restart = parse_nanos(restart, "crash restart time")?;
                    if kill > restart {
                        return Err(format!("crash must restart after the kill, got {val:?}"));
                    }
                    plan = plan.with_crash(node, kill, restart);
                }
                "disk" => {
                    let (node, fault) = val
                        .split_once(':')
                        .ok_or_else(|| format!("disk needs 'node:fault', got {val:?}"))?;
                    let node = node
                        .parse::<usize>()
                        .map_err(|_| format!("disk node must be an index, got {node:?}"))?;
                    plan = plan.with_disk(node, fault.parse::<DiskFault>()?);
                }
                other => return Err(format!("unknown fault clause {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// What the injector decided for one message on one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkAction {
    /// Send immediately.
    Deliver,
    /// Hold the message back for the given duration, then send.
    DelayBy(Duration),
    /// Lose the message.
    Drop,
}

/// Applies a [`FaultPlan`] to a node's outbound messages.
///
/// One injector lives in each node; its clock starts when the node boots,
/// which is what partition healing is measured against.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<Prng>,
    epoch: Instant,
}

impl FaultInjector {
    /// Creates an injector whose random stream is derived from `seed`.
    #[must_use]
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: Mutex::new(Prng::seed_from_u64(seed)),
            epoch: Instant::now(),
        }
    }

    /// Creates an injector whose random stream resumes from a saved
    /// [`FaultInjector::rng_state`] — recovery uses this so that replayed
    /// sends draw the *same* fate decisions (in particular the same
    /// drops, which gate sequence-number assignment) as the pre-crash
    /// incarnation. The epoch still restarts at `now`: partition healing
    /// is a wall-clock fault and is not replayed.
    #[must_use]
    pub fn with_state(plan: FaultPlan, state: [u64; 4]) -> Self {
        FaultInjector {
            plan,
            rng: Mutex::new(Prng::from_state(state)),
            epoch: Instant::now(),
        }
    }

    /// The injector's current 256-bit RNG state, for checkpointing.
    #[must_use]
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.lock().expect("fault rng poisoned").state()
    }

    /// Decides the fate of one message from `from` to `to`.
    pub fn action(&self, from: ProcessId, to: ProcessId) -> LinkAction {
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        if self.plan.drop_per_mille > 0 && rng.below_u64(1000) < u64::from(self.plan.drop_per_mille)
        {
            return LinkAction::Drop;
        }
        let mut delay = Duration::ZERO;
        if let Some((min, max)) = self.plan.delay {
            let span = max.saturating_sub(min);
            let extra = if span.is_zero() {
                Duration::ZERO
            } else {
                let nanos = u64::try_from(span.as_nanos()).unwrap_or(u64::MAX);
                Duration::from_nanos(rng.below_u64(nanos.saturating_add(1)))
            };
            delay = min + extra;
        }
        if let Some(partition) = &self.plan.partition {
            let cut = partition.side_a.get(from.index()).copied().unwrap_or(false)
                != partition.side_a.get(to.index()).copied().unwrap_or(false);
            if cut {
                let elapsed = self.epoch.elapsed();
                if elapsed < partition.heal_after {
                    delay = delay.max(partition.heal_after - elapsed);
                }
            }
        }
        if delay.is_zero() {
            LinkAction::Deliver
        } else {
            LinkAction::DelayBy(delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let inj = FaultInjector::new(FaultPlan::reliable(), 1);
        for i in 0..50 {
            assert_eq!(
                inj.action(ProcessId::new(i % 4), ProcessId::new((i + 1) % 4)),
                LinkAction::Deliver
            );
        }
    }

    #[test]
    fn full_drop_loses_everything() {
        let inj = FaultInjector::new(FaultPlan::reliable().with_drop(1000), 1);
        for _ in 0..20 {
            assert_eq!(
                inj.action(ProcessId::new(0), ProcessId::new(1)),
                LinkAction::Drop
            );
        }
    }

    #[test]
    fn delay_stays_in_range() {
        let min = Duration::from_millis(2);
        let max = Duration::from_millis(9);
        let inj = FaultInjector::new(FaultPlan::reliable().with_delay(min, max), 7);
        for _ in 0..100 {
            match inj.action(ProcessId::new(0), ProcessId::new(1)) {
                LinkAction::DelayBy(d) => assert!(d >= min && d <= max, "{d:?}"),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn partition_delays_cross_cut_only_until_heal() {
        let plan = FaultPlan::reliable().with_partition(4, &[0, 1], Duration::from_millis(40));
        let inj = FaultInjector::new(plan, 3);
        // Cross-cut: delayed by (roughly) the remaining partition time.
        match inj.action(ProcessId::new(0), ProcessId::new(2)) {
            LinkAction::DelayBy(d) => assert!(d <= Duration::from_millis(40)),
            other => panic!("expected cross-cut delay, got {other:?}"),
        }
        // Same side: unaffected.
        assert_eq!(
            inj.action(ProcessId::new(0), ProcessId::new(1)),
            LinkAction::Deliver
        );
        std::thread::sleep(Duration::from_millis(50));
        // Healed: cross-cut flows again.
        assert_eq!(
            inj.action(ProcessId::new(0), ProcessId::new(2)),
            LinkAction::Deliver
        );
    }

    #[test]
    fn same_plan_and_seed_repeat_the_same_pattern() {
        let plan = FaultPlan::reliable().with_drop(500);
        let a = FaultInjector::new(plan.clone(), 42);
        let b = FaultInjector::new(plan, 42);
        for _ in 0..64 {
            assert_eq!(
                a.action(ProcessId::new(0), ProcessId::new(1)),
                b.action(ProcessId::new(0), ProcessId::new(1))
            );
        }
    }

    #[test]
    fn lossy_detection() {
        assert!(!FaultPlan::reliable().is_lossy());
        assert!(FaultPlan::reliable().with_drop(1).is_lossy());
    }

    #[test]
    fn spec_round_trips_every_clause() {
        let plans = [
            FaultPlan::reliable(),
            FaultPlan::reliable().with_delay(Duration::ZERO, Duration::from_millis(20)),
            FaultPlan::reliable().with_drop(5),
            FaultPlan::reliable().with_partition(4, &[0, 1], Duration::from_millis(50)),
            FaultPlan::reliable()
                .with_delay(Duration::from_micros(100), Duration::from_millis(3))
                .with_drop(999)
                .with_partition(7, &[2, 4, 6], Duration::from_secs(1)),
            FaultPlan::reliable().with_partition(3, &[], Duration::from_millis(1)),
            FaultPlan::reliable().with_crash(
                2,
                Duration::from_millis(50),
                Duration::from_millis(120),
            ),
            FaultPlan::reliable()
                .with_drop(3)
                .with_crash(0, Duration::from_millis(10), Duration::from_millis(10))
                .with_crash(4, Duration::from_millis(20), Duration::from_secs(1)),
            FaultPlan::reliable().with_disk(2, DiskFault::Flip { offset: 8 }),
            FaultPlan::reliable()
                .with_crash(1, Duration::from_millis(15), Duration::from_millis(60))
                .with_disk(1, DiskFault::Flip { offset: 8 })
                .with_disk(1, DiskFault::ShortWrite { nth: 3 })
                .with_disk(0, DiskFault::FsyncErr { nth: 1 })
                .with_disk(3, DiskFault::Enospc { nth: 2 })
                .with_disk(4, DiskFault::LostRename),
        ];
        for plan in plans {
            let spec = plan.to_string();
            let parsed: FaultPlan = spec.parse().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(parsed, plan, "spec {spec:?} did not round-trip");
        }
    }

    #[test]
    fn spec_reliable_renders_and_parses() {
        assert_eq!(FaultPlan::reliable().to_string(), "reliable");
        assert_eq!(
            "reliable".parse::<FaultPlan>().unwrap(),
            FaultPlan::reliable()
        );
    }

    #[test]
    fn spec_rejects_malformed_clauses() {
        for bad in [
            "nonsense",
            "delay=5",
            "delay=9..3",
            "drop=many",
            "partition=0,1/4",
            "partition=9/4@100",
            "crash=1",
            "crash=1@500",
            "crash=x@1..2",
            "crash=1@9..3",
            "disk=1",
            "disk=x:flip@8",
            "disk=1:flip",
            "disk=1:flip@tail",
            "disk=1:lostrename@2",
            "disk=1:melt@3",
            "turtles=all-the-way",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rng_state_round_trip_resumes_the_decision_stream() {
        let plan = FaultPlan::reliable().with_drop(500);
        let a = FaultInjector::new(plan.clone(), 99);
        // Burn part of the stream, checkpoint, keep going on `a`.
        for _ in 0..17 {
            let _ = a.action(ProcessId::new(0), ProcessId::new(1));
        }
        let state = a.rng_state();
        let b = FaultInjector::with_state(plan, state);
        for _ in 0..64 {
            assert_eq!(
                a.action(ProcessId::new(0), ProcessId::new(1)),
                b.action(ProcessId::new(0), ProcessId::new(1))
            );
        }
    }

    #[test]
    fn crashes_accessor_and_injector_ignore_crash_faults() {
        let plan = FaultPlan::reliable().with_crash(
            1,
            Duration::from_millis(5),
            Duration::from_millis(30),
        );
        assert_eq!(plan.crashes().len(), 1);
        assert_eq!(plan.crashes()[0].node, 1);
        assert!(!plan.is_lossy(), "a crash-restart is not message loss");
        // The per-link injector executes link faults only; crash-restart
        // belongs to the cluster supervisor.
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(
            inj.action(ProcessId::new(1), ProcessId::new(0)),
            LinkAction::Deliver
        );
    }

    #[test]
    fn accessors_expose_the_plan() {
        let plan = FaultPlan::reliable()
            .with_delay(Duration::from_millis(1), Duration::from_millis(2))
            .with_drop(7)
            .with_partition(5, &[1, 3], Duration::from_millis(9));
        assert_eq!(
            plan.delay(),
            Some((Duration::from_millis(1), Duration::from_millis(2)))
        );
        assert_eq!(plan.drop_per_mille(), 7);
        assert_eq!(
            plan.partition(),
            Some((vec![1, 3], 5, Duration::from_millis(9)))
        );
    }
}
