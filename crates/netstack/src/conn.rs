//! Per-peer outbound connections: a queue, a dialing thread, and
//! reconnect-with-backoff.
//!
//! Each node runs one sender thread per remote peer. The thread owns the
//! link's FIFO queue and the TCP connection to the peer's listener; the
//! node's event loop only ever enqueues. A connection failure is invisible
//! to the protocol: the thread redials with exponential backoff (reset on
//! success) and retransmits its backlog.
//!
//! Reliability is **ack-gated**. A successful `write` only proves the
//! bytes reached the local kernel buffer — a connection that dies
//! afterwards can still lose them — so a frame is retired only when the
//! receiver's cumulative [`Frame::Ack`] covers its sequence number.
//! Until then it stays in the unacked backlog, and after every reconnect
//! the whole backlog is retransmitted in order. The receiver delivers
//! each sequence number exactly once (duplicates are dropped, acked
//! again, and never re-delivered), so — sender never gives up, receiver
//! never double-delivers — the runtime presents a flaky TCP link to the
//! protocol as the paper's §2.1 reliable channel: arbitrary finite
//! delay, no loss, no duplication.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use obs::metrics::{Counter, Gauge, Histogram, Registry};
use simnet::{ProcessId, Wire};

use crate::frame::{write_frame, Frame, MAX_FRAME_LEN};

/// Initial redial backoff; doubles per consecutive failure.
const BACKOFF_INITIAL: Duration = Duration::from_millis(5);
/// Backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_millis(400);
/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);
/// Read timeout for draining acks off the (otherwise write-only) stream.
const ACK_POLL: Duration = Duration::from_millis(1);

/// One message queued on an outbound link.
#[derive(Debug)]
pub(crate) struct OutFrame {
    /// Per-link sequence number (assigned by the node at enqueue time).
    pub seq: u64,
    /// Earliest wall-clock instant the frame may leave (fault injection).
    pub not_before: Instant,
    /// The `Wire`-encoded protocol message.
    pub payload: Vec<u8>,
}

/// Per-link telemetry a sender thread records, as registry handles with
/// `{node, peer}` labels. Handles address cells get-or-created in the
/// node's [`Registry`] — a replacement sender built over the *same*
/// registry (a supervised restart) lands on the same cells, so long-run
/// totals survive the teardown of the thread that accumulated them.
#[derive(Debug)]
pub(crate) struct LinkStats {
    /// Frames written to the socket for the first time.
    pub frames_sent: Counter,
    /// Frames rewritten after a reconnect (the unacked backlog replay).
    pub retransmits: Counter,
    /// Times the connection had to be re-established after a failure.
    pub reconnects: Counter,
    /// Highest cumulative ack received: every seq below this was
    /// delivered by the peer and retired from the backlog.
    pub acked: Gauge,
    /// Frames currently queued and not yet acked (the backlog depth).
    pub queue_depth: Gauge,
    /// Payload bytes held in the unacked backlog.
    pub backlog_bytes: Gauge,
    /// First socket write → covering ack, per retired frame, in
    /// microseconds. Reconnect-and-replay time is included: the clock
    /// starts at the *first* write, so a frame that needed three redials
    /// reports the full round trip the protocol actually waited.
    pub ack_rtt_us: Histogram,
}

impl LinkStats {
    /// Registers (or re-attaches to) the link metrics for `me → peer`.
    pub fn new(registry: &Registry, me: ProcessId, peer: usize) -> Arc<LinkStats> {
        let node = me.index().to_string();
        let peer = peer.to_string();
        let labels: &[(&str, &str)] = &[("node", &node), ("peer", &peer)];
        Arc::new(LinkStats {
            frames_sent: registry.counter(
                "bt_frames_sent_total",
                "frames written to a peer socket for the first time",
                labels,
            ),
            retransmits: registry.counter(
                "bt_retransmits_total",
                "unacked frames rewritten after a reconnect",
                labels,
            ),
            reconnects: registry.counter(
                "bt_reconnects_total",
                "times an outbound link was re-established after a failure",
                labels,
            ),
            acked: registry.gauge(
                "bt_acked_seq",
                "highest cumulative ack received on the link (watermark)",
                labels,
            ),
            queue_depth: registry.gauge(
                "bt_send_queue_depth",
                "frames queued on the link and not yet acked",
                labels,
            ),
            backlog_bytes: registry.gauge(
                "bt_send_backlog_bytes",
                "payload bytes held in the link's unacked backlog",
                labels,
            ),
            ack_rtt_us: registry.histogram(
                "bt_ack_rtt_us",
                "first write to covering ack per frame (microseconds)",
                labels,
            ),
        })
    }
}

/// Spawns the sender thread for one peer, recording into `stats`; returns
/// the enqueue handle and the thread handle.
pub(crate) fn spawn_sender(
    me: ProcessId,
    peer_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<LinkStats>,
) -> (mpsc::Sender<OutFrame>, JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<OutFrame>();
    let handle = thread::Builder::new()
        .name(format!("netstack-send-{}-{peer_addr}", me.index()))
        .spawn(move || Sender::new(me, peer_addr, stats).run(&rx, &shutdown))
        .expect("spawning a sender thread");
    (tx, handle)
}

/// One live connection plus the high-water mark of what has been written
/// on *this* connection (reset on reconnect, which replays the backlog).
#[derive(Debug)]
struct Link {
    stream: TcpStream,
    written: Option<u64>,
}

/// The state of one outbound link's sender thread.
#[derive(Debug)]
struct Sender {
    me: ProcessId,
    peer_addr: SocketAddr,
    stats: Arc<LinkStats>,
    conn: Option<Link>,
    /// Frames written (or waiting to be written) but not yet acked, in
    /// sequence order. The front is the oldest unacked frame.
    unacked: VecDeque<OutFrame>,
    /// Bytes read off the stream that do not yet form a complete ack
    /// frame (a 1 ms read timeout can split one across reads).
    ack_buf: Vec<u8>,
    /// Highest seq ever written on any connection; writes at or below it
    /// count as retransmits.
    ever_written: Option<u64>,
    /// First-write instants of frames still awaiting their ack, for the
    /// round-trip histogram. Populated only when the histogram records.
    write_times: HashMap<u64, Instant>,
    /// Running payload-byte total of the unacked backlog.
    unacked_bytes: u64,
    backoff: Duration,
    next_dial: Instant,
    /// xorshift64 state for redial jitter, seeded per-link so senders
    /// that fail together do not redial in lockstep.
    jitter: u64,
}

/// The actual wait before a redial: at least half the nominal backoff is
/// honoured, the rest is uniform — so repeated failures still back off
/// exponentially, but a cluster of senders whose shared peer died does
/// not hammer its listener in synchronized waves when it comes back.
fn jittered(nominal: Duration, draw: u64) -> Duration {
    let half = nominal / 2;
    let span = u64::try_from(half.as_micros())
        .unwrap_or(u64::MAX)
        .saturating_add(1);
    half + Duration::from_micros(draw % span)
}

impl Sender {
    fn new(me: ProcessId, peer_addr: SocketAddr, stats: Arc<LinkStats>) -> Self {
        Sender {
            me,
            peer_addr,
            stats,
            conn: None,
            unacked: VecDeque::new(),
            ack_buf: Vec::new(),
            ever_written: None,
            write_times: HashMap::new(),
            unacked_bytes: 0,
            backoff: BACKOFF_INITIAL,
            next_dial: Instant::now(),
            jitter: 0x6a69_7474_6572u64 ^ ((me.index() as u64) << 20) ^ u64::from(peer_addr.port()),
        }
    }

    fn next_jitter(&mut self) -> u64 {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        self.jitter
    }

    fn run(mut self, rx: &mpsc::Receiver<OutFrame>, shutdown: &AtomicBool) {
        loop {
            match rx.recv_timeout(POLL) {
                Ok(out) => {
                    // Honour the fault injector's delay. Per-link FIFO is
                    // preserved: later frames on this link wait behind this
                    // one, like a slow link.
                    loop {
                        let now = Instant::now();
                        if now >= out.not_before {
                            break;
                        }
                        if shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        thread::sleep((out.not_before - now).min(POLL));
                    }
                    self.unacked_bytes += out.payload.len() as u64;
                    self.unacked.push_back(out);
                    self.stats.queue_depth.set(self.unacked.len() as u64);
                    self.stats.backlog_bytes.set(self.unacked_bytes);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
                // The node dropped the queue: shutdown, exit.
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
            self.pump();
        }
    }

    /// One maintenance pass: (re)dial if the backlog needs a connection,
    /// write everything not yet on this connection, drain acks. Never
    /// blocks longer than a dial attempt plus [`ACK_POLL`].
    fn pump(&mut self) {
        if self.conn.is_none() {
            if self.unacked.is_empty() || Instant::now() < self.next_dial {
                return; // nothing to send, or still backing off
            }
            match dial(self.me, self.peer_addr) {
                Ok(stream) => {
                    self.conn = Some(Link {
                        stream,
                        written: None, // replay the whole backlog
                    });
                    self.backoff = BACKOFF_INITIAL;
                    self.ack_buf.clear();
                }
                Err(_) => {
                    let draw = self.next_jitter();
                    self.next_dial = Instant::now() + jittered(self.backoff, draw);
                    self.backoff = (self.backoff * 2).min(BACKOFF_MAX);
                    return;
                }
            }
        }
        if self.flush().is_err() || self.drain_acks().is_err() {
            // The connection died; the unflushed and unacked frames are
            // all still in the backlog and will replay on reconnect.
            self.stats.reconnects.inc();
            self.conn = None;
            self.next_dial = Instant::now();
        }
    }

    /// Writes every backlog frame not yet written on this connection.
    fn flush(&mut self) -> io::Result<()> {
        let link = self.conn.as_mut().expect("flush requires a connection");
        for f in &self.unacked {
            if link.written.is_some_and(|w| f.seq <= w) {
                continue;
            }
            write_frame(
                &mut link.stream,
                &Frame::Msg {
                    seq: f.seq,
                    payload: f.payload.clone(),
                },
            )?;
            link.written = Some(f.seq);
            if self.ever_written.is_some_and(|w| f.seq <= w) {
                self.stats.retransmits.inc();
            } else {
                self.ever_written = Some(f.seq);
                self.stats.frames_sent.inc();
                if self.stats.ack_rtt_us.enabled() {
                    self.write_times.insert(f.seq, Instant::now());
                }
            }
        }
        Ok(())
    }

    /// Reads whatever ack bytes are available (waiting at most
    /// [`ACK_POLL`]) and retires every frame a cumulative ack covers.
    fn drain_acks(&mut self) -> io::Result<()> {
        let link = self.conn.as_mut().expect("drain requires a connection");
        let mut buf = [0u8; 512];
        match link.stream.read(&mut buf) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(k) => self.ack_buf.extend_from_slice(&buf[..k]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
        // Parse complete frames out of the accumulation buffer; a partial
        // frame at the tail stays for the next drain.
        let mut consumed = 0;
        while self.ack_buf.len() - consumed >= 4 {
            let len_bytes: [u8; 4] = self.ack_buf[consumed..consumed + 4]
                .try_into()
                .expect("4-byte slice");
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len > MAX_FRAME_LEN {
                return Err(io::ErrorKind::InvalidData.into());
            }
            if self.ack_buf.len() - consumed - 4 < len {
                break;
            }
            let body = &self.ack_buf[consumed + 4..consumed + 4 + len];
            consumed += 4 + len;
            let Ok(frame) = Frame::from_bytes(body) else {
                return Err(io::ErrorKind::InvalidData.into());
            };
            if let Frame::Ack { next } = frame {
                while self.unacked.front().is_some_and(|f| f.seq < next) {
                    let f = self.unacked.pop_front().expect("front was Some");
                    self.unacked_bytes -= f.payload.len() as u64;
                    if let Some(t) = self.write_times.remove(&f.seq) {
                        self.stats.ack_rtt_us.record_us(t.elapsed());
                    }
                }
                self.stats.acked.set_max(next);
                self.stats.queue_depth.set(self.unacked.len() as u64);
                self.stats.backlog_bytes.set(self.unacked_bytes);
            }
            // Anything else coming back on an outbound connection is
            // ignored; the peer's reader only ever writes acks.
        }
        self.ack_buf.drain(..consumed);
        Ok(())
    }
}

/// Dials the peer, performs the hello handshake, and arms the short read
/// timeout used to drain acks without blocking the write path.
fn dial(me: ProcessId, peer_addr: SocketAddr) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(peer_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ACK_POLL))?;
    write_frame(&mut stream, &Frame::Hello { from: me })?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use std::net::TcpListener;

    use crate::frame::read_frame;

    use super::*;

    fn read_msg(conn: &mut TcpStream) -> (u64, Vec<u8>) {
        match read_frame(conn).unwrap() {
            Frame::Msg { seq, payload } => (seq, payload),
            other => panic!("expected a Msg frame, got {other:?}"),
        }
    }

    fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !done() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn jittered_backoff_stays_within_half_to_full_nominal() {
        for nominal in [BACKOFF_INITIAL, Duration::from_millis(80), BACKOFF_MAX] {
            for draw in [0u64, 1, 7, 12_345, u64::MAX - 1, u64::MAX] {
                let wait = jittered(nominal, draw);
                assert!(wait >= nominal / 2, "{wait:?} under half of {nominal:?}");
                assert!(wait <= nominal, "{wait:?} over nominal {nominal:?}");
            }
        }
        // Different draws actually spread the waits (the point of jitter).
        let spread: std::collections::HashSet<_> = (0..32u64)
            .map(|d| jittered(Duration::from_millis(400), d * 7919).as_micros())
            .collect();
        assert!(spread.len() > 16, "jitter barely varies: {spread:?}");
    }

    #[test]
    fn sender_retransmits_unacked_backlog_across_reconnects() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Registry::new();
        let stats = LinkStats::new(&registry, ProcessId::new(0), 1);
        let (tx, handle) = spawn_sender(
            ProcessId::new(0),
            addr,
            Arc::clone(&shutdown),
            Arc::clone(&stats),
        );

        for seq in 0..2 {
            tx.send(OutFrame {
                seq,
                not_before: Instant::now(),
                payload: vec![seq as u8],
            })
            .unwrap();
        }

        // First connection: hello + both frames arrive. No acks are sent,
        // so nothing is retired.
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        assert_eq!(read_msg(&mut conn).0, 0);
        assert_eq!(read_msg(&mut conn).0, 1);

        // Kill the connection. The sender notices (its ack drain hits EOF
        // or a write fails), redials, and — because no ack ever covered
        // them — must replay BOTH frames in order, not just the one that
        // errored mid-write.
        drop(conn);
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        assert_eq!(read_msg(&mut conn).0, 0, "unacked backlog replays from 0");
        assert_eq!(read_msg(&mut conn).0, 1);
        assert!(stats.reconnects.get() >= 1);
        assert!(stats.retransmits.get() >= 2);

        shutdown.store(true, Ordering::Relaxed);
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn acked_frames_are_retired_not_retransmitted() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Registry::new();
        let stats = LinkStats::new(&registry, ProcessId::new(0), 1);
        let (tx, handle) = spawn_sender(
            ProcessId::new(0),
            addr,
            Arc::clone(&shutdown),
            Arc::clone(&stats),
        );

        for seq in 0..3 {
            tx.send(OutFrame {
                seq,
                not_before: Instant::now(),
                payload: vec![seq as u8],
            })
            .unwrap();
        }

        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        for want in 0..3 {
            assert_eq!(read_msg(&mut conn).0, want);
        }

        // Ack frames 0 and 1; wait until the sender has processed it.
        write_frame(&mut conn, &Frame::Ack { next: 2 }).unwrap();
        wait_until("ack watermark to reach 2", || stats.acked.get() >= 2);

        // Reconnect: only the unacked frame 2 replays.
        drop(conn);
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        assert_eq!(read_msg(&mut conn).0, 2, "acked frames must not replay");
        assert_eq!(stats.frames_sent.get(), 3);
        let rtt = stats.ack_rtt_us.snapshot();
        assert_eq!(rtt.count, 2, "both retired frames record a round trip");

        shutdown.store(true, Ordering::Relaxed);
        drop(tx);
        handle.join().unwrap();
    }
}
