//! Per-connection state machines for the event loop: outbound links with
//! ack-gated backlogs, inbound connections with incremental framing, and
//! the vectored-write plumbing both share.
//!
//! Nothing here owns a thread. Each node's single event thread (see
//! [`crate::node`]) drives these machines from poller readiness events:
//! the loop is the **single writer** for every socket it owns, so no
//! lock is ever taken on a connection, and a frame's bytes are written
//! by exactly one call site.
//!
//! Reliability is **ack-gated**, exactly as in the threaded runtime this
//! replaced. A successful `write` only proves the bytes reached the
//! local kernel buffer — a connection that dies afterwards can still
//! lose them — so a frame is retired from [`Link::backlog`] only when
//! the receiver's cumulative [`Frame::Ack`] covers its sequence number.
//! Until then it survives reconnects, and after every reconnect the
//! whole unacked backlog is retransmitted in order. The receiver
//! delivers each sequence number exactly once, so the runtime presents
//! a flaky TCP link to the protocol as the paper's §2.1 reliable
//! channel: arbitrary finite delay, no loss, no duplication.
//!
//! Writes are **coalesced**: frames are pre-encoded once into shared
//! [`Arc`] chunks (length prefix + body in one buffer) and queued; a
//! flush hands as many queued chunks as possible to one `writev` via
//! [`Write::write_vectored`], so a burst of protocol messages costs one
//! syscall per peer per tick instead of two per frame. A chunk retired
//! by an ack while still sitting in a connection's write queue simply
//! flushes as a duplicate the receiver drops — harmless, and cheaper
//! than surgically unqueueing partially-written bytes.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::metrics::{Counter, Gauge, Histogram, Registry};
use simnet::ProcessId;

use crate::frame::{drain_frames, encode_chunk, Frame};

/// Initial redial backoff; doubles per consecutive failure.
pub(crate) const BACKOFF_INITIAL: Duration = Duration::from_millis(5);
/// Backoff ceiling.
pub(crate) const BACKOFF_MAX: Duration = Duration::from_millis(400);
/// Most chunks handed to a single vectored write. Linux's `IOV_MAX` is
/// 1024; staying far below it keeps the slice array cheap to build.
const MAX_IOV: usize = 64;

/// Per-link telemetry, as registry handles with `{node, peer}` labels.
/// Handles address cells get-or-created in the node's [`Registry`] — a
/// replacement link built over the *same* registry (a supervised
/// restart) lands on the same cells, so long-run totals survive the
/// teardown of the incarnation that accumulated them.
#[derive(Debug)]
pub(crate) struct LinkStats {
    /// Frames written to the socket for the first time.
    pub frames_sent: Counter,
    /// Frames rewritten after a reconnect (the unacked backlog replay).
    pub retransmits: Counter,
    /// Times the connection had to be re-established after a failure.
    pub reconnects: Counter,
    /// Highest cumulative ack received: every seq below this was
    /// delivered by the peer and retired from the backlog.
    pub acked: Gauge,
    /// Frames currently queued and not yet acked (the backlog depth).
    pub queue_depth: Gauge,
    /// Payload bytes held in the unacked backlog.
    pub backlog_bytes: Gauge,
    /// First socket write → covering ack, per retired frame, in
    /// microseconds. Reconnect-and-replay time is included: the clock
    /// starts at the *first* write, so a frame that needed three redials
    /// reports the full round trip the protocol actually waited.
    pub ack_rtt_us: Histogram,
}

impl LinkStats {
    /// Registers (or re-attaches to) the link metrics for `me → peer`.
    pub fn new(registry: &Registry, me: ProcessId, peer: usize) -> Arc<LinkStats> {
        let node = me.index().to_string();
        let peer = peer.to_string();
        let labels: &[(&str, &str)] = &[("node", &node), ("peer", &peer)];
        Arc::new(LinkStats {
            frames_sent: registry.counter(
                "bt_frames_sent_total",
                "frames written to a peer socket for the first time",
                labels,
            ),
            retransmits: registry.counter(
                "bt_retransmits_total",
                "unacked frames rewritten after a reconnect",
                labels,
            ),
            reconnects: registry.counter(
                "bt_reconnects_total",
                "times an outbound link was re-established after a failure",
                labels,
            ),
            acked: registry.gauge(
                "bt_acked_seq",
                "highest cumulative ack received on the link (watermark)",
                labels,
            ),
            queue_depth: registry.gauge(
                "bt_send_queue_depth",
                "frames queued on the link and not yet acked",
                labels,
            ),
            backlog_bytes: registry.gauge(
                "bt_send_backlog_bytes",
                "payload bytes held in the link's unacked backlog",
                labels,
            ),
            ack_rtt_us: registry.histogram(
                "bt_ack_rtt_us",
                "first write to covering ack per frame (microseconds)",
                labels,
            ),
        })
    }
}

/// Event-loop I/O telemetry for one node, labelled `{node}`: the series
/// the thread-per-connection → poll-loop rewrite is judged on.
#[derive(Clone, Debug)]
pub(crate) struct LoopStats {
    /// Event-loop iterations (one poller wait each).
    pub loop_ticks: Counter,
    /// Readiness events the poller delivered to the loop.
    pub poll_wakeups: Counter,
    /// `read(2)`-family syscalls issued by the loop.
    pub read_syscalls: Counter,
    /// `write(2)`/`writev(2)` syscalls issued by the loop.
    pub write_syscalls: Counter,
    /// Frames offered to a single vectored write (the coalescing win:
    /// the threaded runtime spent two write syscalls per frame).
    pub frames_per_writev: Histogram,
}

impl LoopStats {
    pub fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        let labels: &[(&str, &str)] = &[("node", &node)];
        LoopStats {
            loop_ticks: registry.counter(
                "bt_loop_ticks_total",
                "event-loop iterations (one poller wait each)",
                labels,
            ),
            poll_wakeups: registry.counter(
                "bt_poll_wakeups_total",
                "readiness events delivered by the poller",
                labels,
            ),
            read_syscalls: registry.counter(
                "bt_read_syscalls_total",
                "read-family syscalls issued by the event loop",
                labels,
            ),
            write_syscalls: registry.counter(
                "bt_write_syscalls_total",
                "write/writev syscalls issued by the event loop",
                labels,
            ),
            frames_per_writev: registry.histogram(
                "bt_frames_per_writev",
                "frames offered to one vectored write",
                labels,
            ),
        }
    }
}

/// The actual wait before a redial: at least half the nominal backoff is
/// honoured, the rest is uniform — so repeated failures still back off
/// exponentially, but a cluster of links whose shared peer died does
/// not hammer its listener in synchronized waves when it comes back.
pub(crate) fn jittered(nominal: Duration, draw: u64) -> Duration {
    let half = nominal / 2;
    let span = u64::try_from(half.as_micros())
        .unwrap_or(u64::MAX)
        .saturating_add(1);
    half + Duration::from_micros(draw % span)
}

/// A queued wire chunk: owned bytes, or shared bytes out of a backlog.
trait Chunk {
    fn bytes(&self) -> &[u8];
}

impl Chunk for Vec<u8> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

impl Chunk for Arc<Vec<u8>> {
    fn bytes(&self) -> &[u8] {
        self
    }
}

/// Flushes a queue of byte chunks through one socket with vectored
/// writes, resuming mid-chunk at `*off`. Returns `true` if the socket
/// blocked (bytes remain queued), `false` if the queue drained.
///
/// # Errors
///
/// Propagates write errors; `WriteZero` if the peer stopped accepting.
fn flush_chunks<B: Chunk>(
    stream: &mut TcpStream,
    wq: &mut VecDeque<B>,
    off: &mut usize,
    stats: &LoopStats,
) -> io::Result<bool> {
    while !wq.is_empty() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(wq.len().min(MAX_IOV));
        for (i, chunk) in wq.iter().take(MAX_IOV).enumerate() {
            let bytes = chunk.bytes();
            slices.push(IoSlice::new(if i == 0 { &bytes[*off..] } else { bytes }));
        }
        match stream.write_vectored(&slices) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(mut wrote) => {
                stats.write_syscalls.inc();
                stats.frames_per_writev.record(slices.len() as u64);
                while wrote > 0 {
                    let front_left = wq.front().expect("bytes imply a front").bytes().len() - *off;
                    if wrote >= front_left {
                        wrote -= front_left;
                        *off = 0;
                        wq.pop_front();
                    } else {
                        *off += wrote;
                        wrote = 0;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

/// Reads everything currently available on a nonblocking socket into an
/// accumulation buffer. Returns `true` on orderly EOF.
///
/// # Errors
///
/// Propagates read errors (connection reset and friends).
fn drain_readable(
    stream: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    stats: &LoopStats,
) -> io::Result<bool> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(true),
            Ok(k) => {
                stats.read_syscalls.inc();
                rbuf.extend_from_slice(&buf[..k]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// One message queued on an outbound link, pre-encoded to wire bytes.
#[derive(Debug)]
pub(crate) struct QueuedFrame {
    /// Per-link sequence number (assigned by the node at enqueue time).
    pub seq: u64,
    /// Earliest wall-clock instant the frame may leave (fault injection).
    /// Later frames on the link wait behind it, like a slow link.
    pub not_before: Instant,
    /// Payload byte count (for the backlog-bytes gauge).
    pub payload_len: usize,
    /// The full wire chunk: length prefix + encoded [`Frame::Msg`].
    pub chunk: Arc<Vec<u8>>,
}

/// One live outbound connection: dialing or established, with its write
/// queue and ack read buffer. Dropped wholesale on any failure — the
/// durable state lives in [`Link`].
#[derive(Debug)]
pub(crate) struct OutConn {
    pub stream: TcpStream,
    /// This connection's poller token (stable per peer).
    pub token: u64,
    /// Still waiting for the nonblocking connect to resolve.
    pub connecting: bool,
    /// Highest backlog seq handed to this connection's write queue;
    /// `None` right after (re)connecting, which is what makes the whole
    /// backlog eligible for replay.
    pub written: Option<u64>,
    /// Wire chunks accepted for this connection but not yet fully
    /// written; front chunk is `wq_off` bytes in.
    wq: VecDeque<Arc<Vec<u8>>>,
    wq_off: usize,
    /// A write returned `WouldBlock`: wait for a writable event before
    /// flushing again.
    pub write_blocked: bool,
    /// Bytes read off the socket that do not yet form a complete frame.
    rbuf: Vec<u8>,
}

/// The durable per-peer outbound state: the ack-gated backlog plus
/// redial bookkeeping. Lives exactly as long as the node, across any
/// number of connections.
#[derive(Debug)]
pub(crate) struct Link {
    pub peer_addr: SocketAddr,
    pub stats: Arc<LinkStats>,
    /// The pre-encoded `Hello` chunk opening every connection.
    hello: Arc<Vec<u8>>,
    /// Frames written (or waiting to be written) but not yet acked, in
    /// sequence order. The front is the oldest unacked frame.
    backlog: VecDeque<QueuedFrame>,
    /// Running payload-byte total of the backlog.
    unacked_bytes: u64,
    /// Highest seq ever written on any connection; writes at or below it
    /// count as retransmits.
    ever_written: Option<u64>,
    /// First-write instants of frames still awaiting their ack, for the
    /// round-trip histogram. Populated only when the histogram records.
    write_times: HashMap<u64, Instant>,
    /// Control chunks (state-transfer probes) awaiting a connection.
    /// Unlike the backlog these are neither sequenced nor ack-gated:
    /// they are written once on the next live connection and dropped —
    /// the sender re-probes on a timer, so a lost probe heals itself.
    control: Vec<Arc<Vec<u8>>>,
    pub conn: Option<OutConn>,
    backoff: Duration,
    pub next_dial: Instant,
    /// xorshift64 state for redial jitter, seeded per-link so links
    /// that fail together do not redial in lockstep.
    jitter: u64,
}

impl Link {
    pub fn new(me: ProcessId, peer: usize, peer_addr: SocketAddr, registry: &Registry) -> Link {
        Link {
            peer_addr,
            stats: LinkStats::new(registry, me, peer),
            hello: Arc::new(encode_chunk(&Frame::Hello { from: me })),
            backlog: VecDeque::new(),
            unacked_bytes: 0,
            ever_written: None,
            write_times: HashMap::new(),
            control: Vec::new(),
            conn: None,
            backoff: BACKOFF_INITIAL,
            next_dial: Instant::now(),
            jitter: 0x6a69_7474_6572u64 ^ ((me.index() as u64) << 20) ^ u64::from(peer_addr.port()),
        }
    }

    fn next_jitter(&mut self) -> u64 {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        self.jitter
    }

    /// True when the link has something a connection could transmit.
    pub fn wants_conn(&self) -> bool {
        self.conn.is_none() && (!self.backlog.is_empty() || !self.control.is_empty())
    }

    /// Queues one frame on the ack-gated backlog.
    pub fn enqueue(&mut self, frame: QueuedFrame) {
        self.unacked_bytes += frame.payload_len as u64;
        self.backlog.push_back(frame);
        self.stats.queue_depth.set(self.backlog.len() as u64);
        self.stats.backlog_bytes.set(self.unacked_bytes);
    }

    /// Queues one fire-and-forget control chunk (see [`Link::control`]):
    /// written ahead of the backlog on the next pump, never replayed.
    pub fn enqueue_control(&mut self, chunk: Arc<Vec<u8>>) {
        self.control.push(chunk);
    }

    /// Drops control chunks not yet handed to a connection — the probe
    /// path calls this before each re-probe so a dead link does not
    /// accumulate an unbounded pile of identical requests.
    pub fn clear_control(&mut self) {
        self.control.clear();
    }

    /// Adopts a freshly dialed connection (possibly still connecting):
    /// the handshake chunk is queued and the whole backlog becomes
    /// eligible for (re)play.
    pub fn adopt(&mut self, stream: TcpStream, token: u64, connecting: bool) {
        let mut wq = VecDeque::new();
        wq.push_back(Arc::clone(&self.hello));
        self.conn = Some(OutConn {
            stream,
            token,
            connecting,
            written: None,
            wq,
            wq_off: 0,
            write_blocked: false,
            rbuf: Vec::new(),
        });
    }

    /// Resets the redial backoff — called when a connect actually
    /// completes (not when an in-flight dial is merely adopted, so a
    /// dead peer still sees exponential backoff between attempts).
    pub fn dial_succeeded(&mut self) {
        self.backoff = BACKOFF_INITIAL;
    }

    /// Tears down the connection after a failure. `established` marks a
    /// connection that had completed its dial — those count as
    /// reconnects and redial immediately; a failed dial backs off
    /// (jittered, exponential) instead.
    pub fn conn_failed(&mut self, established: bool) {
        self.conn = None;
        if established {
            self.stats.reconnects.inc();
            self.next_dial = Instant::now();
        } else {
            let draw = self.next_jitter();
            self.next_dial = Instant::now() + jittered(self.backoff, draw);
            self.backoff = (self.backoff * 2).min(BACKOFF_MAX);
        }
    }

    /// Moves every transmittable backlog frame onto the connection's
    /// write queue and flushes with vectored writes. Transmittable means
    /// past the connection's written watermark and released by the fault
    /// injector's delay — a delayed frame holds later frames back (FIFO).
    ///
    /// # Errors
    ///
    /// Propagates socket errors: the caller tears the connection down
    /// (the backlog keeps every unacked frame for the replay).
    pub fn pump(&mut self, now: Instant, stats: &LoopStats) -> io::Result<()> {
        let Some(conn) = &mut self.conn else {
            return Ok(());
        };
        if conn.connecting {
            return Ok(());
        }
        // Control chunks jump the queue: they are not sequenced, so
        // ordering them against protocol frames is meaningless, and a
        // state-transfer probe should not wait behind a delayed backlog.
        for chunk in self.control.drain(..) {
            conn.wq.push_back(chunk);
        }
        for f in &self.backlog {
            if conn.written.is_some_and(|w| f.seq <= w) {
                continue;
            }
            if f.not_before > now {
                break;
            }
            conn.wq.push_back(Arc::clone(&f.chunk));
            conn.written = Some(f.seq);
            if self.ever_written.is_some_and(|w| f.seq <= w) {
                self.stats.retransmits.inc();
            } else {
                self.ever_written = Some(f.seq);
                self.stats.frames_sent.inc();
                if self.stats.ack_rtt_us.enabled() {
                    self.write_times.insert(f.seq, now);
                }
            }
        }
        if conn.write_blocked {
            return Ok(()); // wait for the writable event
        }
        conn.write_blocked = flush_chunks(&mut conn.stream, &mut conn.wq, &mut conn.wq_off, stats)?;
        Ok(())
    }

    /// Handles a writable event: clears the block and flushes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors, as [`Link::pump`].
    pub fn on_writable(&mut self, now: Instant, stats: &LoopStats) -> io::Result<()> {
        if let Some(conn) = &mut self.conn {
            conn.write_blocked = false;
        }
        self.pump(now, stats)
    }

    /// Handles a readable event on the outbound connection: drains the
    /// socket, parses frames, retires backlog frames covered by acks.
    /// Non-ack frames (a peer answering a state-transfer probe with
    /// [`Frame::StateChunk`]) are pushed to `out` for the caller.
    ///
    /// # Errors
    ///
    /// Socket errors, EOF (`UnexpectedEof`), and unparseable bytes
    /// (`InvalidData`) — in every case the caller tears down.
    pub fn on_readable(&mut self, stats: &LoopStats, out: &mut Vec<Frame>) -> io::Result<()> {
        let Some(conn) = &mut self.conn else {
            return Ok(());
        };
        let eof = drain_readable(&mut conn.stream, &mut conn.rbuf, stats)?;
        let mut frames = Vec::new();
        drain_frames(&mut conn.rbuf, &mut frames)?;
        for frame in frames {
            if let Frame::Ack { next } = frame {
                self.on_ack(next);
            } else {
                out.push(frame);
            }
        }
        if eof {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        Ok(())
    }

    /// Retires every backlog frame a cumulative ack covers.
    pub fn on_ack(&mut self, next: u64) {
        while self.backlog.front().is_some_and(|f| f.seq < next) {
            let f = self.backlog.pop_front().expect("front was Some");
            self.unacked_bytes -= f.payload_len as u64;
            if let Some(t) = self.write_times.remove(&f.seq) {
                self.stats.ack_rtt_us.record_us(t.elapsed());
            }
        }
        self.stats.acked.set_max(next);
        self.stats.queue_depth.set(self.backlog.len() as u64);
        self.stats.backlog_bytes.set(self.unacked_bytes);
    }

    /// The earliest instant this link needs attention without any
    /// readiness event: its redial time, or the release of a delayed
    /// frame at the transmit head. `None` when only readiness matters.
    pub fn next_deadline(&self, now: Instant) -> Option<Instant> {
        if self.conn.is_none() {
            return self.wants_conn().then_some(self.next_dial);
        }
        let conn = self.conn.as_ref().expect("checked above");
        if conn.connecting {
            return None;
        }
        for f in &self.backlog {
            if conn.written.is_some_and(|w| f.seq <= w) {
                continue;
            }
            if f.not_before > now {
                return Some(f.not_before);
            }
            // An undelayed untransmitted frame means pump() should run
            // now; report it as an immediate deadline.
            return Some(now);
        }
        None
    }
}

/// One accepted inbound connection: handshake, incremental read
/// framing, and the (rarely blocking) ack write queue.
#[derive(Debug)]
pub(crate) struct InConn {
    pub stream: TcpStream,
    /// The peer that said Hello; `None` until the handshake frame.
    pub peer: Option<ProcessId>,
    rbuf: Vec<u8>,
    /// Encoded ack frames not yet fully written.
    wq: VecDeque<Vec<u8>>,
    wq_off: usize,
    pub write_blocked: bool,
}

impl InConn {
    pub fn new(stream: TcpStream) -> InConn {
        InConn {
            stream,
            peer: None,
            rbuf: Vec::new(),
            wq: VecDeque::new(),
            wq_off: 0,
            write_blocked: false,
        }
    }

    /// Drains the socket and parses complete frames into `out`.
    /// Returns `true` on orderly EOF (process `out`, then tear down).
    ///
    /// # Errors
    ///
    /// Socket errors and unparseable bytes; the caller tears down.
    pub fn read_frames(&mut self, out: &mut Vec<Frame>, stats: &LoopStats) -> io::Result<bool> {
        let eof = drain_readable(&mut self.stream, &mut self.rbuf, stats)?;
        drain_frames(&mut self.rbuf, out)?;
        Ok(eof)
    }

    /// Queues a cumulative ack for the peer; flushed by
    /// [`InConn::flush`] at the end of the event batch.
    pub fn queue_ack(&mut self, next: u64) {
        self.queue_frame(&Frame::Ack { next });
    }

    /// Queues an arbitrary frame for the peer — the reply path for
    /// state-transfer chunks, which travel on the connection the
    /// request arrived on. Flushed with the acks.
    pub fn queue_frame(&mut self, frame: &Frame) {
        self.wq.push_back(encode_chunk(frame));
    }

    /// Flushes queued acks (vectored, one syscall for a whole batch).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; the caller tears down.
    pub fn flush(&mut self, stats: &LoopStats) -> io::Result<()> {
        if self.write_blocked {
            return Ok(());
        }
        self.write_blocked = flush_chunks(&mut self.stream, &mut self.wq, &mut self.wq_off, stats)?;
        Ok(())
    }

    /// Handles a writable event: clears the block and flushes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; the caller tears down.
    pub fn on_writable(&mut self, stats: &LoopStats) -> io::Result<()> {
        self.write_blocked = false;
        self.flush(stats)
    }
}

#[cfg(test)]
mod tests {
    use std::net::TcpListener;

    use crate::frame::read_frame;

    use super::*;

    fn test_stats() -> LoopStats {
        LoopStats::new(&Registry::new(), ProcessId::new(0))
    }

    fn msg_chunk(seq: u64, payload: Vec<u8>) -> QueuedFrame {
        QueuedFrame {
            seq,
            not_before: Instant::now(),
            payload_len: payload.len(),
            chunk: Arc::new(encode_chunk(&Frame::Msg { seq, payload })),
        }
    }

    #[test]
    fn jittered_backoff_stays_within_half_to_full_nominal() {
        for nominal in [BACKOFF_INITIAL, Duration::from_millis(80), BACKOFF_MAX] {
            for draw in [0u64, 1, 7, 12_345, u64::MAX - 1, u64::MAX] {
                let wait = jittered(nominal, draw);
                assert!(wait >= nominal / 2, "{wait:?} under half of {nominal:?}");
                assert!(wait <= nominal, "{wait:?} over nominal {nominal:?}");
            }
        }
        // Different draws actually spread the waits (the point of jitter).
        let spread: std::collections::HashSet<_> = (0..32u64)
            .map(|d| jittered(Duration::from_millis(400), d * 7919).as_micros())
            .collect();
        assert!(spread.len() > 16, "jitter barely varies: {spread:?}");
    }

    #[test]
    fn link_replays_unacked_backlog_across_reconnects() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let stats = test_stats();
        let registry = Registry::new();
        let mut link = Link::new(ProcessId::new(0), 1, addr, &registry);
        for seq in 0..2 {
            link.enqueue(msg_chunk(seq, vec![seq as u8]));
        }

        // First connection: hello + both frames arrive in one writev.
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        link.pump(Instant::now(), &stats).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        for want in 0..2 {
            match read_frame(&mut conn).unwrap() {
                Frame::Msg { seq, .. } => assert_eq!(seq, want),
                other => panic!("expected Msg, got {other:?}"),
            }
        }
        assert_eq!(stats.write_syscalls.get(), 1, "one coalesced writev");

        // The peer dies without acking: both frames must replay, from 0.
        drop(conn);
        link.conn_failed(true);
        assert!(link.stats.reconnects.get() >= 1);
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        link.pump(Instant::now(), &stats).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        match read_frame(&mut conn).unwrap() {
            Frame::Msg { seq, .. } => assert_eq!(seq, 0, "unacked backlog replays from 0"),
            other => panic!("expected Msg, got {other:?}"),
        }
        assert_eq!(link.stats.retransmits.get(), 2);
    }

    #[test]
    fn acked_frames_are_retired_not_retransmitted() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let stats = test_stats();
        let registry = Registry::new();
        let mut link = Link::new(ProcessId::new(0), 1, addr, &registry);
        for seq in 0..3 {
            link.enqueue(msg_chunk(seq, vec![seq as u8]));
        }
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        link.pump(Instant::now(), &stats).unwrap();
        let (_conn, _) = listener.accept().unwrap();
        assert_eq!(link.stats.frames_sent.get(), 3);

        // A cumulative ack retires 0 and 1; a reconnect replays only 2.
        link.on_ack(2);
        assert_eq!(link.stats.acked.get(), 2);
        assert_eq!(link.stats.queue_depth.get(), 1);
        link.conn_failed(true);
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        link.pump(Instant::now(), &stats).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        match read_frame(&mut conn).unwrap() {
            Frame::Msg { seq, .. } => assert_eq!(seq, 2, "acked frames must not replay"),
            other => panic!("expected Msg, got {other:?}"),
        }
        assert_eq!(link.stats.frames_sent.get(), 3);
        let rtt = link.stats.ack_rtt_us.snapshot();
        assert_eq!(rtt.count, 2, "both retired frames record a round trip");
    }

    #[test]
    fn control_chunks_bypass_delay_and_never_replay() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let stats = test_stats();
        let registry = Registry::new();
        let mut link = Link::new(ProcessId::new(0), 1, addr, &registry);
        let now = Instant::now();
        // A far-future delayed head gates the whole backlog...
        link.enqueue(QueuedFrame {
            not_before: now + Duration::from_secs(60),
            ..msg_chunk(0, vec![0])
        });
        let probe = Frame::StateRequest {
            from: ProcessId::new(0),
        };
        link.enqueue_control(Arc::new(encode_chunk(&probe)));
        assert!(link.wants_conn(), "pending control alone justifies a dial");
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        link.pump(now, &stats).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        // ...but the control chunk leaves anyway.
        assert_eq!(read_frame(&mut conn).unwrap(), probe);

        // A reconnect replays the backlog machinery only: the control
        // chunk was fire-and-forget and must not reappear.
        drop(conn);
        link.conn_failed(true);
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        link.pump(now, &stats).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        conn.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        assert!(
            read_frame(&mut conn).is_err(),
            "control chunk must not replay"
        );

        // Cleared control chunks never leave at all.
        link.enqueue_control(Arc::new(encode_chunk(&probe)));
        link.clear_control();
        link.pump(now, &stats).unwrap();
        assert!(
            read_frame(&mut conn).is_err(),
            "cleared control chunk must not transmit"
        );
    }

    #[test]
    fn delayed_frame_holds_later_frames_back() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let stats = test_stats();
        let registry = Registry::new();
        let mut link = Link::new(ProcessId::new(0), 1, addr, &registry);
        let now = Instant::now();
        let release = now + Duration::from_millis(50);
        link.enqueue(QueuedFrame {
            not_before: release,
            ..msg_chunk(0, vec![0])
        });
        link.enqueue(msg_chunk(1, vec![1]));
        link.adopt(TcpStream::connect(addr).unwrap(), 1, false);
        let (_conn, _) = listener.accept().unwrap();

        // Before the release instant nothing but the hello may leave —
        // frame 1 is undelayed but FIFO holds it behind frame 0.
        link.pump(now, &stats).unwrap();
        assert_eq!(
            link.stats.frames_sent.get(),
            0,
            "delayed head gates the link"
        );
        assert_eq!(
            link.next_deadline(now),
            Some(release),
            "timer is the release"
        );

        link.pump(release, &stats).unwrap();
        assert_eq!(
            link.stats.frames_sent.get(),
            2,
            "both frames leave at release"
        );
    }
}
