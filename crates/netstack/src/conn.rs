//! Per-peer outbound connections: a queue, a dialing thread, and
//! reconnect-with-backoff.
//!
//! Each node runs one sender thread per remote peer. The thread owns the
//! link's FIFO queue and the TCP connection to the peer's listener; the
//! node's event loop only ever enqueues. A connection failure is invisible
//! to the protocol: the thread redials with exponential backoff (reset on
//! success) and retransmits the frame that was in flight, so — together
//! with the receiver-side sequence-number dedup — every enqueued message
//! is eventually delivered exactly once. That discipline is what lets the
//! runtime present a flaky TCP link to the protocol as the paper's §2.1
//! reliable channel: arbitrary finite delay, no loss, no duplication.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use simnet::ProcessId;

use crate::frame::{write_frame, Frame};

/// Initial redial backoff; doubles per consecutive failure.
const BACKOFF_INITIAL: Duration = Duration::from_millis(5);
/// Backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_millis(400);
/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// One message queued on an outbound link.
#[derive(Debug)]
pub(crate) struct OutFrame {
    /// Per-link sequence number (assigned by the node at enqueue time).
    pub seq: u64,
    /// Earliest wall-clock instant the frame may leave (fault injection).
    pub not_before: Instant,
    /// The `Wire`-encoded protocol message.
    pub payload: Vec<u8>,
}

/// Counters a sender thread exposes to the node.
#[derive(Debug, Default)]
pub(crate) struct LinkStats {
    /// Frames successfully written to the socket (first attempts only).
    pub frames_sent: AtomicU64,
    /// Times the connection had to be (re)established after a failure.
    pub reconnects: AtomicU64,
}

/// Spawns the sender thread for one peer; returns the enqueue handle, the
/// link counters, and the thread handle.
pub(crate) fn spawn_sender(
    me: ProcessId,
    peer_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
) -> (mpsc::Sender<OutFrame>, Arc<LinkStats>, JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<OutFrame>();
    let stats = Arc::new(LinkStats::default());
    let thread_stats = Arc::clone(&stats);
    let handle = thread::Builder::new()
        .name(format!("netstack-send-{}-{peer_addr}", me.index()))
        .spawn(move || sender_loop(me, peer_addr, &rx, &shutdown, &thread_stats))
        .expect("spawning a sender thread");
    (tx, stats, handle)
}

fn sender_loop(
    me: ProcessId,
    peer_addr: SocketAddr,
    rx: &mpsc::Receiver<OutFrame>,
    shutdown: &AtomicBool,
    stats: &LinkStats,
) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = BACKOFF_INITIAL;
    'frames: loop {
        let out = match rx.recv_timeout(POLL) {
            Ok(out) => out,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            // The node dropped the queue: flush is done, exit.
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };

        // Honour the fault injector's delay. Per-link FIFO is preserved:
        // later frames on this link wait behind this one, like a slow link.
        loop {
            let now = Instant::now();
            if now >= out.not_before {
                break;
            }
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            thread::sleep((out.not_before - now).min(POLL));
        }

        let frame = Frame::Msg {
            seq: out.seq,
            payload: out.payload,
        };
        // Write with reconnect-retry until the frame is on the wire. A
        // half-written frame at the old connection is torn off by the
        // receiver's length-prefix framing; the retransmitted copy carries
        // the same seq, so the receiver's dedup keeps delivery exactly-once.
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return;
            }
            if stream.is_none() {
                match dial(me, peer_addr) {
                    Ok(s) => {
                        stream = Some(s);
                        backoff = BACKOFF_INITIAL;
                    }
                    Err(_) => {
                        thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_MAX);
                        continue;
                    }
                }
            }
            let s = stream.as_mut().expect("stream just ensured");
            match write_frame(s, &frame) {
                Ok(()) => {
                    stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                    continue 'frames;
                }
                Err(_) => {
                    stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    stream = None;
                }
            }
        }
    }
}

/// Dials the peer and performs the hello handshake.
fn dial(me: ProcessId, peer_addr: SocketAddr) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(peer_addr)?;
    stream.set_nodelay(true)?;
    write_frame(&mut stream, &Frame::Hello { from: me })?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use std::net::TcpListener;

    use super::*;
    use crate::frame::read_frame;

    #[test]
    fn sender_delivers_across_a_listener_restart() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, stats, handle) = spawn_sender(ProcessId::new(0), addr, Arc::clone(&shutdown));

        tx.send(OutFrame {
            seq: 0,
            not_before: Instant::now(),
            payload: vec![1],
        })
        .unwrap();

        // First connection: hello + frame 0 arrive.
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        assert!(matches!(
            read_frame(&mut conn).unwrap(),
            Frame::Msg { seq: 0, .. }
        ));

        // Kill the connection. Writes into the dead socket may keep
        // "succeeding" until the RST lands, so enqueue frames until the
        // sender notices and redials.
        drop(conn);
        listener.set_nonblocking(true).unwrap();
        let mut seq = 1;
        let mut conn = loop {
            match listener.accept() {
                Ok((c, _)) => break c,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    tx.send(OutFrame {
                        seq,
                        not_before: Instant::now(),
                        payload: vec![2],
                    })
                    .unwrap();
                    seq += 1;
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("accept failed: {e}"),
            }
        };
        conn.set_nonblocking(false).unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap(),
            Frame::Hello {
                from: ProcessId::new(0)
            }
        );
        let got = read_frame(&mut conn).unwrap();
        assert!(
            matches!(got, Frame::Msg { seq, .. } if seq >= 1),
            "redialed connection carries a queued frame, got {got:?}"
        );
        assert!(stats.frames_sent.load(Ordering::Relaxed) >= 2);

        shutdown.store(true, Ordering::Relaxed);
        drop(tx);
        handle.join().unwrap();
    }
}
