//! Readiness polling over raw syscalls: epoll on Linux, `poll(2)`
//! elsewhere (or when forced) — the repo stays zero-dependency, so the
//! two backends are declared here as `extern "C"` bindings against the
//! libc every Rust program already links.
//!
//! The [`Poller`] is the only place in the crate allowed to use `unsafe`
//! (the crate root carries `#![deny(unsafe_code)]`, relaxed for this
//! module alone). The surface is deliberately tiny: register a socket
//! under a `u64` token, optionally flag write interest, wait, and read
//! back `(token, readable, writable)` events.
//!
//! # Readiness model
//!
//! * **epoll** registers every fd once with `EPOLLIN | EPOLLOUT |
//!   EPOLLRDHUP | EPOLLET` — edge-triggered, so the kernel wakes the loop
//!   only on readiness *transitions* and the event loop must drain each
//!   direction until `WouldBlock`. Write interest is implicit: the loop
//!   ignores writable edges unless a previous write actually blocked, so
//!   no `EPOLL_CTL_MOD` churn is ever needed.
//! * **poll(2)** is level-triggered and stateless per call; the backend
//!   keeps the registered set in user space, rebuilds the `pollfd` array
//!   on every wait, and honours [`Poller::set_write_interest`] to avoid
//!   busy-waking on always-writable sockets.
//!
//! Setting `BT_NETSTACK_POLL=1` forces the `poll(2)` backend on Linux —
//! how the portable path stays tested on the platform that would never
//! otherwise take it.
//!
//! Error and hangup conditions are folded into `readable`/`writable`: a
//! dead socket reports ready, the subsequent read/write surfaces the
//! actual error, and the connection state machine tears down. This keeps
//! the caller's loop free of a third event kind.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_ulong};
use std::time::Duration;

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (data, EOF, or an error to collect via read).
    pub readable: bool,
    /// The fd is writable (or a pending connect/any error resolved).
    pub writable: bool,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const SockAddrIn, len: c_uint) -> c_int;
    fn close(fd: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use super::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    /// `struct epoll_event`. The kernel packs it on x86 so the 64-bit
    /// data field sits at offset 4; other architectures use natural
    /// alignment.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

/// A registered fd in the `poll(2)` backend's user-space set.
#[derive(Clone, Copy, Debug)]
struct Registered {
    fd: RawFd,
    token: u64,
    want_write: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        /// Reused event buffer for `epoll_wait`.
        buf: Vec<epoll_sys::EpollEvent>,
    },
    Poll {
        set: Vec<Registered>,
    },
}

/// The event loop's readiness source. See the module docs for the model.
pub(crate) struct Poller {
    backend: Backend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend_name())
            .finish()
    }
}

/// Converts a timeout to poll/epoll milliseconds, rounding up so a
/// sub-millisecond timer never degenerates into a busy spin.
fn as_millis(timeout: Duration) -> c_int {
    let ms = timeout.as_micros().div_ceil(1000);
    c_int::try_from(ms).unwrap_or(c_int::MAX)
}

impl Poller {
    /// Opens the best available backend: epoll on Linux (unless
    /// `BT_NETSTACK_POLL` is set), `poll(2)` otherwise.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var_os("BT_NETSTACK_POLL").is_none() {
                let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
                if epfd >= 0 {
                    return Ok(Poller {
                        backend: Backend::Epoll {
                            epfd,
                            buf: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; 256],
                        },
                    });
                }
                // epoll_create1 failing (container seccomp, exotic
                // kernel) falls through to the portable backend.
            }
        }
        Ok(Poller {
            backend: Backend::Poll { set: Vec::new() },
        })
    }

    /// Which backend this poller runs on: `"epoll"` or `"poll"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// Registers `fd` under `token`. epoll arms it edge-triggered for
    /// both directions once and for all; poll(2) starts read-only until
    /// [`Poller::set_write_interest`] says otherwise.
    pub fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = epoll_sys::EpollEvent {
                    events: epoll_sys::EPOLLIN
                        | epoll_sys::EPOLLOUT
                        | epoll_sys::EPOLLRDHUP
                        | epoll_sys::EPOLLET,
                    data: token,
                };
                let rc =
                    unsafe { epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_ADD, fd, &mut ev) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { set } => {
                set.push(Registered {
                    fd,
                    token,
                    want_write: false,
                });
                Ok(())
            }
        }
    }

    /// Declares whether `token` wants writable events. Meaningful only
    /// for the level-triggered poll(2) backend — an always-writable
    /// socket with standing `POLLOUT` interest would turn every wait
    /// into a spin. The edge-triggered epoll backend ignores it.
    pub fn set_write_interest(&mut self, token: u64, on: bool) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => {}
            Backend::Poll { set } => {
                if let Some(r) = set.iter_mut().find(|r| r.token == token) {
                    r.want_write = on;
                }
            }
        }
    }

    /// Removes `fd`/`token` from the set. Call *before* closing the fd.
    pub fn deregister(&mut self, fd: RawFd, token: u64) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = epoll_sys::EpollEvent { events: 0, data: 0 };
                unsafe {
                    epoll_sys::epoll_ctl(*epfd, epoll_sys::EPOLL_CTL_DEL, fd, &mut ev);
                }
            }
            Backend::Poll { set } => set.retain(|r| r.token != token),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses, appending events to `out` (which is cleared first).
    /// Returns the number of ready fds (0 = timeout).
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<usize> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                let n = loop {
                    let rc = unsafe {
                        epoll_sys::epoll_wait(
                            *epfd,
                            buf.as_mut_ptr(),
                            c_int::try_from(buf.len()).unwrap_or(c_int::MAX),
                            as_millis(timeout),
                        )
                    };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                for ev in &buf[..n] {
                    let bits = ev.events;
                    let err = bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0;
                    out.push(PollEvent {
                        token: ev.data,
                        readable: err || bits & (epoll_sys::EPOLLIN | epoll_sys::EPOLLRDHUP) != 0,
                        writable: err || bits & epoll_sys::EPOLLOUT != 0,
                    });
                }
                Ok(n)
            }
            Backend::Poll { set } => {
                let mut fds: Vec<PollFd> = set
                    .iter()
                    .map(|r| PollFd {
                        fd: r.fd,
                        events: POLLIN | if r.want_write { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    let rc =
                        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, as_millis(timeout)) };
                    if rc >= 0 {
                        break rc as usize;
                    }
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                for (r, pfd) in set.iter().zip(&fds) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    let err = bits & (POLLERR | POLLHUP | POLLNVAL) != 0;
                    out.push(PollEvent {
                        token: r.token,
                        readable: err || bits & POLLIN != 0,
                        writable: err || bits & POLLOUT != 0,
                    });
                }
                Ok(n)
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = &self.backend {
            unsafe {
                close(*epfd);
            }
        }
    }
}

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;

/// `struct sockaddr_in`, network byte order where the ABI says so.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// The two ways a nonblocking dial can leave the socket.
pub(crate) enum Dial {
    /// The three-way handshake completed inline (possible on loopback).
    Connected(TcpStream),
    /// The connect is in flight: register the socket and wait for a
    /// writable event, then check [`TcpStream::take_error`].
    InProgress(TcpStream),
}

/// Starts a nonblocking TCP connect to `addr` without ever blocking the
/// calling thread.
///
/// IPv4 goes through raw `socket(2)`/`connect(2)` so the fd is born
/// nonblocking. IPv6 (unused by the loopback harnesses) falls back to a
/// short blocking `connect_timeout` — correct, merely not async.
///
/// # Errors
///
/// Propagates immediate connect failures (e.g. `ECONNREFUSED` raced
/// inline); `EINPROGRESS` is success, reported as [`Dial::InProgress`].
pub(crate) fn connect_nonblocking(addr: SocketAddr) -> io::Result<Dial> {
    let SocketAddr::V4(v4) = addr else {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(250))?;
        stream.set_nonblocking(true)?;
        return Ok(Dial::Connected(stream));
    };
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let sa = SockAddrIn {
        sin_family: AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from(*v4.ip()).to_be(),
        sin_zero: [0; 8],
    };
    let rc = unsafe { connect(fd, &sa, std::mem::size_of::<SockAddrIn>() as c_uint) };
    // SAFETY: `fd` is a socket we just created and own exclusively.
    let stream = unsafe {
        use std::os::fd::FromRawFd;
        TcpStream::from_raw_fd(fd)
    };
    if rc == 0 {
        return Ok(Dial::Connected(stream));
    }
    let e = io::Error::last_os_error();
    match e.raw_os_error() {
        // EINPROGRESS (and the theoretical EWOULDBLOCK) mean "dialing".
        Some(code) if code == 115 || e.kind() == io::ErrorKind::WouldBlock => {
            Ok(Dial::InProgress(stream))
        }
        _ => Err(e), // stream drops, closing the fd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    fn loopback_pair() -> Option<(TcpStream, TcpStream)> {
        let listener = TcpListener::bind("127.0.0.1:0").ok()?;
        let addr = listener.local_addr().ok()?;
        let a = TcpStream::connect(addr).ok()?;
        let (b, _) = listener.accept().ok()?;
        a.set_nonblocking(true).ok()?;
        b.set_nonblocking(true).ok()?;
        Some((a, b))
    }

    fn poller_reports_readability(mut poller: Poller) {
        let Some((mut a, mut b)) = loopback_pair() else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        poller.register(b.as_raw_fd(), 7).unwrap();
        // Nothing written yet: a generous wait may still report the
        // always-writable socket, but never readable.
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(30)).unwrap();
        assert!(events.iter().all(|e| !e.readable || e.token == 7));
        assert!(!events.iter().any(|e| e.readable));

        a.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "readability never reported"
            );
        }
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);

        poller.deregister(b.as_raw_fd(), 7);
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(
            events.is_empty(),
            "deregistered fd still reported: {events:?}"
        );
    }

    #[test]
    fn default_backend_reports_readability() {
        poller_reports_readability(Poller::new().unwrap());
    }

    #[test]
    fn poll_fallback_reports_readability() {
        // Construct the portable backend directly, bypassing the env var.
        poller_reports_readability(Poller {
            backend: Backend::Poll { set: Vec::new() },
        });
    }

    #[test]
    fn nonblocking_connect_reaches_a_listener() {
        let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let stream = match connect_nonblocking(addr).unwrap() {
            Dial::Connected(s) => s,
            Dial::InProgress(s) => {
                // Wait for writability, then confirm the connect landed.
                let mut poller = Poller::new().unwrap();
                poller.register(s.as_raw_fd(), 1).unwrap();
                poller.set_write_interest(1, true);
                let mut events = Vec::new();
                let deadline = std::time::Instant::now() + Duration::from_secs(5);
                loop {
                    poller.wait(&mut events, Duration::from_millis(50)).unwrap();
                    if events.iter().any(|e| e.token == 1 && e.writable) {
                        break;
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "connect never completed"
                    );
                }
                poller.deregister(s.as_raw_fd(), 1);
                assert!(s.take_error().unwrap().is_none(), "connect failed");
                s
            }
        };
        let (_peer, _) = listener.accept().unwrap();
        assert!(stream.peer_addr().is_ok());
    }

    #[test]
    fn nonblocking_connect_to_dead_port_fails_eventually() {
        // Bind-then-drop to get a port nobody listens on.
        let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let addr = listener.local_addr().unwrap();
        drop(listener);
        match connect_nonblocking(addr) {
            Err(_) => {} // refused inline
            Ok(Dial::Connected(_)) => panic!("connected to a dead port"),
            Ok(Dial::InProgress(s)) => {
                let mut poller = Poller::new().unwrap();
                poller.register(s.as_raw_fd(), 1).unwrap();
                poller.set_write_interest(1, true);
                let mut events = Vec::new();
                let deadline = std::time::Instant::now() + Duration::from_secs(5);
                loop {
                    poller.wait(&mut events, Duration::from_millis(50)).unwrap();
                    if events.iter().any(|e| e.token == 1 && e.writable) {
                        break;
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "refusal never reported"
                    );
                }
                assert!(
                    s.take_error().unwrap().is_some(),
                    "dead-port connect reported success"
                );
            }
        }
    }
}
