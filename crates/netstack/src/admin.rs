//! A hand-rolled HTTP/1.0 admin endpoint: live `/metrics` and `/status`
//! for a running node, plus the tiny client used to scrape one.
//!
//! The server is deliberately minimal — no keep-alive, no chunking, no
//! headers it does not need — because its clients are `btstat`, the
//! cluster scraper, and `curl`-shaped tools, all of which speak exactly
//! this much HTTP:
//!
//! * `GET /metrics` — the node's registry in Prometheus text exposition
//!   format 0.0.4 (counters, gauges, and `_bucket`/`_sum`/`_count`
//!   histograms).
//! * `GET /metrics.json` — the same snapshot as JSON, losslessly
//!   round-trippable through [`Snapshot::from_json`]; what the merging
//!   scrapers consume.
//! * `GET /status` — protocol state as JSON: decision, phase, steps,
//!   halted/died/recovered flags, and per-peer link facts (ack watermark,
//!   queue depth, reconnects) for liveness judgement.
//!
//! One thread serves requests sequentially; a scrape is a registry
//! snapshot plus a small write, so there is nothing to parallelize. The
//! status source is swappable at runtime ([`AdminServer::set_status`])
//! because a supervised restart replaces the node's status cell while the
//! admin port — like the protocol port — survives the incarnation.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use obs::json::Json;
use obs::metrics::{Registry, Snapshot};
use simnet::ProcessId;

use crate::node::{NodeHandle, NodeStatus};

/// How long the server waits for a request line before dropping a rude
/// client, and how often the accept loop re-checks the shutdown flag.
const SERVE_POLL: Duration = Duration::from_millis(50);

/// A closure producing the current `/status` document.
pub type StatusFn = Box<dyn Fn() -> Json + Send>;

/// A running admin endpoint; dropping it stops the serving thread.
pub struct AdminServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    status: Arc<Mutex<StatusFn>>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AdminServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl AdminServer {
    /// Serves `registry` and `status` on `listener` until shutdown.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve(
        listener: TcpListener,
        registry: Arc<Registry>,
        status: StatusFn,
    ) -> io::Result<AdminServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let status = Arc::new(Mutex::new(status));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let status = Arc::clone(&status);
            thread::Builder::new()
                .name(format!("netstack-admin-{addr}"))
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let _ = serve_one(stream, &registry, &status);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                thread::sleep(SERVE_POLL);
                            }
                            Err(_) => thread::sleep(SERVE_POLL),
                        }
                    }
                })
                .expect("spawning the admin thread")
        };
        Ok(AdminServer {
            addr,
            shutdown,
            status,
            thread: Some(thread),
        })
    }

    /// The address the endpoint is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the `/status` source — used when a supervised restart
    /// swaps in a fresh node incarnation behind the same admin port.
    pub fn set_status(&self, status: StatusFn) {
        *self.status.lock().unwrap_or_else(PoisonError::into_inner) = status;
    }

    /// Stops the serving thread. Safe to call more than once.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the standard `/status` document source for one node: protocol
/// state from the status cell plus per-peer link facts from the registry.
#[must_use]
pub fn status_source(
    id: ProcessId,
    n: usize,
    status: Arc<Mutex<NodeStatus>>,
    registry: Arc<Registry>,
) -> StatusFn {
    Box::new(move || {
        let st = status
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let snap = registry.snapshot();
        let node = id.index().to_string();
        let mut peers = Vec::new();
        for peer in 0..n {
            if peer == id.index() {
                continue;
            }
            let p = peer.to_string();
            let labels: &[(&str, &str)] = &[("node", &node), ("peer", &p)];
            let read = |name: &str| snap.scalar(name, labels).unwrap_or(0);
            peers.push(Json::Obj(vec![
                ("peer".into(), Json::num(peer as u64)),
                ("acked".into(), Json::num(read("bt_acked_seq"))),
                ("queue_depth".into(), Json::num(read("bt_send_queue_depth"))),
                ("reconnects".into(), Json::num(read("bt_reconnects_total"))),
            ]));
        }
        Json::Obj(vec![
            ("id".into(), Json::num(id.index() as u64)),
            (
                "decision".into(),
                st.decision
                    .map_or(Json::Null, |v| Json::str(format!("{v:?}"))),
            ),
            (
                "decision_phase".into(),
                st.decision_phase.map_or(Json::Null, Json::num),
            ),
            ("phase".into(), Json::num(st.phase)),
            ("steps".into(), Json::num(st.steps)),
            ("halted".into(), Json::Bool(st.halted)),
            ("died".into(), Json::Bool(st.died)),
            ("recovered".into(), Json::num(st.recovered)),
            ("amnesiac".into(), Json::Bool(st.amnesiac)),
            ("state_transferred".into(), Json::Bool(st.state_transferred)),
            ("peers".into(), Json::Arr(peers)),
        ])
    })
}

/// Binds and serves the standard admin endpoint for a spawned node.
///
/// # Errors
///
/// Propagates bind and listener configuration failures.
pub fn serve_node(bind: SocketAddr, node: &NodeHandle, n: usize) -> io::Result<AdminServer> {
    let listener = TcpListener::bind(bind)?;
    let registry = node.metrics();
    let status = status_source(node.id(), n, node.status_cell(), node.metrics());
    AdminServer::serve(listener, registry, status)
}

/// Handles one connection: one request, one response, close.
fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    status: &Mutex<StatusFn>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let path = read_request_path(&mut stream)?;
    let (code, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.snapshot().render_prometheus(),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            registry.snapshot().to_json().render(),
        ),
        "/status" => {
            let doc = (status.lock().unwrap_or_else(PoisonError::into_inner))();
            ("200 OK", "application/json", doc.render())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no such path {path}; try /metrics, /metrics.json, /status\n"),
        ),
    };
    let header = format!(
        "HTTP/1.0 {code}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads the whole request head (through the blank line) and returns the
/// path from the request line. Headers are read so no unconsumed bytes
/// remain when the socket closes — closing with buffered input makes the
/// kernel send RST, which can destroy the response before the client
/// reads it — but their content is ignored.
fn read_request_path(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    // One byte at a time is fine: request heads are tens of bytes and the
    // connection serves exactly one request.
    while !buf.ends_with(b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => buf.push(byte[0]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(path.to_string()),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HTTP GET request",
        )),
    }
}

/// A minimal HTTP/1.0 GET: connects, requests `path`, and returns the
/// response body. The dependency-free client behind `btstat`, the cluster
/// scraper, and the smoke scripts.
///
/// # Errors
///
/// I/O failures, a non-2xx status line, or a response with no body.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let ok = status_line
        .split_whitespace()
        .nth(1)
        .is_some_and(|code| code.starts_with('2'));
    if !ok {
        return Err(io::Error::other(format!("{path}: {status_line}")));
    }
    Ok(body.to_string())
}

/// Scrapes `/metrics.json` from every address and merges the snapshots
/// into one cluster-wide view. Unreachable nodes are skipped (scrapes are
/// best-effort: a node may be down mid-restart); the second element lists
/// the addresses that answered.
#[must_use]
pub fn scrape_all(addrs: &[SocketAddr], timeout: Duration) -> (Snapshot, Vec<SocketAddr>) {
    let mut merged = Snapshot::default();
    let mut answered = Vec::new();
    for &addr in addrs {
        let Ok(body) = http_get(addr, "/metrics.json", timeout) else {
            continue;
        };
        let Ok(json) = Json::parse(&body) else {
            continue;
        };
        let Ok(snap) = Snapshot::from_json(&json) else {
            continue;
        };
        merged.merge(&snap);
        answered.push(addr);
    }
    (merged, answered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_status_and_404() {
        let Ok(listener) = TcpListener::bind(("127.0.0.1", 0)) else {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        };
        let registry = Arc::new(Registry::new());
        registry
            .counter("bt_test_total", "a test counter", &[("node", "0")])
            .add(7);
        let status: StatusFn = Box::new(|| Json::Obj(vec![("ok".into(), Json::Bool(true))]));
        let mut server =
            AdminServer::serve(listener, Arc::clone(&registry), status).expect("serve");
        let addr = server.addr();
        let timeout = Duration::from_secs(5);

        let metrics = http_get(addr, "/metrics", timeout).expect("GET /metrics");
        assert!(
            metrics.contains("# TYPE bt_test_total counter"),
            "{metrics}"
        );
        assert!(metrics.contains("bt_test_total{node=\"0\"} 7"), "{metrics}");

        let json = http_get(addr, "/metrics.json", timeout).expect("GET /metrics.json");
        let snap = Snapshot::from_json(&Json::parse(&json).expect("parses")).expect("decodes");
        assert_eq!(snap.scalar("bt_test_total", &[("node", "0")]), Some(7));

        let status_body = http_get(addr, "/status", timeout).expect("GET /status");
        assert!(status_body.contains("\"ok\":true"), "{status_body}");

        assert!(
            http_get(addr, "/nope", timeout).is_err(),
            "unknown paths are 404"
        );

        // The swappable status source serves the replacement.
        server.set_status(Box::new(|| {
            Json::Obj(vec![("ok".into(), Json::Bool(false))])
        }));
        let swapped = http_get(addr, "/status", timeout).expect("GET /status after swap");
        assert!(swapped.contains("\"ok\":false"), "{swapped}");

        let (merged, answered) = scrape_all(&[addr], timeout);
        assert_eq!(answered, vec![addr]);
        assert_eq!(merged.scalar("bt_test_total", &[("node", "0")]), Some(7));

        server.shutdown();
    }
}
