//! `btstat` — watch a live cluster's telemetry from its admin endpoints.
//!
//! Usage:
//!
//! ```text
//! btstat --node HOST:PORT [--node HOST:PORT ...] \
//!        [--interval MS] [--once] [--expect FAM1,FAM2,...]
//! ```
//!
//! Each `--node` names one node's admin endpoint (what `btnode --admin`
//! or `ClusterOptions::admin` serves). By default btstat refreshes a
//! terminal dashboard every `--interval` (1000 ms): per-node frame rates
//! computed from scrape-to-scrape deltas, send-queue depth and backlog,
//! WAL append+fsync p95, restart and equivocation counts, and the
//! protocol state from `/status`. Interrupt it to stop; a node that stops
//! answering shows as `down` rather than killing the dashboard.
//!
//! `--once` scrapes a single round, prints a static table, and exits —
//! the scriptable mode. With `--expect` it also verifies that the merged
//! scrape contains every named metric family and exits nonzero if any is
//! missing: the smoke tests' curl-free "is /metrics actually serving what
//! it should" check.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use netstack::admin::http_get;
use obs::json::Json;
use obs::metrics::Snapshot;

const USAGE: &str = "usage: btstat --node HOST:PORT [--node HOST:PORT ...] \
[--interval MS] [--once] [--expect FAM1,FAM2,...]";

/// Scrape timeout per request: generous against a loaded machine, small
/// enough that one dead node cannot stall a refresh badly.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

struct Args {
    nodes: Vec<SocketAddr>,
    interval: Duration,
    once: bool,
    expect: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut nodes = Vec::new();
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut expect = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--node" => {
                let s = value("--node")?;
                nodes.push(
                    s.parse()
                        .map_err(|_| format!("cannot parse {s:?} as HOST:PORT"))?,
                );
            }
            "--interval" => {
                let ms: u64 = value("--interval")?
                    .parse()
                    .map_err(|_| "--interval: not a number".to_string())?;
                interval = Duration::from_millis(ms.max(50));
            }
            "--once" => once = true,
            "--expect" => {
                expect.extend(
                    value("--expect")?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if nodes.is_empty() {
        return Err("at least one --node is required".to_string());
    }
    if !expect.is_empty() && !once {
        return Err("--expect only makes sense with --once".to_string());
    }
    Ok(Args {
        nodes,
        interval,
        once,
        expect,
    })
}

/// One node's scrape: metrics plus protocol status, either of which can
/// individually fail without taking the row down to nothing.
struct NodeSample {
    snap: Option<Snapshot>,
    status: Option<Json>,
    taken: Instant,
}

fn sample(addr: SocketAddr) -> NodeSample {
    let snap = http_get(addr, "/metrics.json", SCRAPE_TIMEOUT)
        .ok()
        .and_then(|body| Json::parse(&body).ok())
        .and_then(|json| Snapshot::from_json(&json).ok());
    let status = http_get(addr, "/status", SCRAPE_TIMEOUT)
        .ok()
        .and_then(|body| Json::parse(&body).ok());
    NodeSample {
        snap,
        status,
        taken: Instant::now(),
    }
}

/// The protocol-state cell of a row, from `/status`.
fn state_of(status: Option<&Json>) -> String {
    let Some(st) = status else {
        return "down".to_string();
    };
    if st.get("died").and_then(Json::as_bool) == Some(true) {
        return "died".to_string();
    }
    match st.get("decision").and_then(Json::as_str) {
        Some(v) => format!("decided {v}"),
        None if st.get("halted").and_then(Json::as_bool) == Some(true) => "halted".to_string(),
        None => "running".to_string(),
    }
}

/// Formats one dashboard row from a sample (and, in live mode, the
/// previous sample for rate computation).
fn row(i: usize, cur: &NodeSample, prev: Option<&NodeSample>) -> String {
    let state = state_of(cur.status.as_ref());
    let phase = cur
        .status
        .as_ref()
        .and_then(|s| s.get("phase"))
        .and_then(Json::as_u64)
        .map_or_else(|| "-".to_string(), |p| p.to_string());
    let Some(snap) = &cur.snap else {
        return format!(
            "{:<5} {:<12} {:>5} {:>9} {:>6} {:>9} {:>11} {:>8} {:>6} {:>6} {:>7} {:>10}",
            format!("p{i}"),
            state,
            phase,
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-",
            "-"
        );
    };
    let frames = snap.scalar_total("bt_frames_sent_total").unwrap_or(0);
    let rate = match prev.and_then(|p| p.snap.as_ref().map(|s| (s, p.taken))) {
        Some((prev_snap, prev_taken)) => {
            let prev_frames = prev_snap.scalar_total("bt_frames_sent_total").unwrap_or(0);
            let dt = cur.taken.duration_since(prev_taken).as_secs_f64();
            if dt > 0.0 {
                format!("{:.0}", frames.saturating_sub(prev_frames) as f64 / dt)
            } else {
                "-".to_string()
            }
        }
        None => frames.to_string(), // --once: show the absolute count
    };
    let queue = snap.scalar_total("bt_send_queue_depth").unwrap_or(0);
    let backlog = snap.scalar_total("bt_send_backlog_bytes").unwrap_or(0);
    let wal_p95 = snap
        .histogram_total("bt_wal_append_us")
        .and_then(|h| h.quantile(0.95))
        .map_or_else(|| "-".to_string(), |v| v.to_string());
    let restarts = snap.scalar_total("bt_restarts_total").unwrap_or(0);
    let equiv = snap.scalar_total("bt_equivocations_total").unwrap_or(0);
    let recovered = snap
        .scalar_total("bt_recovered_deliveries_total")
        .unwrap_or(0);
    // Replicated-log columns: blank for one-shot consensus nodes, which
    // never register the rsm families.
    let slots = snap
        .scalar_total("rsm_slots_committed_total")
        .map_or_else(|| "-".to_string(), |v| v.to_string());
    let commit_p95 = snap
        .histogram_total("rsm_commit_latency_us")
        .and_then(|h| h.quantile(0.95))
        .map_or_else(|| "-".to_string(), |v| v.to_string());
    format!(
        "{:<5} {:<12} {:>5} {:>9} {:>6} {:>9} {:>11} {:>8} {:>6} {:>6} {:>7} {:>10}",
        format!("p{i}"),
        state,
        phase,
        rate,
        queue,
        backlog,
        wal_p95,
        restarts,
        equiv,
        recovered,
        slots,
        commit_p95,
    )
}

fn header(live: bool) -> String {
    format!(
        "{:<5} {:<12} {:>5} {:>9} {:>6} {:>9} {:>11} {:>8} {:>6} {:>6} {:>7} {:>10}",
        "node",
        "state",
        "phase",
        if live { "frames/s" } else { "frames" },
        "queue",
        "backlog",
        "wal_p95_us",
        "restarts",
        "equiv",
        "recov",
        "slots",
        "cmt_p95_us",
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("btstat: {err}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.once {
        return run_once(&args);
    }
    run_dashboard(&args)
}

/// One scrape round, a static table, and (with `--expect`) the family
/// presence check.
fn run_once(args: &Args) -> ExitCode {
    let samples: Vec<NodeSample> = args.nodes.iter().map(|&a| sample(a)).collect();
    let mut merged = Snapshot::default();
    let mut answered = 0usize;
    for s in &samples {
        if let Some(snap) = &s.snap {
            merged.merge(snap);
            answered += 1;
        }
    }

    println!("{}", header(false));
    for (i, s) in samples.iter().enumerate() {
        println!("{}", row(i, s, None));
    }
    println!("{answered}/{} nodes answered", args.nodes.len());

    if answered == 0 {
        eprintln!("btstat: no node answered");
        return ExitCode::FAILURE;
    }
    let mut missing = false;
    for fam in &args.expect {
        if !merged.families.contains_key(fam) {
            eprintln!("btstat: expected metric family {fam} is missing from the scrape");
            missing = true;
        }
    }
    if missing {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The refreshing dashboard: scrape, redraw, sleep, repeat until killed.
fn run_dashboard(args: &Args) -> ExitCode {
    let mut prev: Vec<Option<NodeSample>> = args.nodes.iter().map(|_| None).collect();
    let mut round = 0u64;
    loop {
        let samples: Vec<NodeSample> = args.nodes.iter().map(|&a| sample(a)).collect();
        round += 1;

        // Clear screen, home cursor: a full redraw each refresh keeps the
        // terminal handling trivial (no cursor bookkeeping to get wrong).
        print!("\x1b[2J\x1b[H");
        println!(
            "btstat — {} node(s), scrape #{round}, every {:?} (Ctrl-C to quit)",
            args.nodes.len(),
            args.interval,
        );
        println!("{}", header(true));
        for (i, s) in samples.iter().enumerate() {
            println!("{}", row(i, s, prev[i].as_ref()));
        }
        let answered = samples.iter().filter(|s| s.snap.is_some()).count();
        println!("{answered}/{} nodes answering", args.nodes.len());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        prev = samples.into_iter().map(Some).collect();
        std::thread::sleep(args.interval);
    }
}
