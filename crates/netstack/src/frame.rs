//! Length-prefixed framing: how [`Wire`]-encoded payloads cross a socket.
//!
//! Every frame on a connection is a 4-byte big-endian length followed by
//! that many body bytes; the body is the [`Wire`] encoding of a [`Frame`].
//! The first frame on any connection must be [`Frame::Hello`], announcing
//! the dialing node's identity — the runtime's implementation of the
//! paper's §3.1 requirement that "the message system must provide a way
//! for correct processes to verify the identity of the sender". On
//! loopback clusters the announcement is trusted; a deployment would pin
//! it with transport authentication (mTLS), which changes nothing above
//! this module.
//!
//! [`Frame::Msg`] carries a per-link sequence number assigned when the
//! sender *queues* the message; the receiver answers each one with a
//! cumulative [`Frame::Ack`] on the same connection. A sender retires a
//! frame only once it is acked — a successful `write` merely parks bytes
//! in the kernel buffer, where a dying connection can still lose them —
//! and retransmits its whole unacked backlog, in order, after every
//! reconnect. The receiver delivers each sequence number exactly once,
//! dropping retransmitted duplicates. Together these uphold the paper's
//! reliable-channel assumption (§2.1) over flaky connections: every
//! queued message is delivered exactly once, eventually.

use std::io::{self, Read, Write};

use simnet::{ProcessId, Value, Wire, WireError, WireReader};

/// Hard cap on a frame body, far above any real protocol message; a peer
/// announcing more is treated as malformed rather than allocated for.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One unit of the connection protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: the dialing node's identity.
    Hello {
        /// The sender's process id.
        from: ProcessId,
    },
    /// One protocol message, opaque to the framing layer.
    Msg {
        /// Per-link sequence number, assigned at queueing time; the
        /// receiver delivers each sequence number at most once.
        seq: u64,
        /// The [`Wire`] encoding of the protocol message.
        payload: Vec<u8>,
    },
    /// Cumulative receiver acknowledgment, sent back on the same
    /// connection the messages arrived on: every sequence number below
    /// `next` has been delivered, so the sender may retire those frames
    /// from its retransmission backlog.
    Ack {
        /// The receiver's next expected sequence number.
        next: u64,
    },
    /// An amnesiac node asking a peer for its durable state (see
    /// `docs/RECOVERY.md`). Sent on the amnesiac's ordinary outbound
    /// connection; the peer answers with [`Frame::StateChunk`] on the
    /// same connection.
    StateRequest {
        /// The requesting (amnesiac) node's identity.
        from: ProcessId,
    },
    /// One peer's answer to a [`Frame::StateRequest`]: its decision (if
    /// any) plus a digest — and optionally the bytes — of its replicated
    /// application state. An amnesiac adopts state only once `k + 1`
    /// peers answered with *matching* `(decision, app_digest)`, so no
    /// coalition of `k` faulty peers can feed it a forged state.
    StateChunk {
        /// The answering peer's identity.
        from: ProcessId,
        /// The peer's irrevocable decision, if it has made one.
        decision: Option<Value>,
        /// The peer's current phase (diagnostic, not matched).
        phase: u64,
        /// FNV-1a digest of the peer's replicated application state
        /// (0 when the protocol has no transferable state).
        app_digest: u64,
        /// The replicated application state itself, when the protocol
        /// serves one (see `Process::transfer_state`).
        app: Option<Vec<u8>>,
    },
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { from } => {
                out.push(0);
                from.encode(out);
            }
            Frame::Msg { seq, payload } => {
                out.push(1);
                seq.encode(out);
                payload.encode(out);
            }
            Frame::Ack { next } => {
                out.push(2);
                next.encode(out);
            }
            Frame::StateRequest { from } => {
                out.push(3);
                from.encode(out);
            }
            Frame::StateChunk {
                from,
                decision,
                phase,
                app_digest,
                app,
            } => {
                out.push(4);
                from.encode(out);
                decision.encode(out);
                phase.encode(out);
                app_digest.encode(out);
                app.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(Frame::Hello {
                from: Wire::decode(r)?,
            }),
            1 => Ok(Frame::Msg {
                seq: Wire::decode(r)?,
                payload: Wire::decode(r)?,
            }),
            2 => Ok(Frame::Ack {
                next: Wire::decode(r)?,
            }),
            3 => Ok(Frame::StateRequest {
                from: Wire::decode(r)?,
            }),
            4 => Ok(Frame::StateChunk {
                from: Wire::decode(r)?,
                decision: Wire::decode(r)?,
                phase: Wire::decode(r)?,
                app_digest: Wire::decode(r)?,
                app: Wire::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                what: "frame tag",
                offset,
            }),
        }
    }

    fn validate(&self, n: usize) -> bool {
        match self {
            Frame::Hello { from } => from.validate(n),
            // Payloads are validated after their own decode; seq numbers
            // are bounded by the dedup table, not the system size.
            Frame::Msg { .. } | Frame::Ack { .. } => true,
            Frame::StateRequest { from } => from.validate(n),
            Frame::StateChunk { from, .. } => from.validate(n),
        }
    }
}

/// Writes one frame (length prefix + body) and flushes.
///
/// # Errors
///
/// Propagates I/O errors; [`io::ErrorKind::InvalidInput`] if the frame
/// exceeds [`MAX_FRAME_LEN`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let body = frame.to_bytes();
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds MAX_FRAME_LEN", body.len()),
        ));
    }
    let len = body.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Encodes one frame to its on-wire bytes — length prefix and body in a
/// single buffer, ready to be handed to a vectored write (and shared via
/// `Arc` between a retransmission backlog and an in-flight write queue
/// without copying).
///
/// # Panics
///
/// Panics if the frame body exceeds [`MAX_FRAME_LEN`] — protocol
/// messages are orders of magnitude smaller, so an oversized *outbound*
/// frame is a bug, not an input.
#[must_use]
pub fn encode_chunk(frame: &Frame) -> Vec<u8> {
    let mut chunk = vec![0u8; 4];
    frame.encode(&mut chunk);
    let len = chunk.len() - 4;
    assert!(len <= MAX_FRAME_LEN, "outbound frame of {len} bytes");
    chunk[..4].copy_from_slice(&u32::try_from(len).expect("len fits u32").to_be_bytes());
    chunk
}

/// Extracts every complete frame from the front of an accumulation
/// buffer, leaving a partial frame (if any) in place for the next read.
/// The nonblocking read path's counterpart to [`read_frame`].
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the stream is unparseable: a
/// length prefix above [`MAX_FRAME_LEN`] or a body that is not a valid
/// [`Frame`]. The connection carrying such bytes is beyond resync and
/// should be dropped.
pub fn drain_frames(buf: &mut Vec<u8>, out: &mut Vec<Frame>) -> io::Result<()> {
    let mut consumed = 0;
    while buf.len() - consumed >= 4 {
        let len_bytes: [u8; 4] = buf[consumed..consumed + 4]
            .try_into()
            .expect("4-byte slice");
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("peer announced a {len}-byte frame"),
            ));
        }
        if buf.len() - consumed - 4 < len {
            break;
        }
        let body = &buf[consumed + 4..consumed + 4 + len];
        consumed += 4 + len;
        let frame = Frame::from_bytes(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))?;
        out.push(frame);
    }
    buf.drain(..consumed);
    Ok(())
}

/// Reads one frame, blocking until it is complete.
///
/// # Errors
///
/// Propagates I/O errors (including [`io::ErrorKind::UnexpectedEof`] when
/// the peer closes mid-frame); [`io::ErrorKind::InvalidData`] when the
/// length prefix exceeds [`MAX_FRAME_LEN`] or the body is not a valid
/// [`Frame`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::from_bytes(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_pipe() {
        let frames = [
            Frame::Hello {
                from: ProcessId::new(3),
            },
            Frame::Msg {
                seq: 0,
                payload: vec![],
            },
            Frame::Msg {
                seq: u64::MAX,
                payload: vec![1, 2, 3, 255],
            },
            Frame::Ack { next: 0 },
            Frame::Ack { next: u64::MAX },
            Frame::StateRequest {
                from: ProcessId::new(1),
            },
            Frame::StateChunk {
                from: ProcessId::new(2),
                decision: Some(Value::One),
                phase: 7,
                app_digest: 0xdead_beef,
                app: Some(vec![1, 2, 3]),
            },
            Frame::StateChunk {
                from: ProcessId::new(0),
                decision: None,
                phase: 0,
                app_digest: 0,
                app: None,
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        // Stream exhausted: the next read reports EOF.
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn encode_chunk_matches_write_frame_bytes() {
        let frame = Frame::Msg {
            seq: 9,
            payload: vec![4, 5, 6],
        };
        let mut via_writer = Vec::new();
        write_frame(&mut via_writer, &frame).unwrap();
        assert_eq!(encode_chunk(&frame), via_writer);
    }

    #[test]
    fn drain_frames_handles_partials_and_batches() {
        let frames = [
            Frame::Ack { next: 3 },
            Frame::Msg {
                seq: 1,
                payload: vec![7; 40],
            },
            Frame::Hello {
                from: ProcessId::new(2),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_chunk(f));
        }
        // Feed the bytes in awkward slices: every prefix length from 0
        // to the full stream must yield exactly the completed frames.
        for split in 0..wire.len() {
            let mut buf = wire[..split].to_vec();
            let mut out = Vec::new();
            drain_frames(&mut buf, &mut out).unwrap();
            let mut rest = wire[split..].to_vec();
            buf.append(&mut rest);
            drain_frames(&mut buf, &mut out).unwrap();
            assert_eq!(out, frames, "split at {split}");
            assert!(buf.is_empty(), "split at {split} left residue");
        }
        // A poisoned length prefix is an error, not a hang.
        let mut bad = u32::MAX.to_be_bytes().to_vec();
        let mut out = Vec::new();
        assert_eq!(
            drain_frames(&mut bad, &mut out).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn state_frames_validate_their_sender() {
        assert!(Frame::StateRequest {
            from: ProcessId::new(3)
        }
        .validate(4));
        assert!(!Frame::StateRequest {
            from: ProcessId::new(4)
        }
        .validate(4));
        let chunk = Frame::StateChunk {
            from: ProcessId::new(5),
            decision: None,
            phase: 0,
            app_digest: 0,
            app: None,
        };
        assert!(chunk.validate(6));
        assert!(!chunk.validate(5));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_body_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[9, 9]);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let frame = Frame::Msg {
            seq: 7,
            payload: vec![1, 2, 3],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
