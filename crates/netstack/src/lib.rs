//! An event-driven TCP runtime that runs the paper's protocols over real
//! sockets.
//!
//! The simulator (`simnet`) executes [`Process`](simnet::Process) state
//! machines under a discrete-event scheduler; this crate executes the
//! *same* state machines — unchanged, by the same trait — as `n` nodes,
//! each a single nonblocking poll loop, exchanging length-prefixed
//! [`Wire`](simnet::Wire)-encoded frames over `std::net` TCP. The mapping
//! from the paper's model (and the simulator's realisation of it) to
//! sockets is:
//!
//! | paper §2.1 model            | simnet                    | netstack |
//! |-----------------------------|---------------------------|----------|
//! | reliable channel            | buffer, never loses       | ack-gated retransmit + seq-dedup ([`conn`], [`frame`]) |
//! | arbitrary finite delay      | scheduler's choice        | OS scheduling + injected delay ([`fault`]) |
//! | authenticated sender (§3.1) | envelope `from` field     | per-connection `Hello` handshake ([`frame`]) |
//! | atomic step                 | engine calls `on_receive` | one event-loop thread per node ([`node`]) |
//! | adversarial scheduler       | `DelayingScheduler` etc.  | [`FaultPlan`] delay/partition/drop knobs |
//!
//! Module map:
//!
//! * [`frame`] — length-prefixed framing and the connection protocol;
//! * [`conn`] (private) — per-connection state machines: ack-gated
//!   backlogs with reconnect/backoff, coalesced vectored writes;
//! * `poll` (private) — epoll/`poll(2)` readiness over raw syscalls;
//! * [`fault`] — seeded link-fault injection (delay, drop, partition);
//! * [`node`] — one node: sockets, event loop, status, obs publishing;
//! * [`admin`] — HTTP/1.0 `/metrics` + `/status` endpoint and the
//!   dependency-free scraper behind `btstat` and `Cluster::scrape`;
//! * [`cluster`] — the loopback harness: `Cluster::spawn(n, k, proto)`,
//!   inject inputs/faults, `await_verdict`.
//!
//! The `btnode` binary boots a single node from the command line so a
//! cluster can also be assembled by hand across terminals (or machines).
//!
//! Networked runs publish the same [`Event`](simnet::Event) stream to the
//! same [`Subscriber`](simnet::Subscriber) sinks as simulated runs, so
//! JSONL traces and `btreport` work on both. One honest caveat: event
//! order across *nodes* reflects real concurrency, so unlike the
//! simulator a networked trace is reproducible in content but not in
//! interleaving.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod cluster;
mod conn;
pub mod fault;
pub mod frame;
pub mod node;
// The poller is the one place allowed to touch raw syscalls: epoll and
// poll(2) bindings, plus the nonblocking connect. Everything else in the
// crate stays under the deny above.
#[allow(unsafe_code)]
mod poll;
pub mod storage;
pub mod wal;

pub use admin::{http_get, scrape_all, AdminServer};
pub use cluster::{
    sockets_available, Cluster, ClusterOptions, CrashPlan, NodeFault, Proto, RecoveryOptions,
};
pub use fault::{CrashRestart, FaultInjector, FaultPlan, LinkAction};
pub use frame::{drain_frames, encode_chunk, read_frame, write_frame, Frame, MAX_FRAME_LEN};
pub use node::{fnv1a64, spawn, NetCounters, NodeConfig, NodeHandle, NodeStatus};
pub use storage::{DiskFault, FaultyStorage, RealStorage, Storage};
pub use wal::{BootRecord, DeliveryRecord, Recovered, SnapshotRecord, Wal, WalDamage, WalRecord};
