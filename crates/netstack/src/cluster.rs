//! Loopback clusters: boot `n` nodes on 127.0.0.1, inject inputs, await
//! a verdict — and, when recovery is configured, supervise the nodes:
//! kill them on schedule, restart them from their write-ahead logs, and
//! let them rejoin without equivocating.
//!
//! The harness keeps the simulator's experiment shape — pick a protocol,
//! a resilience `k`, per-process inputs and roles, run, get back a
//! [`RunReport`] — but the execution is `n` real multi-threaded nodes
//! exchanging Wire-encoded frames over real TCP connections. Every
//! listener is bound (on an OS-assigned port) *before* any node boots, so
//! peers never dial an address that does not exist yet; transient dial
//! failures during boot are absorbed by the senders' reconnect loops.
//!
//! # Supervision
//!
//! With [`ClusterOptions::recovery`] set, the cluster retains a clone of
//! each node's listener (the port survives the node) and a respawn
//! closure that can rebuild the node's process from configuration. The
//! polling loop inside [`Cluster::await_verdict`] then acts as the
//! supervisor: it executes the crash-restart schedule carried by the
//! [`FaultPlan`] (kill node `i` now, restart it later), restarts nodes
//! whose event loops died, and charges every restart against a budget —
//! each with jittered exponential backoff so repeated failures do not
//! hammer the machine in lockstep. A restarted node recovers from its
//! WAL before it accepts a single frame, so to its peers the crash is
//! indistinguishable from a slow link: same frames, same bytes, same
//! sequence numbers.
//!
//! A networked run has no global step counter, so the synthesized report's
//! `steps` is the sum of per-node atomic steps, and `RunStatus` reduces to
//! two outcomes: [`RunStatus::Stopped`] when every correct node decided
//! within the deadline, [`RunStatus::StepLimitReached`] when wall-clock
//! time ran out first (the networked analogue of a step budget).

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use std::sync::Arc;

use adversary::{Crashing, Silent, TwoFacedMalicious};
use benor::{BenOrConfig, BenOrProcess};
use bt_core::{Config, FailStop, Malicious, Simple};
use obs::metrics::{Registry, Snapshot};
use prng::Prng;
use simnet::{
    Metrics, Process, ProcessId, Role, RunReport, RunStatus, SharedSubscriber, Value, Wire,
};

use crate::admin::{self, AdminServer};
use crate::fault::FaultPlan;
use crate::node::{spawn, NodeConfig, NodeHandle};

pub use adversary::CrashPlan;

/// Which protocol the cluster runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Figure 1 fail-stop protocol (`k ≤ ⌊(n−1)/2⌋`).
    FailStop,
    /// §4.1 simple protocol (same bound, no witnesses).
    Simple,
    /// Figure 2 malicious protocol (`k ≤ ⌊(n−1)/3⌋`).
    Malicious,
    /// The Ben-Or baseline under its fail-stop configuration.
    BenOr,
}

/// The fault a node exhibits (process faults, as opposed to the *link*
/// faults a [`FaultPlan`] injects).
#[derive(Clone, Debug, Default)]
pub enum NodeFault {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Correct behaviour until the [`CrashPlan`] triggers, then silence —
    /// the paper's fail-stop fault.
    Crash(CrashPlan),
    /// Sends nothing at all (an initially dead process).
    Silent,
    /// Echoes `One` to low-indexed peers and `Zero` to high-indexed peers
    /// (malicious protocol only; treated as [`NodeFault::Silent`] under
    /// other protocols, where the message type differs).
    TwoFaced,
}

impl NodeFault {
    fn role(&self) -> Role {
        match self {
            NodeFault::Correct => Role::Correct,
            _ => Role::Faulty,
        }
    }
}

/// Durability and supervision policy for a cluster.
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    /// Directory holding one `node<i>.wal` per node (created if absent).
    pub wal_dir: PathBuf,
    /// Per-node checkpoint cadence (see [`NodeConfig::snapshot_every`]);
    /// 0 replays from genesis.
    pub snapshot_every: u64,
    /// How many restarts the supervisor will grant each node — scheduled
    /// crash-restarts and died-event-loop restarts both draw on it.
    pub max_restarts: u32,
    /// Base of the jittered exponential backoff the supervisor waits
    /// before restart attempt `r` (nominal `backoff · 2^r`, at least half
    /// of which is honoured, the rest uniform).
    pub backoff: Duration,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            wal_dir: std::env::temp_dir().join("btwal"),
            snapshot_every: 0,
            max_restarts: 4,
            backoff: Duration::from_millis(10),
        }
    }
}

impl RecoveryOptions {
    /// A policy journaling into `wal_dir` with default supervision knobs.
    #[must_use]
    pub fn in_dir(wal_dir: impl Into<PathBuf>) -> Self {
        RecoveryOptions {
            wal_dir: wal_dir.into(),
            ..RecoveryOptions::default()
        }
    }

    fn wal_path(&self, i: usize) -> PathBuf {
        self.wal_dir.join(format!("node{i}.wal"))
    }
}

/// Everything about a cluster run that is not `(n, k, proto)`.
#[derive(Clone, Debug, Default)]
pub struct ClusterOptions {
    /// Base seed; node `i` runs on `seed + i` so coin flips differ across
    /// nodes but the whole cluster is reproducible from one number.
    pub seed: u64,
    /// Initial value per node; nodes beyond the vector's length get
    /// [`Value::Zero`].
    pub inputs: Vec<Value>,
    /// Process fault per node; nodes beyond the vector's length are
    /// correct.
    pub faults: Vec<NodeFault>,
    /// Link faults, applied to every node's outbound messages. Any
    /// crash-restart clauses in the plan are executed by the cluster
    /// supervisor and require [`ClusterOptions::recovery`].
    pub link_fault: FaultPlan,
    /// Durable WALs + supervised restart. `None` (the default) runs the
    /// classic ephemeral cluster.
    pub recovery: Option<RecoveryOptions>,
    /// Serve an HTTP admin endpoint (`/metrics`, `/metrics.json`,
    /// `/status`) per node on an OS-assigned loopback port — what `btstat`
    /// and [`Cluster::scrape`] talk to. Off by default: in-process callers
    /// can read [`Cluster::metrics_snapshot`] without sockets.
    pub admin: bool,
}

impl ClusterOptions {
    fn input(&self, i: usize) -> Value {
        self.inputs.get(i).copied().unwrap_or(Value::Zero)
    }

    fn fault(&self, i: usize) -> NodeFault {
        self.faults.get(i).cloned().unwrap_or_default()
    }
}

/// Rebuilds one node from scratch on a fresh listener clone — process,
/// sockets, WAL recovery and all.
type Respawner = Box<dyn FnMut(TcpListener) -> io::Result<NodeHandle> + Send>;

/// One clause of the crash-restart schedule, tracked by the supervisor.
#[derive(Debug)]
struct ScheduledCrash {
    node: usize,
    kill_at: Instant,
    restart_at: Instant,
    phase: CrashPhase,
}

#[derive(Debug, PartialEq, Eq)]
enum CrashPhase {
    Pending,
    Down,
    Done,
}

/// A running loopback cluster.
pub struct Cluster {
    nodes: Vec<NodeHandle>,
    roles: Vec<Role>,
    subscriber: Option<SharedSubscriber>,
    reported: bool,
    recovery: Option<RecoveryOptions>,
    /// Retained listener clones (recovery only): the port outlives the
    /// node, so peers redial the same address after a restart.
    listeners: Vec<Option<TcpListener>>,
    respawners: Vec<Respawner>,
    /// One metrics registry per node, shared across that node's
    /// incarnations: a supervised restart re-attaches to the same cells,
    /// so per-peer sender counters survive the reaping of the threads
    /// that accumulated them.
    registries: Vec<Arc<Registry>>,
    /// Per-node HTTP admin endpoints (when [`ClusterOptions::admin`] is
    /// set). An endpoint outlives its node's incarnations: a restart swaps
    /// the status source but keeps the port.
    admins: Vec<Option<AdminServer>>,
    restarts_used: Vec<u32>,
    crashes: Vec<ScheduledCrash>,
    /// Deterministic jitter stream for restart backoff.
    jitter: Prng,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes)
            .field("roles", &self.roles)
            .field("observed", &self.subscriber.is_some())
            .field("reported", &self.reported)
            .field("recovery", &self.recovery)
            .field("restarts_used", &self.restarts_used)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Boots an `n`-node cluster of `proto` with resilience `k` on
    /// loopback TCP and starts the protocol on every node.
    ///
    /// If a `subscriber` is given it receives `on_run_start` now, every
    /// node's events as they happen (interleaved in real arrival order —
    /// networked runs are not deterministically ordered across nodes),
    /// and `on_run_end` from [`Cluster::await_verdict`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error if loopback listeners cannot be bound (some
    /// sandboxes forbid sockets) — callers treat that as "skip" — or if
    /// the recovery WAL directory cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `(n, k)` violates `proto`'s resilience bound, or if the
    /// link fault plan schedules crash-restarts without
    /// [`ClusterOptions::recovery`] (a restart needs a WAL to restart
    /// from; without one a rebooted node could equivocate).
    pub fn spawn(
        n: usize,
        k: usize,
        proto: Proto,
        options: ClusterOptions,
        subscriber: Option<SharedSubscriber>,
    ) -> io::Result<Self> {
        assert!(
            options.link_fault.crashes().is_empty() || options.recovery.is_some(),
            "crash-restart faults require ClusterOptions::recovery: \
             a node restarted without its WAL could equivocate"
        );
        assert!(
            options.link_fault.disk().is_empty() || options.recovery.is_some(),
            "disk faults require ClusterOptions::recovery: \
             without a WAL there is no storage to corrupt"
        );
        if let Some(rec) = &options.recovery {
            std::fs::create_dir_all(&rec.wal_dir)?;
        }

        // Bind every listener first: all addresses exist before any dial.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        // Under recovery, keep a clone of each listening socket so the
        // port stays bound while a node is down.
        let retained: Vec<Option<TcpListener>> = if options.recovery.is_some() {
            let mut v = Vec::with_capacity(n);
            for l in &listeners {
                v.push(Some(l.try_clone()?));
            }
            v
        } else {
            (0..n).map(|_| None).collect()
        };

        if let Some(s) = &subscriber {
            s.lock()
                .expect("subscriber lock poisoned")
                .on_run_start(n, options.seed);
        }

        let roles: Vec<Role> = (0..n).map(|i| options.fault(i).role()).collect();
        let registries: Vec<Arc<Registry>> = (0..n).map(|_| Arc::new(Registry::new())).collect();
        let mut respawners: Vec<Respawner> = Vec::with_capacity(n);
        match proto {
            Proto::FailStop => {
                let config = Config::fail_stop(n, k).expect("within the fail-stop bound");
                for (i, registry) in registries.iter().enumerate() {
                    let (fault, input) = (options.fault(i), options.input(i));
                    let make = move || -> Box<dyn Process<Msg = bt_core::FailStopMsg> + Send> {
                        match fault.clone() {
                            NodeFault::Correct => Box::new(FailStop::new(config, input)),
                            NodeFault::Crash(plan) => {
                                Box::new(Crashing::new(FailStop::new(config, input), plan))
                            }
                            NodeFault::Silent | NodeFault::TwoFaced => Box::new(Silent::new()),
                        }
                    };
                    respawners.push(respawner(
                        i,
                        n,
                        k,
                        &options,
                        &addrs,
                        make,
                        &subscriber,
                        Arc::clone(registry),
                    ));
                }
            }
            Proto::Simple => {
                let config = Config::fail_stop(n, k).expect("within the fail-stop bound");
                for (i, registry) in registries.iter().enumerate() {
                    let (fault, input) = (options.fault(i), options.input(i));
                    let make = move || -> Box<dyn Process<Msg = bt_core::SimpleMsg> + Send> {
                        match fault.clone() {
                            NodeFault::Correct => Box::new(Simple::new(config, input)),
                            NodeFault::Crash(plan) => {
                                Box::new(Crashing::new(Simple::new(config, input), plan))
                            }
                            NodeFault::Silent | NodeFault::TwoFaced => Box::new(Silent::new()),
                        }
                    };
                    respawners.push(respawner(
                        i,
                        n,
                        k,
                        &options,
                        &addrs,
                        make,
                        &subscriber,
                        Arc::clone(registry),
                    ));
                }
            }
            Proto::Malicious => {
                let config = Config::malicious(n, k).expect("within the malicious bound");
                for (i, registry) in registries.iter().enumerate() {
                    let (fault, input) = (options.fault(i), options.input(i));
                    let make = move || -> Box<dyn Process<Msg = bt_core::MaliciousMsg> + Send> {
                        match fault.clone() {
                            NodeFault::Correct => Box::new(Malicious::new(config, input)),
                            NodeFault::Crash(plan) => {
                                Box::new(Crashing::new(Malicious::new(config, input), plan))
                            }
                            NodeFault::Silent => Box::new(Silent::new()),
                            NodeFault::TwoFaced => Box::new(TwoFacedMalicious::new(config)),
                        }
                    };
                    respawners.push(respawner(
                        i,
                        n,
                        k,
                        &options,
                        &addrs,
                        make,
                        &subscriber,
                        Arc::clone(registry),
                    ));
                }
            }
            Proto::BenOr => {
                let config =
                    BenOrConfig::fail_stop(n, k).expect("within the Ben-Or fail-stop bound");
                for (i, registry) in registries.iter().enumerate() {
                    let (fault, input) = (options.fault(i), options.input(i));
                    let make = move || -> Box<dyn Process<Msg = benor::BenOrMsg> + Send> {
                        match fault.clone() {
                            NodeFault::Correct => Box::new(BenOrProcess::new(config, input)),
                            NodeFault::Crash(plan) => {
                                Box::new(Crashing::new(BenOrProcess::new(config, input), plan))
                            }
                            NodeFault::Silent | NodeFault::TwoFaced => Box::new(Silent::new()),
                        }
                    };
                    respawners.push(respawner(
                        i,
                        n,
                        k,
                        &options,
                        &addrs,
                        make,
                        &subscriber,
                        Arc::clone(registry),
                    ));
                }
            }
        }

        let mut nodes = Vec::with_capacity(n);
        for (respawn, listener) in respawners.iter_mut().zip(listeners) {
            nodes.push(respawn(listener)?);
        }

        // One admin endpoint per node, bound after the nodes so /status
        // always has a live status cell to read.
        let admins: Vec<Option<AdminServer>> = if options.admin {
            let mut v = Vec::with_capacity(n);
            for node in &nodes {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let status = admin::status_source(node.id(), n, node.status_cell(), node.metrics());
                v.push(Some(AdminServer::serve(listener, node.metrics(), status)?));
            }
            v
        } else {
            (0..n).map(|_| None).collect()
        };

        let started = Instant::now();
        let crashes = options
            .link_fault
            .crashes()
            .iter()
            .map(|c| {
                assert!(
                    c.node < n,
                    "crash-restart clause targets a node outside the system"
                );
                ScheduledCrash {
                    node: c.node,
                    kill_at: started + c.kill_after,
                    restart_at: started + c.restart_after,
                    phase: CrashPhase::Pending,
                }
            })
            .collect();

        Ok(Cluster {
            nodes,
            roles,
            subscriber,
            reported: false,
            recovery: options.recovery,
            listeners: retained,
            respawners,
            registries,
            admins,
            restarts_used: vec![0; n],
            crashes,
            jitter: Prng::seed_from_u64(options.seed ^ 0x7375_7056), // distinct supervisor stream
        })
    }

    /// The nodes' live handles, indexed by process id.
    #[must_use]
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// Restarts the supervisor has performed, per node.
    #[must_use]
    pub fn restarts(&self) -> &[u32] {
        &self.restarts_used
    }

    /// Node `i`'s metrics registry — stable across that node's restarts.
    #[must_use]
    pub fn node_registry(&self, i: usize) -> Arc<Registry> {
        Arc::clone(&self.registries[i])
    }

    /// One merged snapshot of every node's metrics. Registries are read
    /// in-process (no sockets): this is the cluster-wide view a scrape of
    /// all the admin endpoints would assemble, minus the HTTP hop.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::default();
        for r in &self.registries {
            merged.merge(&r.snapshot());
        }
        merged
    }

    /// Sums one counter across every node's registry. `Registry::counter`
    /// returns the same cell every incarnation of a node used, so this
    /// reads lifetime totals even after restarts.
    fn counter_sum(&self, name: &str, help: &str) -> u64 {
        self.registries
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let node = i.to_string();
                r.counter(name, help, &[("node", &node)]).get()
            })
            .sum()
    }

    /// Boots across the cluster that found a WAL unsafely damaged
    /// (mid-log corruption or a lost log), over all incarnations.
    #[must_use]
    pub fn wal_corruptions(&self) -> u64 {
        self.counter_sum(
            "bt_wal_corruptions_total",
            "boots that found the WAL unsafely damaged (mid-log corruption or lost log)",
        )
    }

    /// Quorum state transfers completed by amnesiac nodes, cluster-wide.
    #[must_use]
    pub fn state_transfers(&self) -> u64 {
        self.counter_sum(
            "bt_state_transfers_total",
            "quorum state transfers completed by an amnesiac node",
        )
    }

    /// The admin endpoints' addresses, indexed by process id — empty when
    /// [`ClusterOptions::admin`] was off. Stable across node restarts.
    #[must_use]
    pub fn admin_addrs(&self) -> Vec<SocketAddr> {
        self.admins
            .iter()
            .filter_map(|a| a.as_ref().map(AdminServer::addr))
            .collect()
    }

    /// Scrapes every admin endpoint over HTTP and merges the snapshots —
    /// the same cluster-wide view as [`Cluster::metrics_snapshot`], but
    /// assembled the way an external monitor would assemble it. Nodes that
    /// do not answer within `timeout` are skipped; the second element
    /// lists the addresses that did.
    #[must_use]
    pub fn scrape(&self, timeout: Duration) -> (Snapshot, Vec<SocketAddr>) {
        admin::scrape_all(&self.admin_addrs(), timeout)
    }

    /// Whether node `i` could still be granted a restart.
    fn restartable(&self, i: usize) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|r| self.restarts_used[i] < r.max_restarts)
    }

    /// One supervision pass: execute due crash-schedule clauses and
    /// restart nodes whose event loops died.
    fn supervise(&mut self) {
        let now = Instant::now();
        for c in 0..self.crashes.len() {
            match self.crashes[c].phase {
                CrashPhase::Pending if now >= self.crashes[c].kill_at => {
                    let i = self.crashes[c].node;
                    self.nodes[i].shutdown();
                    self.crashes[c].phase = CrashPhase::Down;
                }
                CrashPhase::Down if now >= self.crashes[c].restart_at => {
                    let i = self.crashes[c].node;
                    self.restart(i);
                    self.crashes[c].phase = CrashPhase::Done;
                }
                _ => {}
            }
        }
        if self.recovery.is_some() {
            // A node still scheduled as Down is intentionally dead — do
            // not resurrect it early.
            let held_down: Vec<usize> = self
                .crashes
                .iter()
                .filter(|c| c.phase == CrashPhase::Down)
                .map(|c| c.node)
                .collect();
            for i in 0..self.nodes.len() {
                if self.nodes[i].died() && !held_down.contains(&i) && self.restartable(i) {
                    self.restart(i);
                }
            }
        }
    }

    /// Restarts node `i` from its WAL: shuts the old incarnation down,
    /// waits out the jittered exponential backoff, and respawns on a
    /// clone of the original listener. Charges the restart budget.
    fn restart(&mut self, i: usize) -> bool {
        let Some(rec) = self.recovery.clone() else {
            return false;
        };
        let used = self.restarts_used[i];
        if used >= rec.max_restarts {
            return false;
        }
        self.restarts_used[i] = used + 1;
        self.nodes[i].shutdown();
        // Jittered exponential backoff: nominal backoff · 2^used, at
        // least half honoured, the rest uniform — restarts triggered by
        // the same incident spread out instead of thundering back.
        let nominal = rec.backoff.saturating_mul(2u32.saturating_pow(used));
        let half = nominal / 2;
        let span = u64::try_from(half.as_micros())
            .unwrap_or(u64::MAX)
            .saturating_add(1);
        let wait = half + Duration::from_micros(self.jitter.next_u64() % span);
        std::thread::sleep(wait);
        let Some(listener) = self.listeners[i].as_ref().and_then(|l| l.try_clone().ok()) else {
            eprintln!("supervisor: no retained listener for p{i}; cannot restart");
            return false;
        };
        match (self.respawners[i])(listener) {
            Ok(handle) => {
                let st = handle.status();
                eprintln!(
                    "supervisor: restarted p{i} from WAL (attempt {}, {} deliveries replayed)",
                    used + 1,
                    st.recovered
                );
                let node = i.to_string();
                self.registries[i]
                    .counter(
                        "bt_restarts_total",
                        "supervised restarts performed for this node",
                        &[("node", &node)],
                    )
                    .inc();
                // The admin endpoint keeps its port; point /status at the
                // new incarnation's status cell.
                if let Some(a) = &self.admins[i] {
                    a.set_status(admin::status_source(
                        handle.id(),
                        self.nodes.len(),
                        handle.status_cell(),
                        handle.metrics(),
                    ));
                }
                self.nodes[i] = handle;
                true
            }
            Err(e) => {
                eprintln!(
                    "supervisor: restart of p{i} failed (attempt {}): {e}",
                    used + 1
                );
                false
            }
        }
    }

    /// Waits (polling) until every correct node has decided or `timeout`
    /// elapses, then synthesizes the run's [`RunReport`], forwards it to
    /// the subscriber's `on_run_end` (first call only), and returns it.
    ///
    /// The polling loop doubles as the supervisor (see the module docs):
    /// scheduled crash-restarts and died-node restarts happen here.
    ///
    /// On timeout the undecided nodes and their last observed phases are
    /// reported to stderr — a silent `StepLimitReached` names nobody.
    ///
    /// The cluster keeps running afterwards — post-decision traffic (the
    /// paper's exit broadcasts) still flows until [`Cluster::shutdown`].
    pub fn await_verdict(&mut self, timeout: Duration) -> RunReport {
        let deadline = Instant::now() + timeout;
        let all_decided = loop {
            self.supervise();
            let mut undecided = false;
            let mut hopeless = false;
            for (i, (node, role)) in self.nodes.iter().zip(&self.roles).enumerate() {
                if *role != Role::Correct {
                    continue;
                }
                let st = node.status();
                if st.decision.is_none() {
                    undecided = true;
                    // A node whose event loop died and who has no restart
                    // budget left will never decide: waiting out the full
                    // deadline would only disguise a crash as slowness.
                    if st.died && !self.restartable(i) {
                        hopeless = true;
                    }
                }
            }
            // The crash schedule is part of the experiment: a verdict
            // taken before every scheduled kill/restart has executed
            // would be a verdict on a different (easier) run. Keep
            // supervising until the schedule drains, then require the
            // restarted nodes to have (re-)decided too.
            let schedule_done = self.crashes.iter().all(|c| c.phase == CrashPhase::Done);
            if !undecided && schedule_done {
                break true;
            }
            if hopeless || Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };

        if !all_decided {
            for (i, (node, role)) in self.nodes.iter().zip(&self.roles).enumerate() {
                if *role != Role::Correct {
                    continue;
                }
                let st = node.status();
                if st.decision.is_none() {
                    eprintln!(
                        "await_verdict: p{i} undecided at deadline — phase {}, {} steps, \
                         {} restarts{}",
                        st.phase,
                        st.steps,
                        self.restarts_used[i],
                        if st.died { ", event loop died" } else { "" }
                    );
                }
            }
        }

        let report = self.synthesize_report(all_decided);
        if !self.reported {
            self.reported = true;
            if let Some(s) = &self.subscriber {
                s.lock()
                    .expect("subscriber lock poisoned")
                    .on_run_end(&report);
            }
        }
        report
    }

    /// Stops every node and joins all their threads.
    pub fn shutdown(&mut self) {
        for node in &mut self.nodes {
            node.shutdown();
        }
    }

    fn synthesize_report(&self, all_decided: bool) -> RunReport {
        let n = self.nodes.len();
        let mut decisions = Vec::with_capacity(n);
        let mut decision_steps = Vec::with_capacity(n);
        let mut decision_phases = Vec::with_capacity(n);
        let mut metrics = Metrics::new(n);
        let mut steps = 0u64;
        let mut max_phase = 0u64;
        for (i, node) in self.nodes.iter().enumerate() {
            let st = node.status();
            decisions.push(st.decision);
            decision_steps.push(st.decision_step);
            decision_phases.push(st.decision_phase);
            steps += st.steps;
            max_phase = max_phase.max(st.phase);
            metrics.steps_by[i] = st.steps;
            metrics.sent_by[i] = node.messages_sent();
            metrics.messages_sent += node.messages_sent();
            metrics.messages_delivered += node.messages_delivered();
            metrics.messages_dropped += node.messages_dropped();
            metrics.recovered += st.recovered;
            metrics.equivocations += node.equivocations();
        }
        let status = if all_decided {
            RunStatus::Stopped
        } else {
            RunStatus::StepLimitReached
        };
        RunReport::synthesize(
            status,
            decisions,
            self.roles.clone(),
            steps,
            decision_steps,
            decision_phases,
            max_phase,
            metrics,
        )
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the respawn closure for node `i`: everything needed to boot (or
/// re-boot) it from configuration, WAL path included.
#[allow(clippy::too_many_arguments)]
fn respawner<M: Wire + Send + 'static>(
    i: usize,
    n: usize,
    k: usize,
    options: &ClusterOptions,
    addrs: &[SocketAddr],
    make: impl Fn() -> Box<dyn Process<Msg = M> + Send> + Send + 'static,
    subscriber: &Option<SharedSubscriber>,
    registry: Arc<Registry>,
) -> Respawner {
    let seed = options.seed.wrapping_add(i as u64);
    let link_fault = options.link_fault.clone();
    let wal = options.recovery.as_ref().map(|r| r.wal_path(i));
    let snapshot_every = options.recovery.as_ref().map_or(0, |r| r.snapshot_every);
    let addrs = addrs.to_vec();
    let subscriber = subscriber.clone();
    let mut incarnation: u32 = 0;
    Box::new(move |listener: TcpListener| {
        let cfg = NodeConfig {
            id: ProcessId::new(i),
            n,
            seed,
            k,
            fault: link_fault.clone(),
            // Every respawn is a restart of a node that journalled at
            // least its boot record, so an empty WAL on incarnation ≥ 1
            // is a lost log — amnesia, not a fresh start.
            expect_history: incarnation > 0,
            wal: wal.clone(),
            snapshot_every,
            // Every incarnation records into the same registry, so the
            // node's counters survive its own restarts.
            metrics: Some(Arc::clone(&registry)),
        };
        incarnation += 1;
        spawn(cfg, listener, addrs.clone(), make(), subscriber.clone())
    })
}

/// Whether this environment allows binding loopback TCP sockets; tests use
/// it to skip gracefully inside socket-less sandboxes.
#[must_use]
pub fn sockets_available() -> bool {
    TcpListener::bind(("127.0.0.1", 0)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_counts_and_shapes_are_consistent() {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
        let options = ClusterOptions {
            seed: 11,
            inputs: vec![Value::One; 4],
            ..ClusterOptions::default()
        };
        let mut cluster =
            Cluster::spawn(4, 1, Proto::FailStop, options, None).expect("loopback spawn");
        let report = cluster.await_verdict(Duration::from_secs(30));
        assert_eq!(report.status, RunStatus::Stopped);
        assert_eq!(report.decisions.len(), 4);
        assert!(report.agreement(), "correct nodes agree");
        assert_eq!(
            report.decisions[0],
            Some(Value::One),
            "validity: all-One input"
        );
        assert!(report.metrics.messages_sent > 0);
        cluster.shutdown();
    }

    #[test]
    fn sockets_probe_is_callable() {
        // Either answer is fine; the probe itself must not panic.
        let _ = sockets_available();
    }

    #[test]
    #[should_panic(expected = "crash-restart faults require")]
    fn crash_schedule_without_recovery_is_refused() {
        if !sockets_available() {
            // Can't exercise the real path; satisfy the expected panic.
            panic!("crash-restart faults require ClusterOptions::recovery");
        }
        let options = ClusterOptions {
            seed: 3,
            link_fault: FaultPlan::reliable().with_crash(
                1,
                Duration::from_millis(10),
                Duration::from_millis(20),
            ),
            ..ClusterOptions::default()
        };
        let _ = Cluster::spawn(4, 1, Proto::FailStop, options, None);
    }
}
