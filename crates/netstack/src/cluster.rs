//! Loopback clusters: boot `n` nodes on 127.0.0.1, inject inputs, await
//! a verdict.
//!
//! The harness keeps the simulator's experiment shape — pick a protocol,
//! a resilience `k`, per-process inputs and roles, run, get back a
//! [`RunReport`] — but the execution is `n` real multi-threaded nodes
//! exchanging Wire-encoded frames over real TCP connections. Every
//! listener is bound (on an OS-assigned port) *before* any node boots, so
//! peers never dial an address that does not exist yet; transient dial
//! failures during boot are absorbed by the senders' reconnect loops.
//!
//! A networked run has no global step counter, so the synthesized report's
//! `steps` is the sum of per-node atomic steps, and `RunStatus` reduces to
//! two outcomes: [`RunStatus::Stopped`] when every correct node decided
//! within the deadline, [`RunStatus::StepLimitReached`] when wall-clock
//! time ran out first (the networked analogue of a step budget).

use std::fmt;
use std::io;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use adversary::{Crashing, Silent, TwoFacedMalicious};
use benor::{BenOrConfig, BenOrProcess};
use bt_core::{Config, FailStop, Malicious, Simple};
use simnet::{
    Metrics, Process, ProcessId, Role, RunReport, RunStatus, SharedSubscriber, Value, Wire,
};

use crate::fault::FaultPlan;
use crate::node::{spawn, NodeConfig, NodeHandle};

pub use adversary::CrashPlan;

/// Which protocol the cluster runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Figure 1 fail-stop protocol (`k ≤ ⌊(n−1)/2⌋`).
    FailStop,
    /// §4.1 simple protocol (same bound, no witnesses).
    Simple,
    /// Figure 2 malicious protocol (`k ≤ ⌊(n−1)/3⌋`).
    Malicious,
    /// The Ben-Or baseline under its fail-stop configuration.
    BenOr,
}

/// The fault a node exhibits (process faults, as opposed to the *link*
/// faults a [`FaultPlan`] injects).
#[derive(Clone, Debug, Default)]
pub enum NodeFault {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Correct behaviour until the [`CrashPlan`] triggers, then silence —
    /// the paper's fail-stop fault.
    Crash(CrashPlan),
    /// Sends nothing at all (an initially dead process).
    Silent,
    /// Echoes `One` to low-indexed peers and `Zero` to high-indexed peers
    /// (malicious protocol only; treated as [`NodeFault::Silent`] under
    /// other protocols, where the message type differs).
    TwoFaced,
}

impl NodeFault {
    fn role(&self) -> Role {
        match self {
            NodeFault::Correct => Role::Correct,
            _ => Role::Faulty,
        }
    }
}

/// Everything about a cluster run that is not `(n, k, proto)`.
#[derive(Clone, Debug, Default)]
pub struct ClusterOptions {
    /// Base seed; node `i` runs on `seed + i` so coin flips differ across
    /// nodes but the whole cluster is reproducible from one number.
    pub seed: u64,
    /// Initial value per node; nodes beyond the vector's length get
    /// [`Value::Zero`].
    pub inputs: Vec<Value>,
    /// Process fault per node; nodes beyond the vector's length are
    /// correct.
    pub faults: Vec<NodeFault>,
    /// Link faults, applied to every node's outbound messages.
    pub link_fault: FaultPlan,
}

impl ClusterOptions {
    fn input(&self, i: usize) -> Value {
        self.inputs.get(i).copied().unwrap_or(Value::Zero)
    }

    fn fault(&self, i: usize) -> NodeFault {
        self.faults.get(i).cloned().unwrap_or_default()
    }
}

/// A running loopback cluster.
pub struct Cluster {
    nodes: Vec<NodeHandle>,
    roles: Vec<Role>,
    subscriber: Option<SharedSubscriber>,
    reported: bool,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes)
            .field("roles", &self.roles)
            .field("observed", &self.subscriber.is_some())
            .field("reported", &self.reported)
            .finish()
    }
}

impl Cluster {
    /// Boots an `n`-node cluster of `proto` with resilience `k` on
    /// loopback TCP and starts the protocol on every node.
    ///
    /// If a `subscriber` is given it receives `on_run_start` now, every
    /// node's events as they happen (interleaved in real arrival order —
    /// networked runs are not deterministically ordered across nodes),
    /// and `on_run_end` from [`Cluster::await_verdict`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error if loopback listeners cannot be bound (some
    /// sandboxes forbid sockets) — callers treat that as "skip".
    ///
    /// # Panics
    ///
    /// Panics if `(n, k)` violates `proto`'s resilience bound.
    pub fn spawn(
        n: usize,
        k: usize,
        proto: Proto,
        options: ClusterOptions,
        subscriber: Option<SharedSubscriber>,
    ) -> io::Result<Self> {
        // Bind every listener first: all addresses exist before any dial.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }

        if let Some(s) = &subscriber {
            s.lock()
                .expect("subscriber lock poisoned")
                .on_run_start(n, options.seed);
        }

        let roles: Vec<Role> = (0..n).map(|i| options.fault(i).role()).collect();
        let mut nodes = Vec::with_capacity(n);
        match proto {
            Proto::FailStop => {
                let config = Config::fail_stop(n, k).expect("within the fail-stop bound");
                for (i, listener) in listeners.into_iter().enumerate() {
                    let process: Box<dyn Process<Msg = bt_core::FailStopMsg> + Send> = match options
                        .fault(i)
                    {
                        NodeFault::Correct => Box::new(FailStop::new(config, options.input(i))),
                        NodeFault::Crash(plan) => {
                            Box::new(Crashing::new(FailStop::new(config, options.input(i)), plan))
                        }
                        NodeFault::Silent | NodeFault::TwoFaced => Box::new(Silent::new()),
                    };
                    nodes.push(boot(
                        i,
                        n,
                        &options,
                        listener,
                        &addrs,
                        process,
                        &subscriber,
                    )?);
                }
            }
            Proto::Simple => {
                let config = Config::fail_stop(n, k).expect("within the fail-stop bound");
                for (i, listener) in listeners.into_iter().enumerate() {
                    let process: Box<dyn Process<Msg = bt_core::SimpleMsg> + Send> =
                        match options.fault(i) {
                            NodeFault::Correct => Box::new(Simple::new(config, options.input(i))),
                            NodeFault::Crash(plan) => {
                                Box::new(Crashing::new(Simple::new(config, options.input(i)), plan))
                            }
                            NodeFault::Silent | NodeFault::TwoFaced => Box::new(Silent::new()),
                        };
                    nodes.push(boot(
                        i,
                        n,
                        &options,
                        listener,
                        &addrs,
                        process,
                        &subscriber,
                    )?);
                }
            }
            Proto::Malicious => {
                let config = Config::malicious(n, k).expect("within the malicious bound");
                for (i, listener) in listeners.into_iter().enumerate() {
                    let process: Box<dyn Process<Msg = bt_core::MaliciousMsg> + Send> =
                        match options.fault(i) {
                            NodeFault::Correct => {
                                Box::new(Malicious::new(config, options.input(i)))
                            }
                            NodeFault::Crash(plan) => Box::new(Crashing::new(
                                Malicious::new(config, options.input(i)),
                                plan,
                            )),
                            NodeFault::Silent => Box::new(Silent::new()),
                            NodeFault::TwoFaced => Box::new(TwoFacedMalicious::new(config)),
                        };
                    nodes.push(boot(
                        i,
                        n,
                        &options,
                        listener,
                        &addrs,
                        process,
                        &subscriber,
                    )?);
                }
            }
            Proto::BenOr => {
                let config =
                    BenOrConfig::fail_stop(n, k).expect("within the Ben-Or fail-stop bound");
                for (i, listener) in listeners.into_iter().enumerate() {
                    let process: Box<dyn Process<Msg = benor::BenOrMsg> + Send> = match options
                        .fault(i)
                    {
                        NodeFault::Correct => Box::new(BenOrProcess::new(config, options.input(i))),
                        NodeFault::Crash(plan) => Box::new(Crashing::new(
                            BenOrProcess::new(config, options.input(i)),
                            plan,
                        )),
                        NodeFault::Silent | NodeFault::TwoFaced => Box::new(Silent::new()),
                    };
                    nodes.push(boot(
                        i,
                        n,
                        &options,
                        listener,
                        &addrs,
                        process,
                        &subscriber,
                    )?);
                }
            }
        }

        Ok(Cluster {
            nodes,
            roles,
            subscriber,
            reported: false,
        })
    }

    /// The nodes' live handles, indexed by process id.
    #[must_use]
    pub fn nodes(&self) -> &[NodeHandle] {
        &self.nodes
    }

    /// Waits (polling) until every correct node has decided or `timeout`
    /// elapses, then synthesizes the run's [`RunReport`], forwards it to
    /// the subscriber's `on_run_end` (first call only), and returns it.
    ///
    /// The cluster keeps running afterwards — post-decision traffic (the
    /// paper's exit broadcasts) still flows until [`Cluster::shutdown`].
    pub fn await_verdict(&mut self, timeout: Duration) -> RunReport {
        let deadline = Instant::now() + timeout;
        let all_decided = loop {
            let mut undecided = false;
            let mut dead = false;
            for (node, role) in self.nodes.iter().zip(&self.roles) {
                if *role != Role::Correct {
                    continue;
                }
                let st = node.status();
                if st.decision.is_none() {
                    undecided = true;
                    // A node whose event loop died will never decide:
                    // waiting out the full deadline would only disguise a
                    // crash as slowness.
                    if st.died {
                        dead = true;
                    }
                }
            }
            if !undecided {
                break true;
            }
            if dead || Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };

        let report = self.synthesize_report(all_decided);
        if !self.reported {
            self.reported = true;
            if let Some(s) = &self.subscriber {
                s.lock()
                    .expect("subscriber lock poisoned")
                    .on_run_end(&report);
            }
        }
        report
    }

    /// Stops every node and joins all their threads.
    pub fn shutdown(&mut self) {
        for node in &mut self.nodes {
            node.shutdown();
        }
    }

    fn synthesize_report(&self, all_decided: bool) -> RunReport {
        let n = self.nodes.len();
        let mut decisions = Vec::with_capacity(n);
        let mut decision_steps = Vec::with_capacity(n);
        let mut decision_phases = Vec::with_capacity(n);
        let mut metrics = Metrics::new(n);
        let mut steps = 0u64;
        let mut max_phase = 0u64;
        for (i, node) in self.nodes.iter().enumerate() {
            let st = node.status();
            decisions.push(st.decision);
            decision_steps.push(st.decision_step);
            decision_phases.push(st.decision_phase);
            steps += st.steps;
            max_phase = max_phase.max(st.phase);
            metrics.steps_by[i] = st.steps;
            metrics.sent_by[i] = node.messages_sent();
            metrics.messages_sent += node.messages_sent();
            metrics.messages_delivered += node.messages_delivered();
            metrics.messages_dropped += node.messages_dropped();
        }
        let status = if all_decided {
            RunStatus::Stopped
        } else {
            RunStatus::StepLimitReached
        };
        RunReport::synthesize(
            status,
            decisions,
            self.roles.clone(),
            steps,
            decision_steps,
            decision_phases,
            max_phase,
            metrics,
        )
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Boots one node of the cluster.
fn boot<M: Wire + Send + 'static>(
    i: usize,
    n: usize,
    options: &ClusterOptions,
    listener: TcpListener,
    addrs: &[std::net::SocketAddr],
    process: Box<dyn Process<Msg = M> + Send>,
    subscriber: &Option<SharedSubscriber>,
) -> io::Result<NodeHandle> {
    let cfg = NodeConfig {
        id: ProcessId::new(i),
        n,
        seed: options.seed.wrapping_add(i as u64),
        fault: options.link_fault.clone(),
    };
    spawn(cfg, listener, addrs.to_vec(), process, subscriber.clone())
}

/// Whether this environment allows binding loopback TCP sockets; tests use
/// it to skip gracefully inside socket-less sandboxes.
#[must_use]
pub fn sockets_available() -> bool {
    TcpListener::bind(("127.0.0.1", 0)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_counts_and_shapes_are_consistent() {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
        let options = ClusterOptions {
            seed: 11,
            inputs: vec![Value::One; 4],
            ..ClusterOptions::default()
        };
        let mut cluster =
            Cluster::spawn(4, 1, Proto::FailStop, options, None).expect("loopback spawn");
        let report = cluster.await_verdict(Duration::from_secs(30));
        assert_eq!(report.status, RunStatus::Stopped);
        assert_eq!(report.decisions.len(), 4);
        assert!(report.agreement(), "correct nodes agree");
        assert_eq!(
            report.decisions[0],
            Some(Value::One),
            "validity: all-One input"
        );
        assert!(report.metrics.messages_sent > 0);
        cluster.shutdown();
    }

    #[test]
    fn sockets_probe_is_callable() {
        // Either answer is fine; the probe itself must not panic.
        let _ = sockets_available();
    }
}
