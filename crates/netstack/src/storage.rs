//! The storage abstraction under the write-ahead log, and its fault
//! injector.
//!
//! [`Wal`](crate::wal::Wal) never touches the filesystem directly: every
//! operation it performs — the open-time scan, tail truncation, record
//! appends, and the staged-write/rename/dir-fsync triple behind
//! compaction — goes through a [`Storage`] implementation. Production
//! nodes use [`RealStorage`]; test harnesses wrap it in
//! [`FaultyStorage`], which executes a list of seedable [`DiskFault`]s at
//! exact operation counts, so `btfuzz` and the recovery tests can produce
//! the storage failures that matter deterministically:
//!
//! * **bit flips** ([`DiskFault::Flip`]) — media rot surfaced at read
//!   time: the byte at a fixed offset comes back flipped on every open
//!   (a no-op while the log is shorter than the offset, so fresh boots
//!   are unaffected and only restarts observe the damage);
//! * **short writes** ([`DiskFault::ShortWrite`]) — the nth append
//!   persists only half its bytes yet reports success, the torn-record
//!   shape a crash mid-`write(2)` leaves behind;
//! * **write errors** ([`DiskFault::Enospc`]) — the nth append fails
//!   with `ENOSPC`, which a node must treat as fatal (it can no longer
//!   guarantee log-before-send);
//! * **fsync errors** ([`DiskFault::FsyncErr`]) — the nth sync
//!   (compaction data sync or directory sync) fails with `EIO`;
//! * **lost rename** ([`DiskFault::LostRename`]) — the compaction
//!   rename reports success but the directory entry never becomes
//!   durable: the next open finds no log at all. This is exactly the
//!   power-loss window that skipping the parent-directory fsync leaves
//!   open, kept injectable so the missing-log recovery path stays
//!   exercised even now that [`RealStorage`] closes the window.
//!
//! The fault spec grammar ([`DiskFault`]'s `Display`/`FromStr`) is the
//! per-node half of the `disk={node}:{fault}` clause in
//! [`FaultPlan`](crate::fault::FaultPlan) specs.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One injectable storage fault. Operation counts (`nth`) are 1-based
/// and scoped to one [`FaultyStorage`] instance — i.e. one node
/// incarnation — so a fault plan names an exact operation in an exact
/// lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Every open reads the byte at `offset` with its low bit flipped
    /// (no-op when the log is shorter than `offset + 1`).
    Flip {
        /// Byte offset into the log file.
        offset: u64,
    },
    /// The `nth` append persists only the first half of its bytes but
    /// reports success.
    ShortWrite {
        /// Which append (1-based) is torn.
        nth: u64,
    },
    /// The `nth` sync — compaction data sync or directory sync — fails
    /// with `EIO`.
    FsyncErr {
        /// Which sync (1-based) fails.
        nth: u64,
    },
    /// The `nth` append fails with `ENOSPC`, persisting nothing.
    Enospc {
        /// Which append (1-based) fails.
        nth: u64,
    },
    /// The compaction rename reports success but the directory entry is
    /// lost: the log file vanishes (writes keep landing in the orphaned
    /// inode, invisible to any later open).
    LostRename,
}

/// Renders the fault as the per-node half of a `disk=` clause:
/// `flip@8`, `short@3`, `fsyncerr@1`, `enospc@5`, `lostrename`.
impl fmt::Display for DiskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskFault::Flip { offset } => write!(f, "flip@{offset}"),
            DiskFault::ShortWrite { nth } => write!(f, "short@{nth}"),
            DiskFault::FsyncErr { nth } => write!(f, "fsyncerr@{nth}"),
            DiskFault::Enospc { nth } => write!(f, "enospc@{nth}"),
            DiskFault::LostRename => write!(f, "lostrename"),
        }
    }
}

impl std::str::FromStr for DiskFault {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        let (kind, arg) = match raw.split_once('@') {
            Some((kind, arg)) => (kind, Some(arg)),
            None => (raw, None),
        };
        let num = |what: &str| -> Result<u64, String> {
            arg.ok_or_else(|| format!("disk fault {kind:?} needs '@{what}'"))?
                .parse::<u64>()
                .map_err(|_| format!("disk fault {kind:?} needs an integer {what}, got {arg:?}"))
        };
        match kind {
            "flip" => Ok(DiskFault::Flip {
                offset: num("offset")?,
            }),
            "short" => Ok(DiskFault::ShortWrite { nth: num("nth")? }),
            "fsyncerr" => Ok(DiskFault::FsyncErr { nth: num("nth")? }),
            "enospc" => Ok(DiskFault::Enospc { nth: num("nth")? }),
            "lostrename" => match arg {
                None => Ok(DiskFault::LostRename),
                Some(_) => Err(format!(
                    "disk fault lostrename takes no argument, got {raw:?}"
                )),
            },
            other => Err(format!("unknown disk fault {other:?}")),
        }
    }
}

/// The filesystem operations a write-ahead log performs, in the order a
/// log performs them. Implementations own the open file handle; `open`
/// must be called before any other method.
pub trait Storage: Send + fmt::Debug {
    /// Opens (creating if absent) the log at `path` and returns its
    /// entire current contents, leaving the handle positioned at the end.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn open(&mut self, path: &Path) -> io::Result<Vec<u8>>;

    /// Truncates the log to `len` bytes and repositions for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn truncate(&mut self, len: u64) -> io::Result<()>;

    /// Appends `bytes` to the log — the log-before-send durability point.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Writes `bytes` to a sibling temp file and syncs its data — the
    /// first half of an atomic log replacement.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn stage_replacement(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Renames the staged temp file over the log and reopens the handle
    /// at the new end.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn commit_replacement(&mut self) -> io::Result<()>;

    /// Syncs the log's parent directory, making a committed replacement
    /// durable against power loss. Without this, a rename can survive
    /// `sync_data` on the file yet vanish with the directory entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn sync_dir(&mut self) -> io::Result<()>;
}

/// [`Storage`] over the real filesystem via `std::fs`.
#[derive(Debug, Default)]
pub struct RealStorage {
    path: PathBuf,
    file: Option<File>,
}

impl RealStorage {
    /// A storage layer with no file open yet.
    #[must_use]
    pub fn new() -> Self {
        RealStorage::default()
    }

    fn file(&mut self) -> io::Result<&mut File> {
        self.file
            .as_mut()
            .ok_or_else(|| io::Error::other("storage used before open"))
    }

    fn tmp_path(&self) -> PathBuf {
        self.path.with_extension("tmp")
    }
}

impl Storage for RealStorage {
    fn open(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        self.path = path.to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        self.file = Some(file);
        Ok(bytes)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let file = self.file()?;
        file.set_len(len)?;
        file.seek(SeekFrom::Start(len))?;
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file()?.write_all(bytes)
    }

    fn stage_replacement(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(self.tmp_path())?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn commit_replacement(&mut self) -> io::Result<()> {
        std::fs::rename(self.tmp_path(), &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = Some(file);
        Ok(())
    }

    fn sync_dir(&mut self) -> io::Result<()> {
        let parent = self
            .path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| Path::new("."));
        File::open(parent)?.sync_all()
    }
}

/// [`Storage`] that executes a [`DiskFault`] list over [`RealStorage`].
/// Operation counters start at the fault layer's construction, i.e. one
/// node incarnation.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: RealStorage,
    faults: Vec<DiskFault>,
    appends: u64,
    syncs: u64,
}

impl FaultyStorage {
    /// Wraps a fresh [`RealStorage`] with `faults`.
    #[must_use]
    pub fn new(faults: Vec<DiskFault>) -> Self {
        FaultyStorage {
            inner: RealStorage::new(),
            faults,
            appends: 0,
            syncs: 0,
        }
    }

    /// The injected sync failure for the current sync count, if any.
    fn sync_fault(&mut self) -> io::Result<()> {
        self.syncs += 1;
        for f in &self.faults {
            if let DiskFault::FsyncErr { nth } = f {
                if *nth == self.syncs {
                    return Err(io::Error::other(format!(
                        "injected fsync error (sync #{})",
                        self.syncs
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Storage for FaultyStorage {
    fn open(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.open(path)?;
        for f in &self.faults {
            if let DiskFault::Flip { offset } = f {
                if let Some(b) = bytes.get_mut(*offset as usize) {
                    *b ^= 0x01;
                }
            }
        }
        Ok(bytes)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.appends += 1;
        for f in &self.faults {
            match f {
                DiskFault::ShortWrite { nth } if *nth == self.appends => {
                    // Half the bytes land; the caller is told all did.
                    return self.inner.append(&bytes[..bytes.len() / 2]);
                }
                DiskFault::Enospc { nth } if *nth == self.appends => {
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        format!("injected ENOSPC (append #{})", self.appends),
                    ));
                }
                _ => {}
            }
        }
        self.inner.append(bytes)
    }

    fn stage_replacement(&mut self, bytes: &[u8]) -> io::Result<()> {
        // Staging ends in a data sync; an injected sync failure aborts
        // the replacement before anything is renamed.
        self.sync_fault()?;
        self.inner.stage_replacement(bytes)
    }

    fn commit_replacement(&mut self) -> io::Result<()> {
        self.inner.commit_replacement()?;
        if self.faults.contains(&DiskFault::LostRename) {
            // The rename "succeeded" but its directory entry is never
            // durable: the path vanishes while the open handle keeps
            // accepting writes into the orphaned inode.
            std::fs::remove_file(&self.inner.path)?;
        }
        Ok(())
    }

    fn sync_dir(&mut self) -> io::Result<()> {
        self.sync_fault()?;
        self.inner.sync_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn disk_fault_grammar_round_trips() {
        let faults = [
            DiskFault::Flip { offset: 8 },
            DiskFault::ShortWrite { nth: 3 },
            DiskFault::FsyncErr { nth: 1 },
            DiskFault::Enospc { nth: 5 },
            DiskFault::LostRename,
        ];
        for f in faults {
            let spec = f.to_string();
            assert_eq!(spec.parse::<DiskFault>(), Ok(f), "spec {spec:?}");
        }
        for bad in ["flip", "short@x", "lostrename@3", "melt@1", ""] {
            assert!(bad.parse::<DiskFault>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn real_storage_appends_truncates_and_replaces() {
        let path = temp_path("real.log");
        let _ = std::fs::remove_file(&path);
        let mut s = RealStorage::new();
        assert!(s.open(&path).unwrap().is_empty());
        s.append(b"hello ").unwrap();
        s.append(b"world").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        s.truncate(5).unwrap();
        s.append(b"!").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello!");
        s.stage_replacement(b"replaced").unwrap();
        s.commit_replacement().unwrap();
        s.sync_dir().unwrap();
        s.append(b" tail").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"replaced tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flip_applies_only_within_the_file() {
        let path = temp_path("flip.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FaultyStorage::new(vec![DiskFault::Flip { offset: 2 }]);
        assert!(
            s.open(&path).unwrap().is_empty(),
            "flip beyond EOF is a no-op"
        );
        s.append(b"abcd").unwrap();
        drop(s);
        let mut s = FaultyStorage::new(vec![DiskFault::Flip { offset: 2 }]);
        assert_eq!(s.open(&path).unwrap(), b"ab\x62d", "low bit of 'c' flipped");
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd", "disk unchanged");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_write_halves_the_nth_append() {
        let path = temp_path("short.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FaultyStorage::new(vec![DiskFault::ShortWrite { nth: 2 }]);
        s.open(&path).unwrap();
        s.append(b"full").unwrap();
        s.append(b"torn").unwrap(); // only "to" lands
        s.append(b"more").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"fulltomore");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_fails_the_nth_append_without_writing() {
        let path = temp_path("enospc.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FaultyStorage::new(vec![DiskFault::Enospc { nth: 2 }]);
        s.open(&path).unwrap();
        s.append(b"ok").unwrap();
        let err = s.append(b"doomed").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(std::fs::read(&path).unwrap(), b"ok");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_error_aborts_staging_before_the_rename() {
        let path = temp_path("fsyncerr.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FaultyStorage::new(vec![DiskFault::FsyncErr { nth: 1 }]);
        s.open(&path).unwrap();
        s.append(b"original").unwrap();
        assert!(s.stage_replacement(b"new").is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"original",
            "a failed stage leaves the log untouched"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lost_rename_vanishes_the_log_but_not_the_handle() {
        let path = temp_path("lostrename.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FaultyStorage::new(vec![DiskFault::LostRename]);
        s.open(&path).unwrap();
        s.append(b"history").unwrap();
        s.stage_replacement(b"compacted").unwrap();
        s.commit_replacement().unwrap();
        assert!(!path.exists(), "the directory entry was lost");
        // The orphaned inode still accepts writes without erroring.
        s.append(b" tail").unwrap();
        // A later open finds an empty, freshly created log: amnesia.
        let mut fresh = RealStorage::new();
        assert!(fresh.open(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
