//! Adversary conformance over real sockets: each adversary class the
//! simulator exercises — Byzantine two-faced, silent, crashing — gets a
//! loopback-cluster run asserting the same two safety properties the
//! paper's proofs give for it: **agreement** (no two correct processes
//! decide differently) and **validity** (a unanimous correct input is the
//! only decidable value).
//!
//! These are the socket-runtime counterparts of the simnet adversary
//! tests; the `dst` fuzzer leans on the same properties when it compares
//! the two runtimes on shared-seed scenarios.

use std::time::Duration;

use netstack::{sockets_available, Cluster, ClusterOptions, CrashPlan, NodeFault, Proto};
use simnet::{RunStatus, Value};

/// Generous per-test deadline: loopback consensus finishes in milliseconds,
/// but CI machines under load deserve slack.
const DEADLINE: Duration = Duration::from_secs(60);

macro_rules! require_sockets {
    () => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
    };
}

/// Byzantine: the Figure 2 malicious protocol against a two-faced
/// attacker, n=4 k=1. Accepting a value needs more than `(n+k)/2 = 2.5`
/// echoes; the lone attacker can add at most one echo for `Zero`, so the
/// three correct processes (unanimous `One`) can only ever decide `One`.
#[test]
fn byzantine_two_faced_keeps_agreement_and_validity() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 0xADE_0001,
        inputs: vec![Value::One; 4],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::TwoFaced,
        ],
        ..ClusterOptions::default()
    };
    let mut cluster =
        Cluster::spawn(4, 1, Proto::Malicious, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped, "all correct decided");
    assert!(report.agreement(), "agreement despite the two-faced peer");
    for i in 0..3 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
}

/// Silent: the fail-stop protocol with two peers that boot, handshake, and
/// then never send, n=5 k=2. The three talkative processes meet the
/// `n-k = 3` per-phase quota among themselves and must decide their
/// unanimous `Zero`.
#[test]
fn silent_peers_keep_agreement_and_validity() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 0xADE_0002,
        inputs: vec![Value::Zero; 5],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Silent,
            NodeFault::Silent,
        ],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(5, 2, Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped, "all correct decided");
    assert!(report.agreement(), "agreement despite silent peers");
    for i in 0..3 {
        assert_eq!(report.decisions[i], Some(Value::Zero), "validity at p{i}");
    }
}

/// Crash: the §4.1 simple variant with both crash flavours — one peer dies
/// mid-broadcast (a split broadcast, the classic fail-stop hazard) and one
/// on entering phase 1 — n=7 k=2. Deciding needs more than
/// `(n+k)/2 = 4.5` same-value messages, so the five unanimous survivors
/// are exactly enough (this is the variant's `n > 3k` liveness condition:
/// with `n = 5, k = 2` the survivors could never decide).
#[test]
fn crashing_peers_keep_agreement_and_validity() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 0xADE_0003,
        inputs: vec![Value::One; 7],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Crash(CrashPlan::AfterSends(2)),
            NodeFault::Crash(CrashPlan::AtPhase(1)),
        ],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(7, 2, Proto::Simple, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped, "all correct decided");
    assert!(report.agreement(), "agreement despite crashes");
    for i in 0..5 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
}
