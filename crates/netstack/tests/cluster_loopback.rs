//! Loopback cluster integration: the paper's protocols reaching consensus
//! over real TCP sockets, under process faults, Byzantine attackers, and
//! injected link faults.
//!
//! Every test binds OS-assigned ports on 127.0.0.1 and skips gracefully
//! (with a note on stderr) where the sandbox forbids sockets. Runs are
//! seeded and wall-clock-bounded; the bounds are generous because the OS
//! scheduler — unlike the simulator's — is not ours to control.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use netstack::{
    sockets_available, Cluster, ClusterOptions, CrashPlan, FaultPlan, NodeFault, Proto,
};
use obs::{parse_trace, render_report, JsonlSink, PhaseAggregator};
use simnet::{RunStatus, SharedSubscriber, Value};

/// Generous per-test deadline: loopback consensus finishes in milliseconds,
/// but CI machines under load deserve slack.
const DEADLINE: Duration = Duration::from_secs(60);

macro_rules! require_sockets {
    () => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
    };
}

/// The acceptance-criteria run: the Figure 2 malicious protocol, n=7 k=2,
/// five correct processes starting at `One` against one two-faced
/// Byzantine attacker plus one process that crashes mid-broadcast, over
/// real sockets, with a JSONL trace that `btreport`'s pipeline can
/// consume.
///
/// Correctness of the expected verdict: deciding needs more than
/// `(n+k)/2 = 4.5` accepted messages for one value; the attacker and the
/// crasher together can back `Zero` with at most 2, so only `One` —
/// validity — can ever be decided, and all five correct processes must
/// decide it.
#[test]
fn malicious_seven_nodes_byzantine_plus_crash_decide_over_tcp() {
    require_sockets!();
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    let options = ClusterOptions {
        seed: 0xB7_1983,
        inputs: vec![Value::One; 7],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::TwoFaced,
            NodeFault::Crash(CrashPlan::AfterSends(3)),
        ],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(
        7,
        2,
        Proto::Malicious,
        options,
        Some(sink.clone() as SharedSubscriber),
    )
    .expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped, "all correct decided");
    assert!(report.agreement(), "agreement over real sockets");
    for i in 0..5 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
    assert!(report.metrics.messages_sent > 0);

    // The JSONL trace feeds the same pipeline btreport uses.
    let contents = sink.lock().unwrap().contents();
    let lines = parse_trace(&contents).expect("networked trace parses");
    assert!(lines.len() > 2, "run brackets plus events");
    let rendered = render_report(&lines);
    assert!(
        rendered.contains("decided"),
        "report mentions decisions:\n{rendered}"
    );
}

/// Fail-stop protocol, n=7 k=2, with both crash flavours: one process
/// dies mid-broadcast (splitting it) and one dies on entering phase 1.
/// The five survivors exceed the `n-k` quota and must decide.
#[test]
fn failstop_survives_two_crashes_over_tcp() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 7,
        inputs: vec![Value::One; 7],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Crash(CrashPlan::AfterSends(3)),
            NodeFault::Crash(CrashPlan::AtPhase(1)),
        ],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(7, 2, Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    for i in 0..5 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
}

/// Link faults: uniform per-message delay plus a partition that heals.
/// Both only postpone delivery, so the §2.1 reliable-channel assumption
/// still holds and the simple protocol must still terminate.
#[test]
fn simple_protocol_decides_through_delay_and_healing_partition() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 21,
        inputs: vec![Value::Zero; 4],
        link_fault: FaultPlan::reliable()
            .with_delay(Duration::from_millis(1), Duration::from_millis(8))
            .with_partition(4, &[0, 1], Duration::from_millis(150)),
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(4, 1, Proto::Simple, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    assert_eq!(report.decisions[0], Some(Value::Zero), "validity");
}

/// The Ben-Or baseline also runs over the socket runtime — the runtime is
/// protocol-agnostic, exactly like the simulator.
#[test]
fn benor_decides_over_tcp() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 5,
        inputs: vec![Value::One; 5],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(5, 1, Proto::BenOr, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    assert_eq!(report.decisions[0], Some(Value::One), "unanimous input");
}

/// The `PhaseAggregator` sink consumes a networked run exactly as it does
/// a simulated one: per-phase counters populate and the run is recorded.
#[test]
fn phase_aggregator_consumes_networked_runs() {
    require_sockets!();
    let agg = Arc::new(Mutex::new(PhaseAggregator::new()));
    let options = ClusterOptions {
        seed: 3,
        inputs: vec![Value::One; 4],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(
        4,
        1,
        Proto::FailStop,
        options,
        Some(agg.clone() as SharedSubscriber),
    )
    .expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    let agg = agg.lock().unwrap();
    assert!(!agg.phases().is_empty(), "per-phase stats were collected");
}
