//! Loopback cluster integration: the paper's protocols reaching consensus
//! over real TCP sockets, under process faults, Byzantine attackers, and
//! injected link faults.
//!
//! Every test binds OS-assigned ports on 127.0.0.1 and skips gracefully
//! (with a note on stderr) where the sandbox forbids sockets. Runs are
//! seeded and wall-clock-bounded; the bounds are generous because the OS
//! scheduler — unlike the simulator's — is not ours to control.

use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bt_core::{Config, Malicious, MaliciousKind, MaliciousMsg, Phase};
use netstack::{
    sockets_available, spawn, write_frame, Cluster, ClusterOptions, CrashPlan, FaultPlan, Frame,
    NodeConfig, NodeFault, Proto,
};
use obs::{parse_trace, render_report, JsonlSink, PhaseAggregator};
use simnet::{ProcessId, RunStatus, SharedSubscriber, Value, Wire};

/// Generous per-test deadline: loopback consensus finishes in milliseconds,
/// but CI machines under load deserve slack.
const DEADLINE: Duration = Duration::from_secs(60);

macro_rules! require_sockets {
    () => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
    };
}

/// The acceptance-criteria run: the Figure 2 malicious protocol, n=7 k=2,
/// five correct processes starting at `One` against one two-faced
/// Byzantine attacker plus one process that crashes mid-broadcast, over
/// real sockets, with a JSONL trace that `btreport`'s pipeline can
/// consume.
///
/// Correctness of the expected verdict: deciding needs more than
/// `(n+k)/2 = 4.5` accepted messages for one value; the attacker and the
/// crasher together can back `Zero` with at most 2, so only `One` —
/// validity — can ever be decided, and all five correct processes must
/// decide it.
#[test]
fn malicious_seven_nodes_byzantine_plus_crash_decide_over_tcp() {
    require_sockets!();
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    let options = ClusterOptions {
        seed: 0xB7_1983,
        inputs: vec![Value::One; 7],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::TwoFaced,
            NodeFault::Crash(CrashPlan::AfterSends(3)),
        ],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(
        7,
        2,
        Proto::Malicious,
        options,
        Some(sink.clone() as SharedSubscriber),
    )
    .expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped, "all correct decided");
    assert!(report.agreement(), "agreement over real sockets");
    for i in 0..5 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
    assert!(report.metrics.messages_sent > 0);

    // The JSONL trace feeds the same pipeline btreport uses.
    let contents = sink.lock().unwrap().contents();
    let lines = parse_trace(&contents).expect("networked trace parses");
    assert!(lines.len() > 2, "run brackets plus events");
    let rendered = render_report(&lines);
    assert!(
        rendered.contains("decided"),
        "report mentions decisions:\n{rendered}"
    );
}

/// Fail-stop protocol, n=7 k=2, with both crash flavours: one process
/// dies mid-broadcast (splitting it) and one dies on entering phase 1.
/// The five survivors exceed the `n-k` quota and must decide.
#[test]
fn failstop_survives_two_crashes_over_tcp() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 7,
        inputs: vec![Value::One; 7],
        faults: vec![
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Correct,
            NodeFault::Crash(CrashPlan::AfterSends(3)),
            NodeFault::Crash(CrashPlan::AtPhase(1)),
        ],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(7, 2, Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    for i in 0..5 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
}

/// Link faults: uniform per-message delay plus a partition that heals.
/// Both only postpone delivery, so the §2.1 reliable-channel assumption
/// still holds and the simple protocol must still terminate.
#[test]
fn simple_protocol_decides_through_delay_and_healing_partition() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 21,
        inputs: vec![Value::Zero; 4],
        link_fault: FaultPlan::reliable()
            .with_delay(Duration::from_millis(1), Duration::from_millis(8))
            .with_partition(4, &[0, 1], Duration::from_millis(150)),
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(4, 1, Proto::Simple, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    assert_eq!(report.decisions[0], Some(Value::Zero), "validity");
}

/// The Ben-Or baseline also runs over the socket runtime — the runtime is
/// protocol-agnostic, exactly like the simulator.
#[test]
fn benor_decides_over_tcp() {
    require_sockets!();
    let options = ClusterOptions {
        seed: 5,
        inputs: vec![Value::One; 5],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(5, 1, Proto::BenOr, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    assert_eq!(report.decisions[0], Some(Value::One), "unanimous input");
}

/// Regression for the wire-validation layer: a Byzantine peer speaking
/// well-formed frames whose *contents* are hostile — an `Echo` naming a
/// subject outside the system, and a sequence number that skips ahead —
/// must not kill any node or block consensus.
///
/// Before validation, the out-of-range subject panicked the event loop
/// (`echo_count[subject.index()]`) and the node hung silently. Now the
/// payload dies at the reader (`wire_rejected`), the skipped seq is
/// counted and dropped (`seq_gaps`), and the three correct nodes decide:
/// with n=4, k=1 they exceed both the `n−k = 3` quota and the
/// `(n+k)/2 = 2.5` echo quorum among themselves.
#[test]
fn out_of_range_subject_bytes_do_not_kill_liveness() {
    require_sockets!();
    let n = 4;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();

    // Nodes 1..3 are honest; the test itself plays Byzantine "p0" on the
    // listener it kept.
    let config = Config::malicious(n, 1).expect("within the malicious bound");
    let mut nodes = Vec::new();
    let mut listeners = listeners.into_iter();
    let p0_listener = listeners.next().expect("p0 listener");
    for (i, listener) in listeners.enumerate() {
        let id = i + 1;
        let cfg = NodeConfig::new(
            ProcessId::new(id),
            n,
            0xBAD_BEEF + id as u64,
            FaultPlan::reliable(),
        );
        let node = spawn(
            cfg,
            listener,
            addrs.clone(),
            Box::new(Malicious::new(config, Value::One)),
            None,
        )
        .expect("loopback spawn");
        nodes.push(node);
    }
    drop(p0_listener); // p0 never answers; honest senders just redial

    // The attack: per node, a valid handshake followed by a well-formed
    // Echo whose subject (77) is outside the n=4 system, then a frame
    // whose sequence number skips ahead.
    let hostile = MaliciousMsg {
        kind: MaliciousKind::Echo,
        subject: ProcessId::new(77),
        value: Value::One,
        phase: Phase::At(0),
    };
    let mut attack_conns = Vec::new();
    for addr in &addrs[1..] {
        let mut conn = TcpStream::connect(addr).expect("dial victim");
        write_frame(
            &mut conn,
            &Frame::Hello {
                from: ProcessId::new(0),
            },
        )
        .expect("hello");
        write_frame(
            &mut conn,
            &Frame::Msg {
                seq: 0,
                payload: hostile.to_bytes(),
            },
        )
        .expect("hostile echo");
        write_frame(
            &mut conn,
            &Frame::Msg {
                seq: 100,
                payload: hostile.to_bytes(),
            },
        )
        .expect("seq gap");
        attack_conns.push(conn); // keep open: EOF must not be the savior
    }

    // Liveness: every honest node decides One despite the attack.
    let deadline = Instant::now() + DEADLINE;
    loop {
        assert!(
            nodes.iter().all(|node| !node.died()),
            "no event loop may die on hostile bytes"
        );
        if nodes.iter().all(|node| node.decision().is_some()) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "nodes must decide despite attack"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The hostile frames race the decision: a node can decide off the
    // honest traffic before its reader has consumed the attack bytes, so
    // poll for the counters rather than asserting a snapshot.
    let counters = Instant::now() + DEADLINE;
    for node in &nodes {
        assert_eq!(node.decision(), Some(Value::One), "validity under attack");
        while (node.wire_rejected() < 1 || node.seq_gaps() < 1) && Instant::now() < counters {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            node.wire_rejected() >= 1,
            "the out-of-range subject was rejected at the wire"
        );
        assert!(node.seq_gaps() >= 1, "the skipped seq was counted, dropped");
    }
    drop(attack_conns);
    for mut node in nodes {
        node.shutdown();
    }
}

/// The `PhaseAggregator` sink consumes a networked run exactly as it does
/// a simulated one: per-phase counters populate and the run is recorded.
#[test]
fn phase_aggregator_consumes_networked_runs() {
    require_sockets!();
    let agg = Arc::new(Mutex::new(PhaseAggregator::new()));
    let options = ClusterOptions {
        seed: 3,
        inputs: vec![Value::One; 4],
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(
        4,
        1,
        Proto::FailStop,
        options,
        Some(agg.clone() as SharedSubscriber),
    )
    .expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    let agg = agg.lock().unwrap();
    assert!(!agg.phases().is_empty(), "per-phase stats were collected");
}
