//! Crash-recovery integration: nodes restarted from their write-ahead
//! logs rejoin the cluster without equivocating.
//!
//! The property under test is wire-level, not just state-level: a
//! restarted node may only ever re-send **byte-identical** frames under
//! sequence numbers it used before the crash. Peers absorb those replays
//! through seq-dedup; a node that re-sent *different* bytes for a seq it
//! had already used would be manufacturing equivocation out of a benign
//! crash, which is exactly what the log-before-send invariant forbids.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use bt_core::{Config, FailStop, FailStopMsg};
use netstack::{
    read_frame, sockets_available, spawn, write_frame, Cluster, ClusterOptions, FaultPlan, Frame,
    NodeConfig, RecoveryOptions,
};
use simnet::{ProcessId, RunStatus, Value, Wire};

const DEADLINE: Duration = Duration::from_secs(60);

macro_rules! require_sockets {
    () => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
    };
}

/// A scratch directory under the system temp dir, unique to this test
/// process, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("btrec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Reads frames from one accepted connection until `window` elapses with
/// no traffic, returning every `Msg` frame as `(seq, payload)`.
fn capture_msgs(listener: &TcpListener, window: Duration) -> Vec<(u64, Vec<u8>)> {
    let (mut conn, _) = listener.accept().expect("node dials the fake peer");
    conn.set_read_timeout(Some(window)).expect("read timeout");
    let mut msgs = Vec::new();
    loop {
        match read_frame(&mut conn) {
            Ok(Frame::Msg { seq, payload }) => msgs.push((seq, payload)),
            Ok(_) => {}
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::UnexpectedEof =>
            {
                break;
            }
            Err(e) => panic!("unexpected read error from node under test: {e}"),
        }
    }
    msgs
}

/// Like [`capture_msgs`], but tolerant of husks: a crashing incarnation
/// can die between redialing a peer and writing anything, leaving an
/// empty connection in the accept queue ahead of the restarted node's
/// live one. Skip such connections until real frames arrive.
fn capture_replay(listener: &TcpListener, window: Duration) -> Vec<(u64, Vec<u8>)> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let msgs = capture_msgs(listener, window);
        if !msgs.is_empty() || std::time::Instant::now() >= deadline {
            return msgs;
        }
    }
}

/// Satellite (d): kill a WAL-journaling node and restart it from the log;
/// every frame it re-sends under a previously-used sequence number must
/// be byte-for-byte identical to the original. The fake peers never ack,
/// so the entire backlog is re-offered after the restart.
#[test]
fn restarted_node_resends_byte_identical_frames() {
    require_sockets!();
    let scratch = ScratchDir::new("identical");
    let n = 3;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let mut listeners = listeners.into_iter();
    let node_listener = listeners.next().expect("node 0 listener");
    let relisten = node_listener.try_clone().expect("retain the port");
    let fake_peers: Vec<TcpListener> = listeners.collect();

    let config = Config::fail_stop(n, 1).expect("within the fail-stop bound");
    let cfg = NodeConfig {
        id: ProcessId::new(0),
        n,
        seed: 42,
        k: 1,
        fault: FaultPlan::reliable(),
        expect_history: false,
        wal: Some(scratch.0.join("node0.wal")),
        snapshot_every: 0, // replay from genesis: the hardest replay path
        metrics: None,
    };
    let mut node = spawn(
        cfg.clone(),
        node_listener,
        addrs.clone(),
        Box::new(FailStop::new(config, Value::One)),
        None,
    )
    .expect("boot incarnation one");

    // Feed one message from "peer 1" so the WAL holds a real delivery
    // (beyond the node's own self-delivery) and the state advances.
    let mut from_p1 = TcpStream::connect(addrs[0]).expect("dial node 0");
    write_frame(
        &mut from_p1,
        &Frame::Hello {
            from: ProcessId::new(1),
        },
    )
    .expect("hello");
    let msg = FailStopMsg {
        phase: 0,
        value: Value::One,
        cardinality: 1,
    };
    write_frame(
        &mut from_p1,
        &Frame::Msg {
            seq: 0,
            payload: msg.to_bytes(),
        },
    )
    .expect("deliver from peer 1");

    // Capture everything the first incarnation sends to each peer.
    let window = Duration::from_millis(600);
    let first: Vec<Vec<(u64, Vec<u8>)>> =
        fake_peers.iter().map(|l| capture_msgs(l, window)).collect();
    assert!(
        first.iter().all(|msgs| !msgs.is_empty()),
        "the node broadcast something before the crash"
    );

    // Crash. Nothing was ever acked, so the WAL is the only survivor.
    node.shutdown();
    drop(from_p1);

    let config = Config::fail_stop(n, 1).expect("within the fail-stop bound");
    let mut node = spawn(
        cfg,
        relisten,
        addrs,
        Box::new(FailStop::new(config, Value::One)),
        None,
    )
    .expect("boot incarnation two from the WAL");
    assert!(
        node.status().recovered >= 2,
        "both logged deliveries (self + peer 1) were replayed"
    );

    let second: Vec<Vec<(u64, Vec<u8>)>> = fake_peers
        .iter()
        .map(|l| capture_replay(l, window))
        .collect();
    node.shutdown();

    // No equivocation, checked at the wire: every seq the first
    // incarnation used reappears with identical bytes.
    for (peer, (before, after)) in first.iter().zip(&second).enumerate() {
        let replayed: HashMap<u64, &Vec<u8>> =
            after.iter().map(|(seq, bytes)| (*seq, bytes)).collect();
        assert!(
            !before.is_empty() && !after.is_empty(),
            "traffic flowed to fake peer {peer} in both incarnations"
        );
        for (seq, bytes) in before {
            let again = replayed.get(seq).unwrap_or_else(|| {
                panic!("fake peer {peer}: unacked seq {seq} was not re-sent after restart")
            });
            assert_eq!(
                *again, bytes,
                "fake peer {peer}: restarted node re-sent different bytes for seq {seq}"
            );
        }
    }
}

/// The poll-loop ownership handoff: a restarted incarnation inherits the
/// listening socket via `try_clone`, registers it with a fresh poller in
/// a new event-loop thread, and must still accept inbound dials and
/// deliver frames. This is the regression the event-driven rewrite could
/// have introduced silently — with one thread owning every socket, the
/// listener's edge-triggered readiness must not be stranded in the dead
/// incarnation's (closed) poller, and the supervisor restart path leans
/// on exactly this handoff.
#[test]
fn relistened_socket_accepts_dials_in_the_next_event_loop() {
    require_sockets!();
    let scratch = ScratchDir::new("handoff");
    let n = 3;
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect();
    let mut listeners = listeners.into_iter();
    let node_listener = listeners.next().expect("node 0 listener");
    let relisten = node_listener.try_clone().expect("retain the port");
    let _fake_peers: Vec<TcpListener> = listeners.collect();

    let config = Config::fail_stop(n, 1).expect("within the fail-stop bound");
    let cfg = NodeConfig {
        id: ProcessId::new(0),
        n,
        seed: 7,
        k: 1,
        fault: FaultPlan::reliable(),
        expect_history: false,
        wal: Some(scratch.0.join("node0.wal")),
        snapshot_every: 0,
        metrics: None,
    };
    let mut node = spawn(
        cfg.clone(),
        node_listener,
        addrs.clone(),
        Box::new(FailStop::new(config, Value::One)),
        None,
    )
    .expect("boot incarnation one");

    // Incarnation one accepts a dial and delivers a frame, so the
    // listener's readiness has been consumed inside the first event
    // loop's poller before the handoff.
    let baseline = node.status().steps;
    let mut from_p1 = TcpStream::connect(addrs[0]).expect("dial incarnation one");
    write_frame(
        &mut from_p1,
        &Frame::Hello {
            from: ProcessId::new(1),
        },
    )
    .expect("hello");
    let msg = FailStopMsg {
        phase: 0,
        value: Value::One,
        cardinality: 1,
    };
    write_frame(
        &mut from_p1,
        &Frame::Msg {
            seq: 0,
            payload: msg.to_bytes(),
        },
    )
    .expect("deliver from peer 1");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while node.status().steps <= baseline {
        assert!(
            std::time::Instant::now() < deadline,
            "incarnation one never delivered the frame"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    node.shutdown();
    drop(from_p1);

    // Incarnation two: same file descriptor, fresh poller, fresh thread.
    let config = Config::fail_stop(n, 1).expect("within the fail-stop bound");
    let mut node = spawn(
        cfg,
        relisten,
        addrs.clone(),
        Box::new(FailStop::new(config, Value::One)),
        None,
    )
    .expect("boot incarnation two from the WAL");
    assert!(
        node.status().recovered >= 2,
        "the WAL replayed before the new loop took over"
    );

    // A fresh dial must be accepted by the new loop, and the cumulative
    // ack proves the full inbound path — accept, read, dedup against the
    // recovered seq table, deliver, journal, write back — runs there:
    // `next = 2` covers seq 0 (delivered by incarnation one, replayed
    // from the WAL) plus seq 1 (delivered live by incarnation two).
    let mut from_p1 = TcpStream::connect(addrs[0]).expect("dial incarnation two");
    write_frame(
        &mut from_p1,
        &Frame::Hello {
            from: ProcessId::new(1),
        },
    )
    .expect("hello to the new loop");
    let msg = FailStopMsg {
        phase: 0,
        value: Value::One,
        cardinality: 2,
    };
    write_frame(
        &mut from_p1,
        &Frame::Msg {
            seq: 1,
            payload: msg.to_bytes(),
        },
    )
    .expect("deliver to the new loop");
    from_p1
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    loop {
        match read_frame(&mut from_p1) {
            Ok(Frame::Ack { next }) if next >= 2 => break,
            Ok(_) => {}
            Err(e) => panic!("no cumulative ack from the restarted event loop: {e}"),
        }
    }
    node.shutdown();
}

/// The cluster supervisor executes a scheduled crash-restart: node 1 is
/// killed mid-consensus and restarted from its WAL. All correct nodes —
/// the restarted one included — decide, agree, and observe zero
/// equivocations.
#[test]
fn supervisor_restarts_scheduled_crash_and_cluster_decides() {
    require_sockets!();
    let scratch = ScratchDir::new("supervised");
    let options = ClusterOptions {
        seed: 0x5EC0_7E12,
        inputs: vec![Value::One; 4],
        // Delay stretches the run so the kill lands mid-consensus on fast
        // machines; correctness must hold either way.
        link_fault: FaultPlan::reliable()
            .with_delay(Duration::from_millis(1), Duration::from_millis(6))
            .with_crash(1, Duration::from_millis(25), Duration::from_millis(80)),
        recovery: Some(RecoveryOptions {
            wal_dir: scratch.0.clone(),
            snapshot_every: 8,
            max_restarts: 4,
            backoff: Duration::from_millis(5),
        }),
        ..ClusterOptions::default()
    };
    let mut cluster =
        Cluster::spawn(4, 1, netstack::Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);

    assert_eq!(report.status, RunStatus::Stopped, "all nodes decided");
    assert!(report.agreement(), "agreement across the crash-restart");
    for i in 0..4 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
    assert!(
        cluster.restarts()[1] >= 1,
        "the supervisor restarted node 1 at least once"
    );
    for (i, node) in cluster.nodes().iter().enumerate() {
        assert_eq!(
            node.equivocations(),
            0,
            "p{i} observed an equivocation — a restarted node re-sent different bytes"
        );
    }
    cluster.shutdown();
}

/// An unscheduled death is also recovered: a node whose WAL directory is
/// present but whose event loop is killed out-of-band comes back through
/// the same restart path. Here we exercise the budget instead: with
/// recovery configured but no crash schedule, a healthy run must perform
/// zero restarts and still decide — the supervisor must not meddle.
#[test]
fn supervisor_is_inert_on_a_healthy_run() {
    require_sockets!();
    let scratch = ScratchDir::new("inert");
    let options = ClusterOptions {
        seed: 9,
        inputs: vec![Value::Zero; 4],
        recovery: Some(RecoveryOptions::in_dir(scratch.0.clone())),
        ..ClusterOptions::default()
    };
    let mut cluster =
        Cluster::spawn(4, 1, netstack::Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);
    cluster.shutdown();

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement());
    assert_eq!(report.decisions[0], Some(Value::Zero), "validity");
    assert!(
        cluster.restarts().iter().all(|&r| r == 0),
        "no restarts on a healthy run"
    );
}

/// Instant checkpoint cadence: with `snapshot_every: 1` the WAL compacts
/// aggressively, so a scheduled crash restarts from a snapshot rather
/// than genesis — the snapshot path must preserve agreement and
/// no-equivocation exactly like full replay.
#[test]
fn snapshot_restart_preserves_agreement() {
    require_sockets!();
    let scratch = ScratchDir::new("snapshot");
    let options = ClusterOptions {
        seed: 77,
        inputs: vec![Value::One, Value::Zero, Value::One, Value::One],
        link_fault: FaultPlan::reliable()
            .with_delay(Duration::from_millis(1), Duration::from_millis(5))
            .with_crash(2, Duration::from_millis(20), Duration::from_millis(60)),
        recovery: Some(RecoveryOptions {
            wal_dir: scratch.0.clone(),
            snapshot_every: 1,
            max_restarts: 4,
            backoff: Duration::from_millis(5),
        }),
        ..ClusterOptions::default()
    };
    let mut cluster =
        Cluster::spawn(4, 1, netstack::Proto::FailStop, options, None).expect("loopback spawn");
    let report = cluster.await_verdict(DEADLINE);

    assert_eq!(report.status, RunStatus::Stopped);
    assert!(report.agreement(), "agreement across a snapshot restart");
    for (i, node) in cluster.nodes().iter().enumerate() {
        assert_eq!(node.equivocations(), 0, "no equivocation observed at p{i}");
    }
    cluster.shutdown();

    // The run must complete promptly even with per-step checkpointing;
    // sanity-check the WALs actually exist on disk.
    let wals = std::fs::read_dir(&scratch.0)
        .expect("wal dir readable")
        .count();
    assert_eq!(wals, 4, "one WAL per node");
}
