//! Amnesia-tolerant recovery, end to end over real sockets: a correct
//! node is SIGKILLed mid-consensus, a storage fault flips a byte in the
//! middle of its write-ahead log, and the supervised restart must detect
//! the corruption, refuse to replay the poisoned state, and rejoin by
//! fetching state confirmed by a quorum of peers — all without a single
//! equivocation on the wire.
//!
//! This is the ISSUE's acceptance scenario as an in-tree test; the same
//! shape runs as a shell smoke leg in `scripts/smoke_recovery.sh`.

use std::time::Duration;

use netstack::{
    sockets_available, Cluster, ClusterOptions, DiskFault, FaultPlan, Proto, RecoveryOptions,
    WalDamage,
};
use simnet::{RunStatus, Value};

const DEADLINE: Duration = Duration::from_secs(60);

macro_rules! require_sockets {
    () => {
        if !sockets_available() {
            eprintln!("skipping: loopback sockets unavailable in this sandbox");
            return;
        }
    };
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bt-amnesia-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The seeded acceptance run: n=4 k=1 fail-stop, node 2 killed at 30ms
/// and restarted at 90ms onto a WAL whose byte at offset 8 — inside the
/// boot record's body — has been flipped by the injected storage layer.
///
/// Required outcome: the corruption is detected (`bt_wal_corruptions_total
/// ≥ 1`), nobody equivocates, a quorum state transfer completes
/// (`bt_state_transfers_total ≥ 1`), and the verdict is unanimous — the
/// amnesiac rejoins as a learner carrying the quorum-confirmed decision.
#[test]
fn flipped_wal_byte_triggers_quorum_state_transfer() {
    require_sockets!();
    let wal_dir = scratch("flip");
    let victim = 2usize;
    let options = ClusterOptions {
        seed: 0xA3_1983,
        inputs: vec![Value::One; 4],
        link_fault: FaultPlan::reliable()
            .with_crash(victim, Duration::from_millis(30), Duration::from_millis(90))
            // Applied at every WAL open: a no-op on the first boot (the
            // file is empty, offset 8 is past EOF) and a mid-log flip on
            // the restart — exactly a bit rot discovered at reboot.
            .with_disk(victim, DiskFault::Flip { offset: 8 }),
        recovery: Some(RecoveryOptions::in_dir(&wal_dir)),
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(4, 1, Proto::FailStop, options, None).expect("spawn cluster");
    let report = cluster.await_verdict(DEADLINE);

    assert_eq!(report.status, RunStatus::Stopped, "every node decided");
    assert!(report.agreement(), "agreement despite the amnesiac");
    for i in 0..4 {
        assert_eq!(report.decisions[i], Some(Value::One), "validity at p{i}");
    }
    assert!(
        cluster.wal_corruptions() >= 1,
        "the flipped byte was detected as mid-log damage"
    );
    assert!(
        cluster.state_transfers() >= 1,
        "the amnesiac completed a quorum state transfer"
    );
    let equivocations: Vec<u64> = cluster.nodes().iter().map(|n| n.equivocations()).collect();
    assert!(
        equivocations.iter().all(|&e| e == 0),
        "zero equivocations: {equivocations:?}"
    );
    assert!(
        cluster.restarts().iter().sum::<u32>() >= 1,
        "the schedule actually restarted the victim"
    );
    let st = cluster.nodes()[victim].status();
    assert!(st.state_transferred, "the victim rejoined via transfer");
    cluster.shutdown();

    // The poisoned log was preserved as evidence, not truncated: the
    // damage must still be classified as mid-log on a later inspection.
    let (_, recovered) = netstack::Wal::open_with(
        wal_dir.join(format!("node{victim}.wal")),
        Box::new(netstack::FaultyStorage::new(vec![DiskFault::Flip {
            offset: 8,
        }])),
    )
    .expect("reopen the evidence");
    assert!(
        matches!(recovered.damage, WalDamage::MidLog { .. }),
        "evidence preserved: {:?}",
        recovered.damage
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// A vanished WAL is amnesia too: the victim's log is deleted while it is
/// down (the restart boots on an empty file with `expect_history` set by
/// the supervisor), so the node must refuse to masquerade as a fresh
/// process and instead rejoin through the quorum transfer path.
#[test]
fn lost_wal_on_restart_is_detected_and_transferred() {
    require_sockets!();
    let wal_dir = scratch("lost");
    let victim = 1usize;
    let options = ClusterOptions {
        seed: 0xBEE,
        inputs: vec![Value::One; 4],
        link_fault: FaultPlan::reliable()
            .with_crash(
                victim,
                Duration::from_millis(30),
                Duration::from_millis(120),
            )
            // LostRename never fires here (no compaction in so short a
            // run); the clause's presence routes the node through the
            // fault-injecting storage layer.
            .with_disk(victim, DiskFault::LostRename),
        recovery: Some(RecoveryOptions::in_dir(&wal_dir)),
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(4, 1, Proto::FailStop, options, None).expect("spawn cluster");

    // Erase the victim's journal while it is scheduled down. The kill
    // lands at 30ms; keep trying until the delete sticks or the restart
    // window closes.
    let path = wal_dir.join(format!("node{victim}.wal"));
    let erase_until = std::time::Instant::now() + Duration::from_millis(110);
    let mut erased = false;
    while std::time::Instant::now() < erase_until {
        std::thread::sleep(Duration::from_millis(10));
        if std::fs::remove_file(&path).is_ok() {
            erased = true;
            break;
        }
    }
    let report = cluster.await_verdict(DEADLINE);
    assert!(erased, "the victim's WAL was deleted while it was down");
    assert_eq!(report.status, RunStatus::Stopped, "every node decided");
    assert!(report.agreement());
    assert!(
        cluster.wal_corruptions() >= 1,
        "the lost log was detected (expect_history on restart)"
    );
    assert!(
        cluster.state_transfers() >= 1,
        "the amnesiac completed a quorum state transfer"
    );
    let equivocations: Vec<u64> = cluster.nodes().iter().map(|n| n.equivocations()).collect();
    assert!(
        equivocations.iter().all(|&e| e == 0),
        "zero equivocations: {equivocations:?}"
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}
