//! Integration: a live 4-node loopback cluster serves its telemetry over
//! HTTP while running, the exposition output is well-formed, and counters
//! behave like counters (monotone) across consecutive scrapes.

use std::time::Duration;

use netstack::{http_get, Cluster, ClusterOptions, Proto};
use obs::json::Json;
use obs::metrics::{MetricKind, Snapshot};
use simnet::{RunStatus, Value};

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Checks that `text` is parseable Prometheus text exposition 0.0.4:
/// every line is a comment or a `name[{labels}] value` sample, every
/// sample's family has a `# TYPE`, and histogram `_bucket` series are
/// cumulative with a closing `+Inf` equal to `_count`.
fn assert_exposition_well_formed(text: &str) {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    let mut bucket_last: HashMap<String, u64> = HashMap::new(); // series -> last cumulative
    let mut bucket_inf: HashMap<String, u64> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line names a family");
            let kind = it.next().expect("TYPE line names a kind");
            assert!(
                MetricKind::parse(kind).is_some(),
                "unknown TYPE {kind} in {line:?}"
            );
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comment
        }
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample has a value field");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            if value == "+Inf" {
                f64::INFINITY
            } else {
                panic!("unparseable sample value {value:?} in {line:?}")
            }
        });
        let name = series.split('{').next().expect("sample has a name");
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(
            types.contains_key(family),
            "sample {name} has no # TYPE header for family {family}"
        );

        if types.get(family).map(String::as_str) == Some("histogram") {
            if name.ends_with("_bucket") {
                // Cumulative: each bucket's count >= the previous one's,
                // per series (strip the le label to key the series).
                let series_key = {
                    let labels = &series[name.len()..];
                    let stripped: String = labels
                        .trim_start_matches('{')
                        .trim_end_matches('}')
                        .split(',')
                        .filter(|kv| !kv.starts_with("le="))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("{family}{{{stripped}}}")
                };
                let v = value as u64;
                let prev = bucket_last.insert(series_key.clone(), v).unwrap_or(0);
                assert!(
                    v >= prev,
                    "bucket counts must be cumulative: {v} < {prev} in {line:?}"
                );
                if series.contains("le=\"+Inf\"") {
                    bucket_inf.insert(series_key, v);
                }
            } else if name.ends_with("_count") {
                counts.insert(series.to_string(), value as u64);
            }
        }
    }
    // Every histogram's +Inf bucket equals its _count.
    for (series_key, inf) in &bucket_inf {
        let family = series_key.split('{').next().expect("family");
        let count_series = series_key.replacen(family, &format!("{family}_count"), 1);
        let count = counts
            .get(count_series.trim_end_matches("{}"))
            .or_else(|| counts.get(&count_series));
        if let Some(&c) = count {
            assert_eq!(*inf, c, "+Inf bucket must equal _count for {series_key}");
        }
    }
    assert!(
        !types.is_empty(),
        "exposition should contain at least one family:\n{text}"
    );
}

#[test]
fn live_cluster_serves_metrics_and_counters_are_monotone() {
    if !netstack::sockets_available() {
        eprintln!("skipping: loopback sockets unavailable in this sandbox");
        return;
    }
    let options = ClusterOptions {
        seed: 23,
        inputs: vec![Value::One; 4],
        admin: true,
        ..ClusterOptions::default()
    };
    let mut cluster = Cluster::spawn(4, 1, Proto::FailStop, options, None).expect("loopback spawn");
    let addrs = cluster.admin_addrs();
    assert_eq!(addrs.len(), 4, "one admin endpoint per node");

    // First scrape, taken while the protocol is in flight (the cluster
    // was spawned a moment ago and the verdict has not been awaited).
    let (first, answered) = cluster.scrape(SCRAPE_TIMEOUT);
    assert_eq!(answered.len(), 4, "every endpoint answers mid-run");

    // The raw text exposition is well-formed on every node.
    for &addr in &addrs {
        let text = http_get(addr, "/metrics", SCRAPE_TIMEOUT).expect("GET /metrics");
        assert_exposition_well_formed(&text);
    }

    let report = cluster.await_verdict(Duration::from_secs(30));
    assert_eq!(report.status, RunStatus::Stopped);

    // Second scrape after the verdict: every counter is >= its first
    // reading, per family total and per individual series.
    let (second, answered) = cluster.scrape(SCRAPE_TIMEOUT);
    assert_eq!(answered.len(), 4, "every endpoint still answers");
    assert_counters_monotone(&first, &second);

    // The post-verdict scrape shows real protocol traffic.
    let frames = second.scalar_total("bt_frames_sent_total").unwrap_or(0);
    let delivered = second.scalar_total("bt_msgs_delivered_total").unwrap_or(0);
    assert!(frames > 0, "a decided run sent frames");
    assert!(delivered > 0, "a decided run delivered messages");

    // The HTTP-assembled view and the in-process view agree on totals.
    let in_process = cluster.metrics_snapshot();
    for family in ["bt_msgs_sent_total", "bt_msgs_delivered_total"] {
        assert_eq!(
            second.scalar_total(family),
            in_process.scalar_total(family),
            "HTTP scrape and in-process snapshot disagree on {family}"
        );
    }

    // /status reports the decision the report reached.
    for &addr in &addrs {
        let body = http_get(addr, "/status", SCRAPE_TIMEOUT).expect("GET /status");
        let st = Json::parse(&body).expect("status is JSON");
        // Value's Debug form is the compact "0"/"1".
        assert_eq!(
            st.get("decision").and_then(Json::as_str),
            Some("1"),
            "every node reports its decision over /status: {body}"
        );
    }

    cluster.shutdown();
}

/// Every counter series present in `first` must read >= in `second`.
fn assert_counters_monotone(first: &Snapshot, second: &Snapshot) {
    use obs::metrics::SeriesValue;
    let mut checked = 0usize;
    for (name, fam) in &first.families {
        if fam.kind != Some(MetricKind::Counter) {
            continue;
        }
        let Some(after) = second.families.get(name) else {
            panic!("counter family {name} vanished between scrapes");
        };
        for (labels, value) in &fam.series {
            let SeriesValue::Counter(before) = value else {
                continue;
            };
            let Some(SeriesValue::Counter(now)) = after.series.get(labels) else {
                panic!("counter series {name}{labels:?} vanished between scrapes");
            };
            assert!(
                now >= before,
                "counter {name}{labels:?} went backwards: {before} -> {now}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the first scrape contained counters to check");
}
