//! Property tests over the `FaultPlan` spec grammar: every representable
//! plan — delay, drop, partition, any number of crash-restart clauses,
//! any number of `disk=` storage-fault clauses — renders to a spec string
//! that parses back to the identical plan. This is the guarantee fuzzer
//! repro artifacts rest on: a failing run's exact network *and storage*
//! conditions can be embedded as one string and replayed.

use std::time::Duration;

use proptest::prelude::*;

use netstack::{DiskFault, FaultPlan};

/// Keep nanosecond values within u64 (the parse side reads u64), and use
/// the full range: durations have no semantic ceiling in the grammar.
fn arb_nanos() -> impl Strategy<Value = u64> {
    any::<u64>()
}

fn arb_disk_fault() -> impl Strategy<Value = DiskFault> {
    prop_oneof![
        any::<u64>().prop_map(|offset| DiskFault::Flip { offset }),
        any::<u64>().prop_map(|nth| DiskFault::ShortWrite { nth }),
        any::<u64>().prop_map(|nth| DiskFault::FsyncErr { nth }),
        any::<u64>().prop_map(|nth| DiskFault::Enospc { nth }),
        Just(DiskFault::LostRename),
    ]
}

/// Builds a plan exercising every clause the grammar knows, gated by the
/// option flags so the empty (`reliable`) plan and every combination of
/// present/absent clauses are all generated.
#[allow(clippy::too_many_arguments)]
fn build_plan(
    delay: Option<(u64, u64)>,
    drop_pm: u16,
    partition: Option<(usize, u16, u64)>,
    crashes: Vec<(usize, u64, u64)>,
    disk: Vec<(usize, DiskFault)>,
) -> FaultPlan {
    let mut plan = FaultPlan::reliable();
    if let Some((a, b)) = delay {
        let (min, max) = if a <= b { (a, b) } else { (b, a) };
        plan = plan.with_delay(Duration::from_nanos(min), Duration::from_nanos(max));
    }
    if drop_pm > 0 {
        plan = plan.with_drop(drop_pm.min(1000));
    }
    if let Some((n, mask, heal)) = partition {
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        plan = plan.with_partition(n, &members, Duration::from_nanos(heal));
    }
    for (node, a, b) in crashes {
        let (kill, restart) = if a <= b { (a, b) } else { (b, a) };
        plan = plan.with_crash(
            node,
            Duration::from_nanos(kill),
            Duration::from_nanos(restart),
        );
    }
    for (node, fault) in disk {
        plan = plan.with_disk(node, fault);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(plan)) == plan` for arbitrary plans over the whole
    /// grammar, including the storage-fault clauses.
    #[test]
    fn spec_string_roundtrips(
        delay in (any::<bool>(), arb_nanos(), arb_nanos())
            .prop_map(|(some, a, b)| some.then_some((a, b))),
        drop_pm in 0u16..1001,
        partition in (any::<bool>(), 1usize..12, any::<u16>(), arb_nanos())
            .prop_map(|(some, n, mask, heal)| some.then_some((n, mask, heal))),
        crashes in proptest::collection::vec((0usize..12, arb_nanos(), arb_nanos()), 0..4),
        disk in proptest::collection::vec((0usize..12, arb_disk_fault()), 0..4),
    ) {
        let plan = build_plan(delay, drop_pm, partition, crashes, disk);
        let spec = plan.to_string();
        let back: FaultPlan = spec.parse()
            .map_err(|e: String| TestCaseError::fail(format!("{spec:?} did not parse: {e}")))?;
        prop_assert_eq!(&back, &plan, "parse(display(p)) == p for {}", spec);

        // Display is canonical: rendering the parsed plan reproduces the
        // exact spec string (so repro artifacts are stable bytes).
        prop_assert_eq!(back.to_string(), spec);
    }

    /// A mangled clause never parses into a silently different plan: any
    /// unknown key is an error, not an ignored no-op.
    #[test]
    fn unknown_clauses_are_rejected(tail in any::<u16>()) {
        let spec = format!("melt={tail}");
        prop_assert!(spec.parse::<FaultPlan>().is_err());
    }
}
