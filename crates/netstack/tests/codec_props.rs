//! Property tests: every protocol message's `Wire` codec round-trips, for
//! arbitrary field values — the guarantee the socket runtime rests on —
//! and `Wire::validate` accepts exactly the in-system contents.
//!
//! Each case encodes, decodes, and asserts identity, plus checks the
//! structural invariants shared by all codecs: decoding consumes exactly
//! the bytes encoding produced, and every strict prefix of an encoding is
//! rejected (no message is a prefix of another's framing slot).

use proptest::prelude::*;

use benor::{BenOrMsg, Exchange};
use bt_core::{DeadMsg, FailStopMsg, MaliciousKind, MaliciousMsg, MultiMsg, Phase, SimpleMsg};
use netstack::Frame;
use simnet::{ProcessId, Value, Wire, WireError};

fn arb_value() -> impl Strategy<Value = Value> {
    any::<bool>().prop_map(Value::from)
}

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0usize..1024).prop_map(ProcessId::new)
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![any::<u64>().prop_map(Phase::At), Just(Phase::Any)]
}

fn arb_kind() -> impl Strategy<Value = MaliciousKind> {
    prop_oneof![Just(MaliciousKind::Initial), Just(MaliciousKind::Echo)]
}

fn arb_exchange() -> impl Strategy<Value = Exchange> {
    prop_oneof![Just(Exchange::Report), Just(Exchange::Propose)]
}

/// Round-trips `msg` and checks the shared codec invariants.
fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(msg: &T) -> Result<(), TestCaseError> {
    let bytes = msg.to_bytes();
    let back = T::from_bytes(&bytes);
    prop_assert_eq!(back.as_ref(), Ok(msg), "decode(encode(m)) == m");

    // Every strict prefix is rejected: a truncated message never decodes.
    for cut in 0..bytes.len() {
        let err = T::from_bytes(&bytes[..cut]);
        prop_assert!(err.is_err(), "prefix of {cut} bytes must not decode");
    }

    // Trailing garbage is rejected, not silently ignored.
    let mut padded = bytes.clone();
    padded.push(0);
    prop_assert!(matches!(
        T::from_bytes(&padded),
        Err(WireError::Trailing { .. })
    ));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn failstop_roundtrip(
        phase in any::<u64>(),
        value in arb_value(),
        cardinality in any::<usize>(),
    ) {
        roundtrip(&FailStopMsg { phase, value, cardinality })?;
    }

    #[test]
    fn simple_roundtrip(phase in any::<u64>(), value in arb_value()) {
        roundtrip(&SimpleMsg { phase, value })?;
    }

    #[test]
    fn malicious_roundtrip(
        kind in arb_kind(),
        subject in arb_pid(),
        value in arb_value(),
        phase in arb_phase(),
    ) {
        roundtrip(&MaliciousMsg { kind, subject, value, phase })?;
    }

    #[test]
    fn multivalued_roundtrip(
        bit in any::<u8>(),
        subject in arb_pid(),
        value in arb_value(),
        phase in arb_phase(),
    ) {
        let msg: MultiMsg = (
            bit,
            MaliciousMsg { kind: MaliciousKind::Echo, subject, value, phase },
        );
        roundtrip(&msg)?;
    }

    #[test]
    fn dead_stage1_roundtrip(value in arb_value()) {
        roundtrip(&DeadMsg::Stage1 { value })?;
    }

    #[test]
    fn dead_stage2_roundtrip(
        value in arb_value(),
        ancestors in proptest::collection::vec(arb_pid(), 0..64),
    ) {
        roundtrip(&DeadMsg::Stage2 { value, ancestors })?;
    }

    #[test]
    fn frame_roundtrip(
        tag in 0u8..3,
        pid in arb_pid(),
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        next in any::<u64>(),
    ) {
        let frame = match tag {
            0 => Frame::Hello { from: pid },
            1 => Frame::Msg { seq, payload },
            _ => Frame::Ack { next },
        };
        roundtrip(&frame)?;
    }

    /// Wire validation accepts exactly the in-system contents: a frame or
    /// message is valid for system size `n` iff every process id it
    /// carries indexes below `n`.
    #[test]
    fn validate_accepts_exactly_in_system_ids(
        n in 1usize..64,
        subject in arb_pid(),
        kind in arb_kind(),
        value in arb_value(),
        phase in arb_phase(),
        ancestors in proptest::collection::vec(arb_pid(), 0..16),
        cardinality in 0usize..128,
    ) {
        let echo = MaliciousMsg { kind, subject, value, phase };
        prop_assert_eq!(echo.validate(n), subject.index() < n);
        prop_assert_eq!(
            Frame::Hello { from: subject }.validate(n),
            subject.index() < n
        );

        let stage2 = DeadMsg::Stage2 { value, ancestors: ancestors.clone() };
        prop_assert_eq!(
            stage2.validate(n),
            ancestors.iter().all(|p| p.index() < n)
        );
        prop_assert!(DeadMsg::Stage1 { value }.validate(n));

        let fs = FailStopMsg { phase: 0, value, cardinality };
        prop_assert_eq!(fs.validate(n), cardinality <= n);
    }

    #[test]
    fn benor_roundtrip(
        exchange in arb_exchange(),
        round in any::<u64>(),
        report_value in arb_value(),
        abstain in any::<bool>(),
    ) {
        // Proposals may abstain (`None`); reports always carry a value.
        let value = match exchange {
            Exchange::Report => Some(report_value),
            Exchange::Propose => (!abstain).then_some(report_value),
        };
        roundtrip(&BenOrMsg { exchange, round, value })?;
    }
}

/// The boundary values property runs may or may not hit: numeric maxima
/// (the widest varints) and the `*` wildcard phase stamp.
#[test]
fn boundary_values_roundtrip() {
    roundtrip(&FailStopMsg {
        phase: u64::MAX,
        value: Value::One,
        cardinality: usize::MAX,
    })
    .unwrap();
    roundtrip(&SimpleMsg {
        phase: u64::MAX,
        value: Value::Zero,
    })
    .unwrap();
    roundtrip(&MaliciousMsg {
        kind: MaliciousKind::Initial,
        subject: ProcessId::new(usize::MAX),
        value: Value::One,
        phase: Phase::At(u64::MAX),
    })
    .unwrap();
    roundtrip(&MaliciousMsg {
        kind: MaliciousKind::Echo,
        subject: ProcessId::new(0),
        value: Value::Zero,
        phase: Phase::Any,
    })
    .unwrap();
    roundtrip(&BenOrMsg {
        exchange: Exchange::Propose,
        round: u64::MAX,
        value: None,
    })
    .unwrap();
}

/// Max-arity `DeadMsg::Stage2`: an ancestors list naming every process of
/// a large system still round-trips (the codec has no small-vector bias).
#[test]
fn dead_stage2_max_arity_roundtrip() {
    let ancestors: Vec<ProcessId> = (0..4096).map(ProcessId::new).collect();
    roundtrip(&DeadMsg::Stage2 {
        value: Value::One,
        ancestors,
    })
    .unwrap();
}
