//! # proptest — offline stand-in for the `proptest` crate
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This crate reimplements exactly the surface the
//! workspace's property tests use — `proptest!`, strategies (ranges,
//! `any`, tuples, `prop_map`, `prop_oneof!`, `Just`, `collection::vec`),
//! the assertion macros, `ProptestConfig`, and `TestCaseError` — on top of
//! the workspace [`prng`] generator, so the test files compile unchanged.
//!
//! Failing cases **shrink**: the harness greedily walks
//! [`Strategy::shrink`] candidates, keeping any candidate that still fails,
//! until no candidate fails (a local minimum) or the shrink budget runs
//! out. The failure panic then reports the 64-bit seed, the case number,
//! and the minimal failing input, plus the exact environment-variable
//! incantation that replays it:
//!
//! ```text
//! PROPTEST_SEED=0x00c0ffee00c0ffee PROPTEST_CASES=17 cargo test my_property
//! ```
//!
//! Environment overrides (read per test function at runtime):
//!
//! - `PROPTEST_CASES=<n>` — run `n` successful cases instead of the
//!   configured count;
//! - `PROPTEST_SEED=<n|0xhex>` — seed the case stream explicitly instead
//!   of hashing the test name.
//!
//! Differences from the real crate (acceptable for this workspace):
//!
//! - Shrinking is greedy over strategy-provided candidates; `prop_map`,
//!   `prop_oneof!`/[`Union`], and [`Just`] do not shrink (no inverse
//!   mapping / no record of the chosen arm), so values drawn through them
//!   stay fixed while sibling tuple components still shrink.
//! - **No failure persistence** (no `proptest-regressions` files).
//! - Case generation is a plain uniform draw per strategy, seeded by a
//!   hash of the test name — every `cargo test` run replays the same
//!   cases, which suits a repository whose whole premise is determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

#[doc(hidden)]
pub use prng::Prng as __Prng;

/// Hashes a test name to a stable 64-bit seed (FNV-1a), so each property
/// test draws a distinct but reproducible case stream.
#[doc(hidden)]
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn parse_cases(raw: &str) -> Option<u32> {
    raw.parse::<u32>().ok().filter(|&n| n > 0)
}

fn parse_seed(raw: &str) -> Option<u64> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse::<u64>().ok()
    }
}

/// The configured case count, unless `PROPTEST_CASES` overrides it.
///
/// Panics on a malformed override: silently ignoring a typo'd variable in
/// CI would quietly run the wrong number of cases.
#[doc(hidden)]
#[must_use]
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(raw) => parse_cases(&raw)
            .unwrap_or_else(|| panic!("PROPTEST_CASES must be a positive integer, got {raw:?}")),
        Err(_) => configured,
    }
}

/// The test's name-derived seed, unless `PROPTEST_SEED` overrides it
/// (decimal or `0x`-prefixed hex, as printed by failure panics).
#[doc(hidden)]
#[must_use]
pub fn resolve_seed(derived: u64) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(raw) => parse_seed(&raw).unwrap_or_else(|| {
            panic!("PROPTEST_SEED must be a u64 (decimal or 0x-hex), got {raw:?}")
        }),
        Err(_) => derived,
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// A recipe for drawing random values of one type.
///
/// Unlike the real crate there is no lazily-evaluated value tree:
/// [`Strategy::shrink`] proposes concrete simpler candidates for an
/// already-drawn value, and the harness greedily descends through them.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn draw(&self, rng: &mut __Prng) -> Self::Value;

    /// Simpler candidates for `value`, best (simplest) first.
    ///
    /// Every candidate must itself be drawable from this strategy's
    /// domain, and "simpler" must be well-founded (repeatedly taking any
    /// candidate terminates) — the harness additionally caps total shrink
    /// attempts, so a float strategy halving toward a bound is fine. The
    /// default is no candidates, which disables shrinking for the
    /// strategy.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut __Prng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below_u64(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    // Jump to the floor, bisect toward it, then single-step:
                    // log-time convergence plus an exact boundary finish.
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid != self.start {
                        out.push(mid);
                    }
                    let dec = *value - 1;
                    if dec != self.start && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )+};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn draw(&self, rng: &mut __Prng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value > self.start {
            out.push(self.start);
            // Zero is the conventional "simplest float" when in range.
            if self.start < 0.0 && *value > 0.0 {
                out.push(0.0);
            }
            let mid = self.start + (*value - self.start) / 2.0;
            if mid != self.start && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

/// Values of `T` drawn uniformly from its whole domain. See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types that can be drawn uniformly by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut __Prng) -> Self;

    /// Simpler candidates for `value`; mirrors [`Strategy::shrink`].
    fn shrink(value: &Self) -> Vec<Self>
    where
        Self: Sized,
    {
        let _ = value;
        Vec::new()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn draw(&self, rng: &mut __Prng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut __Prng) -> bool {
        rng.coin()
    }
    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! uint_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut __Prng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > 0 {
                    out.push(0);
                    let mid = *value / 2;
                    if mid != 0 {
                        out.push(mid);
                    }
                    let dec = *value - 1;
                    if dec != 0 && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )+};
}

uint_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut __Prng) -> f64 {
        rng.f64()
    }
    fn shrink(value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != 0.0 {
            out.push(0.0);
            let mid = *value / 2.0;
            if mid != 0.0 && mid != *value {
                out.push(mid);
            }
        }
        out
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn draw(&self, _rng: &mut __Prng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
///
/// Mapped strategies do not shrink: there is no inverse of `f` through
/// which to shrink the pre-image.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: fmt::Debug, F> fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Map")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn draw(&self, rng: &mut __Prng) -> O {
        (self.f)(self.inner.draw(rng))
    }
}

/// The unit strategy: zero-input property tests draw `()`.
impl Strategy for () {
    type Value = ();
    fn draw(&self, _rng: &mut __Prng) -> Self::Value {}
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);
            fn draw(&self, rng: &mut __Prng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A uniform choice between boxed strategies; built by [`prop_oneof!`].
///
/// Unions do not shrink: the drawn value does not record which arm
/// produced it, so cross-arm candidates could leave the union's domain.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.options.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// A union over the given non-empty set of strategies.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn draw(&self, rng: &mut __Prng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].draw(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{__Prng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The result of [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn draw(&self, rng: &mut __Prng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.index(span);
            (0..len).map(|_| self.element.draw(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Shorter first: dropping an element simplifies more than
            // simplifying one in place.
            if value.len() > self.size.lo {
                for i in 0..value.len() {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Greedily minimises a failing input: repeatedly takes the first
/// [`Strategy::shrink`] candidate that still fails (any rejection or pass
/// discards the candidate), until a local minimum or the shrink budget is
/// reached. Returns the minimal input, the failure message it produced,
/// and the number of accepted shrink steps.
#[doc(hidden)]
pub fn shrink_failure<S, F>(
    strategy: &S,
    initial: S::Value,
    initial_msg: String,
    run: &mut F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: FnMut(&S::Value) -> Result<(), TestCaseError>,
{
    // Caps total candidate executions so strategies whose candidates only
    // converge in the limit (float bisection) still terminate promptly.
    const SHRINK_BUDGET: usize = 2000;
    let mut current = initial;
    let mut message = initial_msg;
    let mut steps = 0usize;
    let mut spent = 0usize;
    loop {
        let mut advanced = false;
        for candidate in strategy.shrink(&current) {
            if spent >= SHRINK_BUDGET {
                return (current, message, steps);
            }
            spent += 1;
            if let Err(TestCaseError::Fail(msg)) = run(&candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, message, steps);
        }
    }
}

/// Ties a case-runner closure's argument type to `strategy`'s value type,
/// so the macro-generated closure type-checks before its first call site.
#[doc(hidden)]
pub fn __runner_for<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: FnMut(&S::Value) -> Result<(), TestCaseError>,
{
    run
}

/// Declares property tests. Each function body runs against
/// `config.cases` drawn inputs (`PROPTEST_CASES` overrides the count,
/// `PROPTEST_SEED` the stream); `prop_assume!` rejections are retried and
/// failures are shrunk to a minimal input before panicking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                let __pt_cases = $crate::resolve_cases(__pt_config.cases);
                let __pt_seed = $crate::resolve_seed($crate::seed_for(stringify!($name)));
                // One tuple strategy preserves the draw order of the old
                // per-binding form, so historical seeds replay unchanged.
                let __pt_strategy = ($($strat,)*);
                let mut __pt_rng = $crate::__Prng::seed_from_u64(__pt_seed);
                let mut __pt_run = $crate::__runner_for(&__pt_strategy, |__pt_case| {
                    let ($($pat,)*) = ::core::clone::Clone::clone(__pt_case);
                    $body
                    ::core::result::Result::Ok(())
                });
                let mut __pt_passed: u32 = 0;
                let mut __pt_attempts: u32 = 0;
                let __pt_max_attempts = __pt_cases.saturating_mul(20).max(1000);
                while __pt_passed < __pt_cases {
                    __pt_attempts += 1;
                    assert!(
                        __pt_attempts <= __pt_max_attempts,
                        "proptest {}: too many rejected cases ({__pt_passed} accepted of {} wanted)",
                        stringify!($name),
                        __pt_cases,
                    );
                    let __pt_drawn = $crate::Strategy::draw(&__pt_strategy, &mut __pt_rng);
                    match __pt_run(&__pt_drawn) {
                        ::core::result::Result::Ok(()) => __pt_passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__pt_msg)) => {
                            let (__pt_min, __pt_min_msg, __pt_steps) = $crate::shrink_failure(
                                &__pt_strategy,
                                __pt_drawn,
                                __pt_msg,
                                &mut __pt_run,
                            );
                            ::std::panic!(
                                "proptest {name} failed on case {case} (seed 0x{seed:016x}): {msg}\n\
                                 minimal failing input after {steps} shrink step(s): {min:?}\n\
                                 rerun: PROPTEST_SEED=0x{seed:016x} PROPTEST_CASES={case} cargo test {name}",
                                name = stringify!($name),
                                case = __pt_attempts,
                                seed = __pt_seed,
                                msg = __pt_min_msg,
                                steps = __pt_steps,
                                min = __pt_min,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) so the harness can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test; both sides are shown on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            l,
            r,
        );
    }};
}

/// Rejects the current case when the precondition does not hold; the
/// harness draws a fresh case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

/// The conventional glob-import module: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::__Prng::seed_from_u64(3);
        for _ in 0..500 {
            let v = Strategy::draw(&(5usize..9), &mut rng);
            assert!((5..9).contains(&v));
            let f = Strategy::draw(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = crate::__Prng::seed_from_u64(4);
        for _ in 0..200 {
            let v = Strategy::draw(&crate::collection::vec(0usize..3, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let w = Strategy::draw(&crate::collection::vec(Just(1u8), 4), &mut rng);
            assert_eq!(w, vec![1, 1, 1, 1]);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::__Prng::seed_from_u64(5);
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::draw(&strat, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_shrink_candidates_stay_in_range_and_simplify() {
        let strat = 5u64..100;
        for v in [6u64, 50, 99] {
            for c in strat.shrink(&v) {
                assert!((5..100).contains(&c), "candidate {c} out of range");
                assert!(c < v, "candidate {c} not simpler than {v}");
            }
        }
        assert!(strat.shrink(&5).is_empty(), "floor value must not shrink");
    }

    #[test]
    fn shrink_failure_finds_the_boundary() {
        // Property "x < 10" over 0..1000: the minimal counterexample is
        // exactly the boundary value 10, whatever the starting failure.
        let strat = (0u64..1000,);
        let mut run = |case: &(u64,)| {
            if case.0 < 10 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("{} too big", case.0)))
            }
        };
        let (min, msg, steps) =
            crate::shrink_failure(&strat, (997,), "997 too big".to_string(), &mut run);
        assert_eq!(min, (10,));
        assert_eq!(msg, "10 too big");
        assert!(steps > 0);
    }

    #[test]
    fn shrink_failure_minimises_vectors_elementwise() {
        // Failure trips on length >= 3, so the minimum is three elements,
        // each shrunk all the way to zero.
        let strat = (crate::collection::vec(0u32..100, 0..10),);
        let mut run = |case: &(Vec<u32>,)| {
            if case.0.len() >= 3 {
                Err(TestCaseError::fail("too long"))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = crate::shrink_failure(
            &strat,
            (vec![17, 4, 99, 62, 3],),
            "too long".to_string(),
            &mut run,
        );
        assert_eq!(min, (vec![0, 0, 0],));
    }

    #[test]
    fn shrink_failure_respects_rejections() {
        // A candidate the body rejects (prop_assume) must not be adopted.
        let strat = (2u64..100,);
        let mut run = |case: &(u64,)| {
            if !case.0.is_multiple_of(2) {
                Err(TestCaseError::reject("odd"))
            } else if case.0 >= 6 {
                Err(TestCaseError::fail("big even"))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = crate::shrink_failure(&strat, (98,), "big even".to_string(), &mut run);
        // Greedy descent halts at 8: both odd neighbours (5, 7) are
        // rejected, not failing, so they are never adopted.
        assert_eq!(min, (8,));
        assert!(min.0 >= 6 && min.0 % 2 == 0, "must stay a failing input");
    }

    #[test]
    fn env_value_parsing() {
        assert_eq!(crate::parse_cases("12"), Some(12));
        assert_eq!(crate::parse_cases("0"), None);
        assert_eq!(crate::parse_cases("dozen"), None);
        assert_eq!(crate::parse_seed("42"), Some(42));
        assert_eq!(crate::parse_seed("0xff"), Some(255));
        assert_eq!(crate::parse_seed("0XFF"), Some(255));
        assert_eq!(crate::parse_seed("seed"), None);
    }

    // The macro surface itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_draws_and_asserts(x in 0u64..100, mut v in crate::collection::vec(0u32..7, 0..=4)) {
            v.sort_unstable();
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len(), "tautology with message {}", x);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }

    // A deliberately failing property: the panic must carry the seed, the
    // case number, and the shrunken minimal input.
    proptest! {
        #[test]
        #[should_panic(expected = "minimal failing input after")]
        fn failure_panics_with_shrunk_input(x in 0u64..1000) {
            prop_assert!(x < 10, "{} not under 10", x);
        }
    }
}
