//! # proptest — offline stand-in for the `proptest` crate
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This crate reimplements exactly the surface the
//! workspace's property tests use — `proptest!`, strategies (ranges,
//! `any`, tuples, `prop_map`, `prop_oneof!`, `Just`, `collection::vec`),
//! the assertion macros, `ProptestConfig`, and `TestCaseError` — on top of
//! the workspace [`prng`] generator, so the test files compile unchanged.
//!
//! Differences from the real crate (acceptable for this workspace):
//!
//! - **No shrinking.** A failing case reports the case number and message;
//!   cases are deterministic per test name, so failures reproduce exactly.
//! - **No failure persistence** (no `proptest-regressions` files).
//! - Case generation is a plain uniform draw per strategy, seeded by a
//!   hash of the test name — every `cargo test` run replays the same
//!   cases, which suits a repository whose whole premise is determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

#[doc(hidden)]
pub use prng::Prng as __Prng;

/// Hashes a test name to a stable 64-bit seed (FNV-1a), so each property
/// test draws a distinct but reproducible case stream.
#[doc(hidden)]
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// A recipe for drawing random values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn draw(&self, rng: &mut __Prng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut __Prng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below_u64(span) as $t
            }
        }
    )+};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn draw(&self, rng: &mut __Prng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

/// Values of `T` drawn uniformly from its whole domain. See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types that can be drawn uniformly by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut __Prng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn draw(&self, rng: &mut __Prng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut __Prng) -> bool {
        rng.coin()
    }
}

macro_rules! uint_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut __Prng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

uint_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut __Prng) -> f64 {
        rng.f64()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn draw(&self, _rng: &mut __Prng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: fmt::Debug, F> fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Map")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn draw(&self, rng: &mut __Prng) -> O {
        (self.f)(self.inner.draw(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn draw(&self, rng: &mut __Prng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.options.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// A union over the given non-empty set of strategies.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn draw(&self, rng: &mut __Prng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].draw(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{__Prng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The result of [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn draw(&self, rng: &mut __Prng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.index(span);
            (0..len).map(|_| self.element.draw(rng)).collect()
        }
    }
}

/// Declares property tests. Each function body runs against
/// `config.cases` drawn inputs; `prop_assume!` rejections are retried.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::__Prng::seed_from_u64($crate::seed_for(stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({passed} accepted of {} wanted)",
                        stringify!($name),
                        config.cases,
                    );
                    $(let $pat = $crate::Strategy::draw(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed on case {attempts}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) so the harness can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test; both sides are shown on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            l,
            r,
        );
    }};
}

/// Rejects the current case when the precondition does not hold; the
/// harness draws a fresh case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

/// The conventional glob-import module: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::__Prng::seed_from_u64(3);
        for _ in 0..500 {
            let v = Strategy::draw(&(5usize..9), &mut rng);
            assert!((5..9).contains(&v));
            let f = Strategy::draw(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = crate::__Prng::seed_from_u64(4);
        for _ in 0..200 {
            let v = Strategy::draw(&crate::collection::vec(0usize..3, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let w = Strategy::draw(&crate::collection::vec(Just(1u8), 4), &mut rng);
            assert_eq!(w, vec![1, 1, 1, 1]);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::__Prng::seed_from_u64(5);
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::draw(&strat, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    // The macro surface itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_draws_and_asserts(x in 0u64..100, mut v in crate::collection::vec(0u32..7, 0..=4)) {
            v.sort_unstable();
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len(), "tautology with message {}", x);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}
