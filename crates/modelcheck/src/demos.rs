//! Executable demonstrations of the paper's structural results on tiny
//! systems: Lemma 2's bivalent initial configuration, and the behaviour of
//! the protocols at and beyond their resilience bounds.

use simnet::Value;

use bt_core::{Config, FailStop, Simple};

use crate::{EarlyStop, Exploration, Explorer, Valence, World};

/// Classifies the valence of the initial configuration of the **fail-stop
/// protocol** with the given inputs, exploring every schedule with up to
/// `crashes` adversarial crashes.
#[must_use]
pub fn failstop_valence(config: Config, inputs: &[Value], crashes: usize) -> Valence {
    let world = World::start(
        inputs.iter().map(|&v| FailStop::new(config, v)).collect(),
        crashes,
    );
    valence_of(&world)
}

/// Hybrid valence classification: random-walk witness sampling first
/// (sound for *reachability*: every walk is a real schedule), exhaustive
/// breadth-first search as the fallback for unreachability verdicts.
fn valence_of<P>(world: &crate::World<P>) -> Valence
where
    P: simnet::Process + Clone + std::fmt::Debug,
    P::Msg: Clone + std::fmt::Debug + Ord,
{
    let explorer = Explorer::default().early_stop(EarlyStop::OnBivalence);
    let sampled = explorer.sample_outcomes(world, 600, 0x1E3);
    let from_samples = Exploration {
        outcomes: sampled,
        states: 0,
        truncated: true,
    };
    if from_samples.valence() == Valence::Bivalent {
        return Valence::Bivalent;
    }
    let mut exhaustive = explorer.explore(world.clone());
    exhaustive.outcomes.extend(from_samples.outcomes);
    exhaustive.valence()
}

/// Classifies the valence of the initial configuration of the **simple
/// variant** with the given inputs.
#[must_use]
pub fn simple_valence(config: Config, inputs: &[Value], crashes: usize) -> Valence {
    let world = World::start(
        inputs.iter().map(|&v| Simple::new(config, v)).collect(),
        crashes,
    );
    valence_of(&world)
}

/// Lemma 2, made executable: scans all `2^n` input vectors of a fail-stop
/// system and returns one whose initial configuration is **bivalent**
/// (both decisions reachable under some schedule with up to `k` crashes),
/// or `None` if every initial configuration is univalent.
///
/// Keep `n ≤ 4` — the schedule space is explored exhaustively.
#[must_use]
pub fn find_bivalent_initial(config: Config, crashes: usize) -> Option<Vec<Value>> {
    let n = config.n();
    for bits in 0..(1u32 << n) {
        let inputs: Vec<Value> = (0..n).map(|i| Value::from(bits >> i & 1 == 1)).collect();
        if failstop_valence(config, &inputs, crashes) == Valence::Bivalent {
            return Some(inputs);
        }
    }
    None
}

/// Theorem-1 degradation, made executable: beyond `⌊(n−1)/2⌋` faults the
/// Figure 1 protocol's witness threshold (`cardinality > n/2`) exceeds the
/// phase quota (`n−k`), so **no process can ever decide** — it degrades to
/// safety-without-liveness, which is the only safe degradation the theorem
/// permits. Returns `true` if exhaustive exploration confirms no decision
/// is reachable.
#[must_use]
pub fn failstop_beyond_bound_never_decides(n: usize, k: usize) -> bool {
    assert!(
        k > (n - 1) / 2,
        "this demonstration is about k beyond the bound"
    );
    let config = Config::unchecked(n, k);
    let inputs: Vec<Value> = (0..n).map(|i| Value::from(i % 2 == 0)).collect();
    let world = World::start(
        inputs.iter().map(|&v| FailStop::new(config, v)).collect(),
        0, // even with zero actual crashes the protocol cannot decide
    );
    let e = Explorer::new(50_000, 40).explore(world);
    e.valence() == Valence::NoDecision
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma2_bivalent_initial_exists() {
        // n = 3, k = 1 fail-stop: Lemma 2 guarantees a bivalent initial
        // configuration; the scan must find one, and it must be mixed-input
        // (unanimous inputs are univalent by validity).
        let config = Config::fail_stop(3, 1).unwrap();
        let inputs = find_bivalent_initial(config, 1).expect("Lemma 2");
        assert!(inputs.contains(&Value::Zero));
        assert!(inputs.contains(&Value::One));
    }

    #[test]
    fn unanimous_initials_are_univalent() {
        let config = Config::fail_stop(3, 1).unwrap();
        assert_eq!(
            failstop_valence(config, &[Value::One; 3], 1),
            Valence::OneValent
        );
        assert_eq!(
            failstop_valence(config, &[Value::Zero; 3], 1),
            Valence::ZeroValent
        );
    }

    #[test]
    fn theorem1_beyond_bound_no_decision() {
        // n = 2, k = 1 > ⌊1/2⌋ = 0: the witness threshold is unreachable.
        assert!(failstop_beyond_bound_never_decides(2, 1));
    }

    #[test]
    fn within_bound_decisions_are_reachable() {
        let config = Config::fail_stop(3, 1).unwrap();
        let v = failstop_valence(config, &[Value::One, Value::One, Value::Zero], 1);
        assert_ne!(v, Valence::NoDecision);
    }

    #[test]
    fn simple_variant_mixed_inputs_bivalent_with_crash_budget() {
        // The simple variant on 3 processes, k = 0 thresholds, one crash
        // allowed: with mixed inputs both outcomes should be reachable —
        // or at least a decision must be reachable.
        let config = Config::unchecked(3, 0);
        let v = simple_valence(config, &[Value::One, Value::Zero, Value::One], 0);
        assert_ne!(v, Valence::NoDecision);
    }
}
