//! A small-world model of the paper's system, built for *branching*
//! exploration rather than single-trajectory simulation.

use core::fmt;

use simnet::{Ctx, Envelope, Process, ProcessId, SimRng, Value};

/// One nondeterministic choice available to the adversary/scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Deliver the message at `index` in `to`'s buffer.
    Deliver {
        /// The receiving process.
        to: ProcessId,
        /// Buffer index (buffers are kept sorted, so indices are canonical).
        index: usize,
    },
    /// Crash a process (fail-stop death between atomic steps).
    Crash {
        /// The process to kill.
        pid: ProcessId,
    },
}

/// A complete system configuration: process states plus buffer contents —
/// the paper's "configuration", made cloneable so schedules can branch.
///
/// Crashes here happen *between* atomic steps (the coarsest fail-stop
/// adversary); the mid-broadcast crashes of `adversary::CrashPlan` are a
/// refinement the Monte-Carlo experiments cover instead.
pub struct World<P: Process> {
    procs: Vec<P>,
    buffers: Vec<Vec<Envelope<P::Msg>>>,
    crashed: Vec<bool>,
    crash_budget: usize,
    depth: usize,
}

impl<P> Clone for World<P>
where
    P: Process + Clone,
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        World {
            procs: self.procs.clone(),
            buffers: self.buffers.clone(),
            crashed: self.crashed.clone(),
            crash_budget: self.crash_budget,
            depth: self.depth,
        }
    }
}

impl<P> World<P>
where
    P: Process + Clone + fmt::Debug,
    P::Msg: Clone + fmt::Debug + Ord,
{
    /// Creates a world and performs every process's initial atomic step.
    /// `crash_budget` is the number of crash actions the adversary may play
    /// (the `k` of a `k`-resilient run).
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty.
    #[must_use]
    pub fn start(procs: Vec<P>, crash_budget: usize) -> Self {
        assert!(!procs.is_empty(), "a world needs processes");
        let n = procs.len();
        let mut world = World {
            procs,
            buffers: vec![Vec::new(); n],
            crashed: vec![false; n],
            crash_budget,
            depth: 0,
        };
        for i in 0..n {
            let mut outbox = Vec::new();
            // Deterministic dummy stream: the Bracha-Toueg protocols are
            // deterministic; randomized protocols should not be explored
            // this way.
            let mut rng = SimRng::seed(0);
            let mut ctx = Ctx::new(ProcessId::new(i), n, 0, &mut outbox, &mut rng);
            world.procs[i].on_start(&mut ctx);
            world.enqueue(ProcessId::new(i), outbox);
        }
        world
    }

    fn enqueue(&mut self, from: ProcessId, outbox: Vec<(ProcessId, P::Msg)>) {
        for (to, msg) in outbox {
            let i = to.index();
            if self.crashed[i] || self.procs[i].halted() {
                continue; // undeliverable forever; drop for canonicity
            }
            self.buffers[i].push(Envelope::new(from, msg));
        }
        // Canonical buffer order makes delivery indices stable and lets
        // semantically equal worlds hash equal.
        for buf in &mut self.buffers {
            buf.sort_by(|a, b| (a.from, &a.msg).cmp(&(b.from, &b.msg)));
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// How many scheduler choices have been applied so far.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether `pid` has been crashed by the adversary.
    #[must_use]
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.crashed[pid.index()]
    }

    /// The decision of each process (crashed processes report `None`).
    #[must_use]
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.procs
            .iter()
            .zip(&self.crashed)
            .map(|(p, c)| if *c { None } else { p.decision() })
            .collect()
    }

    /// Whether every non-crashed process has decided.
    #[must_use]
    pub fn all_correct_decided(&self) -> bool {
        self.procs
            .iter()
            .zip(&self.crashed)
            .all(|(p, c)| *c || p.decision().is_some())
    }

    /// Whether two non-crashed processes decided differently — a
    /// consistency violation.
    #[must_use]
    pub fn disagreement(&self) -> bool {
        let mut seen: Option<Value> = None;
        for (p, c) in self.procs.iter().zip(&self.crashed) {
            if *c {
                continue;
            }
            if let Some(v) = p.decision() {
                match seen {
                    None => seen = Some(v),
                    Some(w) if w != v => return true,
                    Some(_) => {}
                }
            }
        }
        false
    }

    /// All actions available to the adversary in this configuration.
    #[must_use]
    pub fn actions(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for i in 0..self.n() {
            let pid = ProcessId::new(i);
            if self.crashed[i] || self.procs[i].halted() {
                continue;
            }
            for index in 0..self.buffers[i].len() {
                // Skip equal adjacent messages: delivering either is the
                // same successor (buffers are sorted).
                if index > 0 {
                    let (a, b) = (&self.buffers[i][index - 1], &self.buffers[i][index]);
                    if a.from == b.from && a.msg == b.msg {
                        continue;
                    }
                }
                out.push(Action::Deliver { to: pid, index });
            }
            if self.crash_budget > 0 {
                out.push(Action::Crash { pid });
            }
        }
        out
    }

    /// Applies an action, producing the successor configuration.
    ///
    /// # Panics
    ///
    /// Panics on an action that is not currently available (crashing a dead
    /// process, out-of-range delivery index, exhausted crash budget).
    #[must_use]
    pub fn apply(&self, action: Action) -> Self {
        let mut next = self.clone();
        next.depth += 1;
        match action {
            Action::Crash { pid } => {
                let i = pid.index();
                assert!(next.crash_budget > 0, "crash budget exhausted");
                assert!(!next.crashed[i], "process already crashed");
                next.crashed[i] = true;
                next.crash_budget -= 1;
                next.buffers[i].clear();
            }
            Action::Deliver { to, index } => {
                let i = to.index();
                assert!(!next.crashed[i], "cannot deliver to a crashed process");
                let env = next.buffers[i].remove(index);
                let n = next.n();
                let mut outbox = Vec::new();
                let mut rng = SimRng::seed(0);
                {
                    let mut ctx = Ctx::new(to, n, next.depth as u64, &mut outbox, &mut rng);
                    next.procs[i].on_receive(env, &mut ctx);
                }
                next.enqueue(to, outbox);
            }
        }
        next
    }

    /// A canonical fingerprint of the configuration, for visited-set
    /// dedup. Uses the (deterministic) `Debug` form of processes and the
    /// sorted buffers; collisions are impossible for distinct debug forms,
    /// and equal forms mean semantically equal worlds for the protocols in
    /// `bt-core` (whose state is fully `Debug`-visible and ordered).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{:?}|{:?}|{}|{:?}",
            self.procs, self.crashed, self.crash_budget, self.buffers
        );
        s
    }
}

impl<P: Process + fmt::Debug> fmt::Debug for World<P>
where
    P::Msg: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("procs", &self.procs)
            .field("crashed", &self.crashed)
            .field("crash_budget", &self.crash_budget)
            .field("depth", &self.depth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::{Config, Simple};

    fn tiny_world() -> World<Simple> {
        let config = Config::unchecked(2, 0);
        World::start(
            vec![
                Simple::new(config, Value::One),
                Simple::new(config, Value::One),
            ],
            1,
        )
    }

    #[test]
    fn start_fills_buffers_with_initial_broadcasts() {
        let w = tiny_world();
        // Each process broadcast to both; each buffer holds 2 messages.
        assert_eq!(
            w.actions()
                .iter()
                .filter(|a| matches!(a, Action::Deliver { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn crash_consumes_budget_and_silences() {
        let w = tiny_world();
        let crashed = w.apply(Action::Crash {
            pid: ProcessId::new(0),
        });
        assert!(crashed.is_crashed(ProcessId::new(0)));
        // No second crash offered (budget 1 used).
        assert!(crashed
            .actions()
            .iter()
            .all(|a| !matches!(a, Action::Crash { .. })));
        // No deliveries to the dead process.
        assert!(crashed
            .actions()
            .iter()
            .all(|a| !matches!(a, Action::Deliver { to, .. } if to.index() == 0)));
    }

    #[test]
    fn deliver_advances_protocol() {
        let w = tiny_world();
        // quota = n − k = 2 under unchecked(2, 0): two deliveries to p0
        // complete its phase 0.
        let w1 = w.apply(Action::Deliver {
            to: ProcessId::new(0),
            index: 0,
        });
        let w2 = w1.apply(Action::Deliver {
            to: ProcessId::new(0),
            index: 0,
        });
        assert_eq!(w2.decisions()[0], Some(Value::One), "unanimous 2-of-2");
    }

    #[test]
    fn fingerprint_distinguishes_and_matches() {
        let w = tiny_world();
        let a = w.apply(Action::Deliver {
            to: ProcessId::new(0),
            index: 0,
        });
        let b = w.apply(Action::Deliver {
            to: ProcessId::new(0),
            index: 0,
        });
        assert_eq!(a.fingerprint(), b.fingerprint(), "same action, same world");
        let c = w.apply(Action::Crash {
            pid: ProcessId::new(0),
        });
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn identical_pending_messages_collapse_to_one_action() {
        // Both initial broadcasts carry the same payload only if inputs
        // match AND senders differ — sorted buffers with equal (from, msg)
        // dedup: craft by delivering nothing and checking action count for
        // p0's buffer of two distinct-sender messages (no dedup).
        let w = tiny_world();
        let deliver_to_p0 = w
            .actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Deliver { to, .. } if to.index() == 0))
            .count();
        assert_eq!(deliver_to_p0, 2, "distinct senders do not dedup");
    }
}
