//! Exhaustive exploration of every legal schedule of a small world.

use core::fmt;
use std::collections::{BTreeSet, HashSet, VecDeque};

use simnet::{Process, Value};

use crate::world::World;

/// A terminal outcome observed along some schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Every non-crashed process decided this common value.
    Decided(Value),
    /// Two non-crashed processes decided different values — a consistency
    /// violation.
    Disagreement,
    /// No action was available and some non-crashed process had not
    /// decided — a deadlock.
    Deadlock,
}

/// What an exhaustive exploration found.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Exploration {
    /// Distinct terminal outcomes over all explored schedules.
    pub outcomes: BTreeSet<Outcome>,
    /// Distinct configurations visited.
    pub states: usize,
    /// Whether the search hit its state or depth cap before exhausting the
    /// schedule space (outcomes are then a lower bound).
    pub truncated: bool,
}

impl Exploration {
    /// The decision-reachability classification of the *initial*
    /// configuration, in the paper's §2.2 terminology.
    #[must_use]
    pub fn valence(&self) -> Valence {
        let zero = self.outcomes.contains(&Outcome::Decided(Value::Zero));
        let one = self.outcomes.contains(&Outcome::Decided(Value::One));
        match (zero, one) {
            (true, true) => Valence::Bivalent,
            (true, false) => Valence::ZeroValent,
            (false, true) => Valence::OneValent,
            (false, false) => Valence::NoDecision,
        }
    }

    /// Whether any schedule produced a disagreement or deadlock.
    #[must_use]
    pub fn safe(&self) -> bool {
        !self.outcomes.contains(&Outcome::Disagreement)
            && !self.outcomes.contains(&Outcome::Deadlock)
    }
}

/// The paper's valence classification of a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Valence {
    /// Only `F⁰` configurations are reachable.
    ZeroValent,
    /// Only `F¹` configurations are reachable.
    OneValent,
    /// Both decision values are reachable (Lemma 2's object of interest).
    Bivalent,
    /// No decision is reachable at all (how the Figure 1 protocol degrades
    /// when `k` exceeds `⌊(n−1)/2⌋`: witnesses become impossible and the
    /// system stays safe but never decides).
    NoDecision,
}

/// When an exploration may stop before exhausting the schedule space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EarlyStop {
    /// Run to exhaustion (or the caps). Required to *prove* univalence.
    #[default]
    Never,
    /// Stop as soon as both decision values have been observed — enough to
    /// certify bivalence, the common query of Lemma 2.
    OnBivalence,
    /// Stop at the first decision of any value — enough to certify
    /// reachability of *some* decision.
    OnAnyDecision,
}

/// Exhaustive breadth-first explorer with a visited-set and safety caps.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Stop after visiting this many distinct configurations.
    pub max_states: usize,
    /// Do not expand configurations deeper than this many actions.
    pub max_depth: usize,
    /// Optional sound early exit.
    pub early_stop: EarlyStop,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_states: 60_000,
            max_depth: 120,
            early_stop: EarlyStop::Never,
        }
    }
}

impl Explorer {
    /// Creates an explorer with explicit caps and no early exit.
    #[must_use]
    pub fn new(max_states: usize, max_depth: usize) -> Self {
        Explorer {
            max_states,
            max_depth,
            early_stop: EarlyStop::Never,
        }
    }

    /// Sets the early-exit policy.
    #[must_use]
    pub fn early_stop(mut self, early: EarlyStop) -> Self {
        self.early_stop = early;
        self
    }

    fn should_stop(&self, outcomes: &BTreeSet<Outcome>) -> bool {
        match self.early_stop {
            EarlyStop::Never => false,
            EarlyStop::OnBivalence => {
                outcomes.contains(&Outcome::Decided(Value::Zero))
                    && outcomes.contains(&Outcome::Decided(Value::One))
            }
            EarlyStop::OnAnyDecision => outcomes.iter().any(|o| matches!(o, Outcome::Decided(_))),
        }
    }

    /// Explores every schedule from `world` (up to the caps and early-exit
    /// policy), collecting terminal outcomes.
    pub fn explore<P>(&self, world: World<P>) -> Exploration
    where
        P: Process + Clone + fmt::Debug,
        P::Msg: Clone + fmt::Debug + Ord,
    {
        let mut outcomes = BTreeSet::new();
        let mut visited: HashSet<String> = HashSet::new();
        let mut frontier = VecDeque::new();
        let mut truncated = false;

        visited.insert(world.fingerprint());
        frontier.push_back(world);

        while let Some(w) = frontier.pop_front() {
            if w.disagreement() {
                outcomes.insert(Outcome::Disagreement);
                continue;
            }
            if w.all_correct_decided() {
                // All non-crashed decided and they agree (checked above);
                // record the common value.
                if let Some(v) = w.decisions().into_iter().flatten().next() {
                    outcomes.insert(Outcome::Decided(v));
                }
                if self.should_stop(&outcomes) {
                    truncated = true;
                    break;
                }
                continue;
            }
            let actions = w.actions();
            if actions.is_empty() {
                outcomes.insert(Outcome::Deadlock);
                continue;
            }
            if w.depth() >= self.max_depth {
                truncated = true;
                continue;
            }
            for action in actions {
                if visited.len() >= self.max_states {
                    truncated = true;
                    break;
                }
                let next = w.apply(action);
                if visited.insert(next.fingerprint()) {
                    frontier.push_back(next);
                }
            }
        }

        Exploration {
            outcomes,
            states: visited.len(),
            truncated,
        }
    }

    /// Breadth-first search for a schedule whose terminal configuration
    /// satisfies `goal`; returns the witnessing action sequence. The
    /// result can be replayed exactly through
    /// [`simnet::scheduler::ScriptedScheduler`] (delivery actions map to
    /// selections) or through [`World::apply`].
    ///
    /// Searches the same space as [`Explorer::explore`] under the same
    /// caps; `None` means no goal configuration was found within them.
    pub fn find_schedule<P>(
        &self,
        start: World<P>,
        mut goal: impl FnMut(&World<P>) -> bool,
    ) -> Option<Vec<crate::Action>>
    where
        P: Process + Clone + fmt::Debug,
        P::Msg: Clone + fmt::Debug + Ord,
    {
        // Nodes own their world plus a back-pointer (parent index, action).
        type Node<P> = (World<P>, Option<(usize, crate::Action)>);
        let mut nodes: Vec<Node<P>> = Vec::new();
        let mut visited: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        visited.insert(start.fingerprint());
        nodes.push((start, None));
        queue.push_back(0);

        while let Some(idx) = queue.pop_front() {
            if goal(&nodes[idx].0) {
                // Reconstruct the action path.
                let mut path = Vec::new();
                let mut cur = idx;
                while let Some((parent, action)) = nodes[cur].1 {
                    path.push(action);
                    cur = parent;
                }
                path.reverse();
                return Some(path);
            }
            if nodes[idx].0.depth() >= self.max_depth || visited.len() >= self.max_states {
                continue;
            }
            if nodes[idx].0.all_correct_decided() {
                continue; // terminal for our purposes
            }
            for action in nodes[idx].0.actions() {
                let next = nodes[idx].0.apply(action);
                if visited.insert(next.fingerprint()) {
                    nodes.push((next, Some((idx, action))));
                    queue.push_back(nodes.len() - 1);
                }
            }
        }
        None
    }

    /// Samples `walks` uniformly random schedules (including random crash
    /// actions) of at most `max_depth` steps each, collecting the terminal
    /// outcomes reached.
    ///
    /// Every walk is a genuine schedule, so any outcome returned is a
    /// *witness* — sampling soundly certifies reachability (e.g.
    /// bivalence) even where breadth-first exhaustion is hopeless; it just
    /// cannot certify *un*reachability.
    pub fn sample_outcomes<P>(&self, start: &World<P>, walks: usize, seed: u64) -> BTreeSet<Outcome>
    where
        P: Process + Clone + fmt::Debug,
        P::Msg: Clone + fmt::Debug + Ord,
    {
        let mut outcomes = BTreeSet::new();
        let mut rng = simnet::SimRng::seed(seed);
        for _ in 0..walks {
            let mut w = start.clone();
            for _ in 0..self.max_depth {
                if w.disagreement() {
                    outcomes.insert(Outcome::Disagreement);
                    break;
                }
                if w.all_correct_decided() {
                    if let Some(v) = w.decisions().into_iter().flatten().next() {
                        outcomes.insert(Outcome::Decided(v));
                    }
                    break;
                }
                let actions = w.actions();
                if actions.is_empty() {
                    outcomes.insert(Outcome::Deadlock);
                    break;
                }
                w = w.apply(actions[rng.index(actions.len())]);
            }
            if self.should_stop(&outcomes) {
                break;
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::{Config, Simple};

    fn simple_world(n: usize, k: usize, inputs: &[Value], crashes: usize) -> World<Simple> {
        let config = Config::unchecked(n, k);
        World::start(
            inputs.iter().map(|&v| Simple::new(config, v)).collect(),
            crashes,
        )
    }

    #[test]
    fn unanimous_is_univalent() {
        let e = Explorer::default().explore(simple_world(3, 0, &[Value::One; 3], 0));
        assert!(!e.truncated, "3 processes, no crashes: must exhaust");
        assert_eq!(e.valence(), Valence::OneValent);
        assert!(e.safe());
    }

    #[test]
    fn unanimous_zero_is_zero_valent() {
        let e = Explorer::default().explore(simple_world(3, 0, &[Value::Zero; 3], 0));
        assert_eq!(e.valence(), Valence::ZeroValent);
    }

    #[test]
    fn crashes_can_deadlock_waiting_quota() {
        // n = 2, k = 0 (quota 2) but the adversary may crash one process.
        // With mixed inputs no phase-0 decision is possible (it needs two
        // equal values), so the survivor reaches phase 1 and then waits for
        // a quota its dead peer can never fill.
        let e = Explorer::default().explore(simple_world(2, 0, &[Value::One, Value::Zero], 1));
        assert!(e.outcomes.contains(&Outcome::Deadlock), "{:?}", e.outcomes);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = Explorer::default().explore(simple_world(3, 0, &[Value::One; 3], 0));
        let b = Explorer::default().explore(simple_world(3, 0, &[Value::One; 3], 0));
        assert_eq!(a.states, b.states);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn find_schedule_reaches_a_decision_and_replays() {
        use crate::Action;
        let start = simple_world(3, 0, &[Value::One; 3], 0);
        let schedule = Explorer::default()
            .find_schedule(start.clone(), |w| w.all_correct_decided())
            .expect("a decision is reachable");
        assert!(!schedule.is_empty());
        // Replaying the schedule step by step reproduces the decision.
        let mut w = start;
        for action in &schedule {
            w = w.apply(*action);
        }
        assert!(w.all_correct_decided());
        assert!(
            schedule.iter().all(|a| matches!(a, Action::Deliver { .. })),
            "no crashes needed"
        );
    }

    #[test]
    fn find_schedule_returns_none_for_unreachable_goal() {
        let start = simple_world(2, 0, &[Value::One; 2], 0);
        let schedule = Explorer::new(5_000, 30).find_schedule(start, |w| w.disagreement());
        assert!(schedule.is_none(), "the protocol never disagrees");
    }

    #[test]
    fn sampled_walks_find_both_outcomes_for_mixed_inputs() {
        let start = simple_world(3, 0, &[Value::One, Value::One, Value::Zero], 1);
        let outcomes = Explorer::default().sample_outcomes(&start, 500, 0xABC);
        assert!(
            outcomes.iter().any(|o| matches!(o, Outcome::Decided(_))),
            "{outcomes:?}"
        );
    }

    #[test]
    fn caps_mark_truncation() {
        let explorer = Explorer::new(10, 2);
        let e = explorer.explore(simple_world(3, 1, &[Value::One; 3], 1));
        assert!(e.truncated);
    }
}
