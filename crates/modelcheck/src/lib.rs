//! # modelcheck — the lower-bound arguments, made executable
//!
//! §2.2 and §3.2 of Bracha & Toueg argue impossibility through
//! *configurations*, *schedules* and *valence*: a configuration is bivalent
//! if both decision values are reachable, and the lower bounds (Theorem 1:
//! no `⌊n/2⌋`-resilient fail-stop protocol; Theorem 3: no `⌊n/3⌋`-resilient
//! malicious protocol) follow from chasing bivalence through schedules.
//!
//! This crate implements those notions concretely for tiny systems:
//!
//! * [`World`] — a cloneable configuration (process states + buffers) with
//!   the adversary's two moves, message delivery and crash;
//! * [`Explorer`] — exhaustive breadth-first search over every schedule,
//!   with canonical-state dedup, reporting every reachable terminal
//!   [`Outcome`];
//! * [`Valence`] — the §2.2 classification (0-valent / 1-valent / bivalent,
//!   plus the degenerate "no decision reachable");
//! * [`demos`] — Lemma 2's bivalent initial configuration found by scan,
//!   and the Theorem 1 degradation: beyond `⌊(n−1)/2⌋` the Figure 1
//!   protocol *provably never decides* (its witness threshold exceeds its
//!   quota), the only safe way to fail.
//!
//! ## Quickstart
//!
//! ```
//! use bt_core::Config;
//! use modelcheck::{demos, Valence};
//! use simnet::Value;
//!
//! // Lemma 2: some initial configuration of a 1-resilient 3-process
//! // system is bivalent.
//! let config = Config::fail_stop(3, 1)?;
//! let bivalent = demos::find_bivalent_initial(config, 1);
//! assert!(bivalent.is_some());
//!
//! // Unanimity, by contrast, pins the decision.
//! let v = demos::failstop_valence(config, &[Value::One; 3], 1);
//! assert_eq!(v, Valence::OneValent);
//! # Ok::<(), bt_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod demos;
mod explore;
mod world;

pub use explore::{EarlyStop, Exploration, Explorer, Outcome, Valence};
pub use world::{Action, World};
