//! In-memory per-phase aggregation over one or many runs.
//!
//! [`PhaseAggregator`] is the telemetry workhorse: attach it to a `Sim` (or
//! to every trial of a `run_trials_observed` sweep) and it folds the event
//! stream into per-phase counters plus run-level samples — the
//! phases-to-decision distribution §4.1/§4.2 bound, and the decision lag
//! between the first and last correct decision of each run. Aggregation is
//! pure folding over the deterministic event order, so identical seeds
//! produce identical aggregator state.

use simnet::{Event, ProtocolEvent, RunReport, Subscriber, Summary};

/// Counters for a single protocol phase, accumulated across runs.
///
/// Message and step counts are attributed to the phase the acting process
/// was in when the event fired (tracked from its `phase_entered` stream;
/// processes start in phase 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PhaseStat {
    /// `phase_entered` events for this phase.
    pub entries: u64,
    /// Messages sent by processes while in this phase.
    pub messages_sent: u64,
    /// Deliveries (atomic receive steps) taken by processes in this phase.
    pub deliveries: u64,
    /// Witness observations (`witness_reached`) in this phase.
    pub witnesses: u64,
    /// Broadcast acceptances (`echo_accepted`) in this phase.
    pub echo_accepts: u64,
    /// Estimate changes (`value_flipped`) in this phase.
    pub value_flips: u64,
    /// Local coin draws (`coin_flipped`) in this phase.
    pub coin_flips: u64,
    /// Decisions made in this phase.
    pub decisions: u64,
}

/// A [`Subscriber`] that folds run events into per-phase telemetry.
///
/// One aggregator may observe many runs back to back (e.g. through
/// `run_trials_observed`); per-run tracking state resets on each
/// `on_run_start`, while the phase counters and run-level samples
/// accumulate.
///
/// # Examples
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use obs::PhaseAggregator;
///
/// let agg = Arc::new(Mutex::new(PhaseAggregator::new()));
/// // ... builder.subscriber(agg.clone()); run ...
/// let agg = agg.lock().unwrap();
/// assert_eq!(agg.runs(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PhaseAggregator {
    phases: Vec<PhaseStat>,
    current_phase: Vec<u64>,
    runs: u64,
    decided_runs: u64,
    phases_to_decision: Vec<f64>,
    decision_lags: Vec<f64>,
    recoveries: u64,
    replayed_deliveries: u64,
}

impl PhaseAggregator {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        PhaseAggregator::default()
    }

    /// Per-phase counters, indexed by phase number.
    #[must_use]
    pub fn phases(&self) -> &[PhaseStat] {
        &self.phases
    }

    /// Runs observed so far.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs in which every correct process decided.
    #[must_use]
    pub fn decided_runs(&self) -> u64 {
        self.decided_runs
    }

    /// Crash-recovery events observed (netstack runs only; the simulator
    /// never emits them).
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Total deliveries replayed from write-ahead logs across all
    /// observed recoveries.
    #[must_use]
    pub fn replayed_deliveries(&self) -> u64 {
        self.replayed_deliveries
    }

    /// Raw per-run phases-to-decision samples (decided runs only).
    #[must_use]
    pub fn phases_to_decision_samples(&self) -> &[f64] {
        &self.phases_to_decision
    }

    /// The phases-to-decision distribution (p50/p95/max/mean and friends)
    /// over all decided runs — the quantity the paper's §4 bounds speak
    /// about.
    #[must_use]
    pub fn phases_histogram(&self) -> Summary {
        Summary::of(self.phases_to_decision.clone())
    }

    /// The decision-lag distribution: per decided run, the number of steps
    /// between the first and the last correct process deciding. Small lag
    /// means decisions cluster; large lag means stragglers.
    #[must_use]
    pub fn decision_lag(&self) -> Summary {
        Summary::of(self.decision_lags.clone())
    }

    fn stat_mut(&mut self, phase: u64) -> &mut PhaseStat {
        let idx = phase as usize;
        if idx >= self.phases.len() {
            self.phases.resize(idx + 1, PhaseStat::default());
        }
        &mut self.phases[idx]
    }

    fn current(&mut self, pid: simnet::ProcessId) -> u64 {
        self.current_phase.get(pid.index()).copied().unwrap_or(0)
    }

    /// Renders the per-phase table plus the run-level distributions.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6} {:>9}",
            "phase",
            "entries",
            "sent",
            "delivered",
            "witnesses",
            "accepts",
            "flips",
            "coins",
            "decisions"
        );
        for (phase, s) in self.phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6} {:>9}",
                phase,
                s.entries,
                s.messages_sent,
                s.deliveries,
                s.witnesses,
                s.echo_accepts,
                s.value_flips,
                s.coin_flips,
                s.decisions
            );
        }
        let _ = writeln!(out, "runs: {} ({} decided)", self.runs, self.decided_runs);
        if self.recoveries > 0 {
            let _ = writeln!(
                out,
                "recoveries: {} ({} deliveries replayed)",
                self.recoveries, self.replayed_deliveries
            );
        }
        let _ = writeln!(out, "phases to decision: {}", self.phases_histogram());
        let _ = writeln!(out, "decision lag (steps): {}", self.decision_lag());
        out
    }
}

impl Subscriber for PhaseAggregator {
    fn on_run_start(&mut self, n: usize, _seed: u64) {
        self.current_phase.clear();
        self.current_phase.resize(n, 0);
    }

    fn on_event(&mut self, event: &Event) {
        match *event {
            Event::Send { from, .. } => {
                let phase = self.current(from);
                self.stat_mut(phase).messages_sent += 1;
            }
            Event::Deliver { to, .. } => {
                let phase = self.current(to);
                self.stat_mut(phase).deliveries += 1;
            }
            Event::Protocol { pid, event, .. } => match event {
                ProtocolEvent::PhaseEntered { phase } => {
                    if pid.index() >= self.current_phase.len() {
                        self.current_phase.resize(pid.index() + 1, 0);
                    }
                    self.current_phase[pid.index()] = phase;
                    self.stat_mut(phase).entries += 1;
                }
                ProtocolEvent::WitnessReached { phase, .. } => {
                    self.stat_mut(phase).witnesses += 1;
                }
                ProtocolEvent::EchoAccepted { phase, .. } => {
                    self.stat_mut(phase).echo_accepts += 1;
                }
                ProtocolEvent::ValueFlipped { phase, .. } => {
                    self.stat_mut(phase).value_flips += 1;
                }
                ProtocolEvent::CoinFlipped { phase, .. } => {
                    self.stat_mut(phase).coin_flips += 1;
                }
                ProtocolEvent::Decided { phase, .. } => {
                    self.stat_mut(phase).decisions += 1;
                }
                ProtocolEvent::Halted { .. } => {}
            },
            Event::Recover { replayed, .. } => {
                self.recoveries += 1;
                self.replayed_deliveries += replayed;
            }
            Event::Start { .. } | Event::Decide { .. } | Event::Halt { .. } => {}
        }
    }

    fn on_run_end(&mut self, report: &RunReport) {
        self.runs += 1;
        if report.all_correct_decided() {
            self.decided_runs += 1;
            if let Some(p) = report.phases_to_decision() {
                self.phases_to_decision.push(p as f64);
            }
            let steps: Vec<u64> = report
                .correct()
                .filter_map(|i| report.decision_steps[i])
                .collect();
            if let (Some(first), Some(last)) = (steps.iter().min(), steps.iter().max()) {
                self.decision_lags.push((last - first) as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use simnet::ProcessId;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn sends_and_deliveries_follow_the_actor_phase() {
        let mut agg = PhaseAggregator::new();
        agg.on_run_start(2, 0);
        // p0 still in phase 0: attributed there.
        agg.on_event(&Event::Send {
            step: 0,
            from: p(0),
            to: p(1),
        });
        // p0 advances to phase 2; later activity lands there.
        agg.on_event(&Event::Protocol {
            step: 1,
            pid: p(0),
            event: ProtocolEvent::PhaseEntered { phase: 2 },
        });
        agg.on_event(&Event::Send {
            step: 2,
            from: p(0),
            to: p(1),
        });
        agg.on_event(&Event::Deliver {
            step: 3,
            to: p(0),
            from: p(1),
            index: 0,
        });
        assert_eq!(agg.phases()[0].messages_sent, 1);
        assert_eq!(agg.phases()[2].messages_sent, 1);
        assert_eq!(agg.phases()[2].deliveries, 1);
        assert_eq!(agg.phases()[2].entries, 1);
    }

    #[test]
    fn protocol_events_tally_into_their_phase() {
        let mut agg = PhaseAggregator::new();
        agg.on_run_start(1, 0);
        for event in [
            ProtocolEvent::WitnessReached {
                phase: 1,
                value: simnet::Value::One,
                cardinality: 3,
            },
            ProtocolEvent::EchoAccepted {
                phase: 1,
                subject: p(0),
                value: simnet::Value::One,
                echoes: 4,
            },
            ProtocolEvent::ValueFlipped {
                phase: 1,
                from: simnet::Value::Zero,
                to: simnet::Value::One,
            },
            ProtocolEvent::CoinFlipped {
                phase: 1,
                value: simnet::Value::Zero,
            },
            ProtocolEvent::Decided {
                phase: 1,
                value: simnet::Value::One,
            },
        ] {
            agg.on_event(&Event::Protocol {
                step: 1,
                pid: p(0),
                event,
            });
        }
        let s = agg.phases()[1];
        assert_eq!(
            (
                s.witnesses,
                s.echo_accepts,
                s.value_flips,
                s.coin_flips,
                s.decisions
            ),
            (1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn phase_tracking_resets_between_runs() {
        let mut agg = PhaseAggregator::new();
        agg.on_run_start(1, 0);
        agg.on_event(&Event::Protocol {
            step: 1,
            pid: p(0),
            event: ProtocolEvent::PhaseEntered { phase: 5 },
        });
        agg.on_run_start(1, 1);
        agg.on_event(&Event::Send {
            step: 0,
            from: p(0),
            to: p(0),
        });
        // The second run's send must land in phase 0, not phase 5.
        assert_eq!(agg.phases()[0].messages_sent, 1);
        assert_eq!(agg.phases()[5].messages_sent, 0);
    }

    #[test]
    fn recover_events_accumulate_run_level_counters() {
        let mut agg = PhaseAggregator::new();
        agg.on_run_start(2, 0);
        agg.on_event(&Event::Recover {
            step: 4,
            pid: p(1),
            replayed: 3,
        });
        agg.on_event(&Event::Recover {
            step: 9,
            pid: p(0),
            replayed: 5,
        });
        assert_eq!(agg.recoveries(), 2);
        assert_eq!(agg.replayed_deliveries(), 8);
        assert!(agg
            .render()
            .contains("recoveries: 2 (8 deliveries replayed)"));
    }

    #[test]
    fn render_mentions_each_column_and_summary() {
        let agg = PhaseAggregator::new();
        let text = agg.render();
        for needle in [
            "phase",
            "sent",
            "decisions",
            "phases to decision",
            "decision lag",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
