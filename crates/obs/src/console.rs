//! Human-readable run narration.
//!
//! [`ConsoleReporter`] turns the event stream into the same one-line-per-
//! event narration as `Trace::render`, but streamed through the subscriber
//! hook — unbounded by a trace capacity, optionally echoed to stdout as the
//! run executes. Tests use the buffered form and assert on its text.

use simnet::{Event, ProtocolEvent, RunReport, RunStatus, Subscriber};

/// A [`Subscriber`] that narrates a run in human-readable lines.
#[derive(Debug, Default)]
pub struct ConsoleReporter {
    lines: Vec<String>,
    echo: bool,
}

impl ConsoleReporter {
    /// A reporter that only buffers (read it back with
    /// [`ConsoleReporter::text`]).
    #[must_use]
    pub fn new() -> Self {
        ConsoleReporter::default()
    }

    /// A reporter that also prints each line to stdout as it happens.
    #[must_use]
    pub fn echoing() -> Self {
        ConsoleReporter {
            lines: Vec::new(),
            echo: true,
        }
    }

    /// The narration so far, newline-terminated.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    fn emit(&mut self, line: String) {
        if self.echo {
            println!("{line}");
        }
        self.lines.push(line);
    }
}

fn narrate_protocol(e: &ProtocolEvent) -> String {
    match e {
        ProtocolEvent::PhaseEntered { phase } => format!("enters phase {phase}"),
        ProtocolEvent::WitnessReached {
            phase,
            value,
            cardinality,
        } => format!("sees witness for {value} (cardinality {cardinality}) in phase {phase}"),
        ProtocolEvent::EchoAccepted {
            phase,
            subject,
            value,
            echoes,
        } => format!("accepts {subject}'s {value} ({echoes} echoes) in phase {phase}"),
        ProtocolEvent::ValueFlipped { phase, from, to } => {
            format!("flips {from} → {to} in phase {phase}")
        }
        ProtocolEvent::CoinFlipped { phase, value } => {
            format!("flips coin → {value} in phase {phase}")
        }
        ProtocolEvent::Decided { phase, value } => format!("decides {value} in phase {phase}"),
        ProtocolEvent::Halted { phase } => format!("leaves the protocol in phase {phase}"),
    }
}

impl Subscriber for ConsoleReporter {
    fn on_run_start(&mut self, n: usize, seed: u64) {
        self.emit(format!("=== run: n={n} seed={seed} ==="));
    }

    fn on_event(&mut self, event: &Event) {
        let line = match *event {
            Event::Start { pid } => format!("[    0] {pid} starts"),
            Event::Send { step, from, to } => format!("[{step:>5}] {from} sends to {to}"),
            Event::Deliver { step, to, from, .. } => {
                format!("[{step:>5}] {to} receives from {from}")
            }
            Event::Decide { step, pid, value } => format!("[{step:>5}] {pid} decides {value}"),
            Event::Halt { step, pid } => format!("[{step:>5}] {pid} halts"),
            Event::Recover {
                step,
                pid,
                replayed,
            } => format!("[{step:>5}] {pid} recovers ({replayed} deliveries replayed)"),
            Event::Protocol { step, pid, event } => {
                format!("[{step:>5}] {pid} {}", narrate_protocol(&event))
            }
        };
        self.emit(line);
    }

    fn on_run_end(&mut self, report: &RunReport) {
        let status = match report.status {
            RunStatus::Stopped => "stopped",
            RunStatus::Quiescent => "quiescent",
            RunStatus::StepLimitReached => "step limit reached",
        };
        let decision = report
            .decided_value()
            .map_or_else(|| "none".to_string(), |v| v.to_string());
        self.emit(format!(
            "=== {status} after {} steps; decision: {decision}; phases to decision: {} ===",
            report.steps,
            report
                .phases_to_decision()
                .map_or_else(|| "n/a".to_string(), |p| p.to_string()),
        ));
    }
}

#[cfg(test)]
mod tests {
    use simnet::{ProcessId, Value};

    use super::*;

    #[test]
    fn narration_covers_engine_and_protocol_events() {
        let mut c = ConsoleReporter::new();
        c.on_run_start(3, 42);
        c.on_event(&Event::Start {
            pid: ProcessId::new(0),
        });
        c.on_event(&Event::Protocol {
            step: 2,
            pid: ProcessId::new(0),
            event: ProtocolEvent::WitnessReached {
                phase: 1,
                value: Value::One,
                cardinality: 2,
            },
        });
        let text = c.text();
        for needle in ["n=3 seed=42", "p0 starts", "witness for 1"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
