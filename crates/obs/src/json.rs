//! A minimal JSON value, writer and parser.
//!
//! The workspace builds offline with no serde, and the JSON it needs is
//! tiny: flat objects of numbers and short strings, one per line. This
//! module implements exactly that — a [`Json`] tree, a deterministic
//! writer (object keys keep insertion order), and a strict recursive
//! descent parser. Round-tripping a value through [`Json::render`] and
//! [`Json::parse`] is the identity on everything the sinks emit.

use std::fmt::Write as _;

/// Largest integer `f64` represents exactly (`2⁵³`).
const MAX_EXACT_F64: u64 = 1 << 53;

/// A JSON value. Objects preserve insertion order so rendering is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; rendered without a fraction when integral.
    Num(f64),
    /// A non-negative integer too large for `f64` to hold exactly
    /// (`> 2⁵³`). [`Json::num`] and the parser pick this variant
    /// automatically, so 64-bit seeds round-trip losslessly; smaller
    /// integers stay [`Json::Num`].
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key-value pairs.
    Obj(Vec<(String, Json)>),
}

/// Why parsing failed: a message and the byte offset it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset in the input where the problem was noticed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience: a number from any `u64`, losslessly. Values beyond
    /// `f64`'s exact-integer range become [`Json::U64`].
    #[must_use]
    pub fn num(n: u64) -> Json {
        if n <= MAX_EXACT_F64 {
            Json::Num(n as f64)
        } else {
            Json::U64(n)
        }
    }

    /// Convenience: a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an integral non-negative number.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                message: "trailing characters after value".into(),
                offset: pos,
            });
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(message: impl Into<String>, offset: usize) -> JsonError {
    JsonError {
        message: message.into(),
        offset,
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(err(format!("unexpected byte {:?}", c as char), *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(format!("expected `{literal}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("sliced on ascii boundaries");
    // Plain decimal integers beyond f64's exact range keep full precision
    // (mirrors `Json::num`, so parse ∘ render is the identity on either
    // numeric variant).
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::num(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(format!("malformed number `{text}`"), start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err("non-ascii \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("malformed \\u escape", *pos))?;
                        // Surrogates are not emitted by our writer; reject.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err("\\u escape is not a scalar value", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err("unknown escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid; find the next char boundary).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("invalid utf-8", *pos))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected string key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected `:`", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_json() {
        let v = Json::Obj(vec![
            ("kind".into(), Json::str("send")),
            ("step".into(), Json::num(3)),
            ("ok".into(), Json::Bool(true)),
            ("arr".into(), Json::Arr(vec![Json::num(1), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"kind":"send","step":3,"ok":true,"arr":[1,null]}"#
        );
    }

    #[test]
    fn round_trips_values() {
        let cases = [
            r#"{"a":1,"b":[true,false,null],"c":{"d":"x"}}"#,
            r#"[1,2.5,-3]"#,
            r#""with \"escapes\" and \n newline""#,
            "42",
        ];
        for text in cases {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.render()).unwrap();
            assert_eq!(v, again, "round trip of {text}");
        }
    }

    #[test]
    fn escapes_round_trip_through_writer() {
        let s = "quote\" slash\\ tab\t nl\n unicode é control\u{1}";
        let rendered = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn accessors_read_objects() {
        let v = Json::parse(r#"{"pid":4,"name":"p4","x":1.5}"#).unwrap();
        assert_eq!(v.get("pid").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("pid").and_then(Json::as_usize), Some(4));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("p4"));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("x").and_then(Json::as_u64), None, "not integral");
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn large_u64_round_trips_losslessly() {
        for n in [u64::MAX, 0xDEAD_BEEF_DEAD_BEEF, (1 << 53) + 1] {
            let v = Json::num(n);
            assert_eq!(v, Json::U64(n), "beyond 2^53 uses the exact variant");
            assert_eq!(v.render(), n.to_string());
            let parsed = Json::parse(&v.render()).unwrap();
            assert_eq!(parsed.as_u64(), Some(n), "exact after round trip");
            assert_eq!(parsed, v);
        }
        // At or below 2^53 the f64 variant is canonical for both
        // constructor and parser.
        assert_eq!(Json::num(1 << 53), Json::Num((1u64 << 53) as f64));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", r#"{"a" 1}"#, "1 2", "\"open", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }
}
