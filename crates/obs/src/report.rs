//! Offline trace analysis: turn a parsed JSONL trace back into a per-phase
//! timeline and a cross-run summary table. This is the engine behind the
//! `btreport` binary.

use simnet::{Event, ProcessId, ProtocolEvent, Summary};

use crate::aggregate::PhaseStat;
use crate::jsonl::TraceLine;

/// Per-phase row of one run's timeline.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseRow {
    /// First (step, pid) at which any process entered the phase.
    first_entry: Option<(u64, ProcessId)>,
    stat: PhaseStat,
}

/// State folded over one run's events.
#[derive(Debug, Default)]
struct RunState {
    header: Option<(usize, u64)>,
    current_phase: Vec<u64>,
    rows: Vec<PhaseRow>,
    decide_phases: Vec<u64>,
    recoveries: u64,
    replayed_deliveries: u64,
}

impl RunState {
    fn row(&mut self, phase: u64) -> &mut PhaseRow {
        let idx = phase as usize;
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, PhaseRow::default);
        }
        &mut self.rows[idx]
    }

    fn phase_of(&mut self, pid: ProcessId) -> u64 {
        self.current_phase.get(pid.index()).copied().unwrap_or(0)
    }

    fn fold(&mut self, event: &Event) {
        match *event {
            Event::Send { from, .. } => {
                let phase = self.phase_of(from);
                self.row(phase).stat.messages_sent += 1;
            }
            Event::Deliver { to, .. } => {
                let phase = self.phase_of(to);
                self.row(phase).stat.deliveries += 1;
            }
            Event::Protocol { step, pid, event } => match event {
                ProtocolEvent::PhaseEntered { phase } => {
                    if pid.index() >= self.current_phase.len() {
                        self.current_phase.resize(pid.index() + 1, 0);
                    }
                    self.current_phase[pid.index()] = phase;
                    let row = self.row(phase);
                    row.stat.entries += 1;
                    if row.first_entry.is_none() {
                        row.first_entry = Some((step, pid));
                    }
                }
                ProtocolEvent::WitnessReached { phase, .. } => {
                    self.row(phase).stat.witnesses += 1;
                }
                ProtocolEvent::EchoAccepted { phase, .. } => {
                    self.row(phase).stat.echo_accepts += 1;
                }
                ProtocolEvent::ValueFlipped { phase, .. } => {
                    self.row(phase).stat.value_flips += 1;
                }
                ProtocolEvent::CoinFlipped { phase, .. } => {
                    self.row(phase).stat.coin_flips += 1;
                }
                ProtocolEvent::Decided { phase, .. } => {
                    self.row(phase).stat.decisions += 1;
                    self.decide_phases.push(phase);
                }
                ProtocolEvent::Halted { .. } => {}
            },
            Event::Recover { replayed, .. } => {
                self.recoveries += 1;
                self.replayed_deliveries += replayed;
            }
            Event::Start { .. } | Event::Decide { .. } | Event::Halt { .. } => {}
        }
    }

    fn render(&self, out: &mut String, index: usize, footer: Option<&TraceLine>) {
        use std::fmt::Write as _;
        match self.header {
            Some((n, seed)) => {
                let _ = writeln!(out, "run {index}: n={n} seed={seed}");
            }
            None => {
                let _ = writeln!(out, "run {index}: (no run_start header)");
            }
        }
        let _ = writeln!(
            out,
            "  {:>5} {:>12} {:>8} {:>6} {:>9} {:>9} {:>7} {:>6} {:>6} {:>9}",
            "phase",
            "first entry",
            "entries",
            "sent",
            "delivered",
            "witnesses",
            "accepts",
            "flips",
            "coins",
            "decisions"
        );
        for (phase, row) in self.rows.iter().enumerate() {
            let first = row
                .first_entry
                .map_or_else(|| "-".to_string(), |(step, pid)| format!("{pid}@{step}"));
            let s = row.stat;
            let _ = writeln!(
                out,
                "  {:>5} {:>12} {:>8} {:>6} {:>9} {:>9} {:>7} {:>6} {:>6} {:>9}",
                phase,
                first,
                s.entries,
                s.messages_sent,
                s.deliveries,
                s.witnesses,
                s.echo_accepts,
                s.value_flips,
                s.coin_flips,
                s.decisions
            );
        }
        if self.recoveries > 0 {
            let _ = writeln!(
                out,
                "  recoveries: {} ({} deliveries replayed from WAL)",
                self.recoveries, self.replayed_deliveries
            );
        }
        if let Some(TraceLine::RunEnd {
            status,
            steps,
            decided,
            max_phase,
            recovered,
            equivocations,
        }) = footer
        {
            let mut extras = String::new();
            if *recovered > 0 {
                let _ = write!(extras, "; recovered: {recovered}");
            }
            if *equivocations > 0 {
                let _ = write!(extras, "; equivocations: {equivocations}");
            }
            let _ = writeln!(
                out,
                "  {status} after {steps} steps; decided: {decided}; max phase: {max_phase}{extras}"
            );
        }
    }

    /// Phases-to-decision for this run: the largest phase in which any
    /// `decided` protocol event fired (`None` if nothing decided).
    fn phases_to_decision(&self) -> Option<u64> {
        self.decide_phases.iter().copied().max()
    }
}

/// Renders a full report — per-run timelines plus a cross-run summary — from
/// a parsed trace.
#[must_use]
pub fn render_report(lines: &[TraceLine]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut runs: Vec<(RunState, Option<TraceLine>)> = Vec::new();
    let mut current: Option<RunState> = None;

    for line in lines {
        match line {
            TraceLine::RunStart { n, seed } => {
                if let Some(open) = current.take() {
                    runs.push((open, None));
                }
                let mut state = RunState {
                    header: Some((*n, *seed)),
                    ..RunState::default()
                };
                state.current_phase.resize(*n, 0);
                current = Some(state);
            }
            TraceLine::Event(event) => {
                current.get_or_insert_with(RunState::default).fold(event);
            }
            TraceLine::RunEnd { .. } => {
                let open = current.take().unwrap_or_default();
                runs.push((open, Some(line.clone())));
            }
        }
    }
    if let Some(open) = current.take() {
        runs.push((open, None));
    }

    let mut decided_phases = Vec::new();
    for (index, (state, footer)) in runs.iter().enumerate() {
        state.render(&mut out, index, footer.as_ref());
        if let Some(p) = state.phases_to_decision() {
            decided_phases.push(p as f64);
        }
    }
    let _ = writeln!(out, "runs: {}", runs.len());
    if !decided_phases.is_empty() {
        let _ = writeln!(out, "phases to decision: {}", Summary::of(decided_phases));
    }
    out
}

#[cfg(test)]
mod tests {
    use simnet::Value;

    use super::*;

    #[test]
    fn report_shows_timeline_and_summary() {
        let p = ProcessId::new;
        let lines = vec![
            TraceLine::RunStart { n: 2, seed: 7 },
            TraceLine::Event(Event::Start { pid: p(0) }),
            TraceLine::Event(Event::Send {
                step: 0,
                from: p(0),
                to: p(1),
            }),
            TraceLine::Event(Event::Protocol {
                step: 1,
                pid: p(1),
                event: ProtocolEvent::PhaseEntered { phase: 1 },
            }),
            TraceLine::Event(Event::Protocol {
                step: 2,
                pid: p(1),
                event: ProtocolEvent::Decided {
                    phase: 1,
                    value: Value::One,
                },
            }),
            TraceLine::Event(Event::Recover {
                step: 3,
                pid: p(0),
                replayed: 2,
            }),
            TraceLine::RunEnd {
                status: "stopped".into(),
                steps: 2,
                decided: true,
                max_phase: 1,
                recovered: 2,
                equivocations: 1,
            },
        ];
        let text = render_report(&lines);
        for needle in [
            "run 0: n=2 seed=7",
            "p1@1",
            "stopped after 2 steps",
            "recoveries: 1 (2 deliveries replayed from WAL)",
            "recovered: 2",
            "equivocations: 1",
            "runs: 1",
            "phases to decision",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn headerless_events_still_report() {
        let lines = vec![TraceLine::Event(Event::Start {
            pid: ProcessId::new(0),
        })];
        let text = render_report(&lines);
        assert!(text.contains("no run_start header"), "{text}");
    }
}
