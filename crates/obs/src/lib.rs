//! # obs — observability sinks for the simulator's subscriber hook
//!
//! `simnet` exposes a [`Subscriber`](simnet::Subscriber) slot that streams
//! every engine event (send, deliver, decide, halt) and every protocol-level
//! event (phase entered, witness reached, echo accepted, value flipped, coin
//! flipped, decided, halted) out of a run. This crate provides the sinks
//! that make the stream useful:
//!
//! * [`PhaseAggregator`] — in-memory per-phase telemetry: message/step
//!   counts attributed to the actor's phase, a phases-to-decision histogram
//!   (p50/p95/max/mean) and decision-lag tracking across runs;
//! * [`JsonlSink`] — a deterministic JSONL trace writer whose output
//!   round-trips through [`parse_trace`] for offline replay;
//! * [`ConsoleReporter`] — a human-readable narration of the run;
//! * [`render_report`] — the per-phase timeline + summary renderer behind
//!   the `btreport` binary.
//!
//! All sinks share one convention: attach them as
//! `Arc<Mutex<Sink>>` through `SimBuilder::subscriber` (the
//! [`SharedSubscriber`](simnet::SharedSubscriber) alias), keep your own
//! clone of the `Arc`, and read the sink back after the run.
//!
//! ```
//! use std::sync::{Arc, Mutex};
//! use obs::JsonlSink;
//! use simnet::SharedSubscriber;
//!
//! let sink = Arc::new(Mutex::new(JsonlSink::new()));
//! let shared: SharedSubscriber = sink.clone();
//! // builder.subscriber(shared); let report = builder.build().run();
//! // let trace_text = sink.lock().unwrap().contents();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod console;
pub mod json;
mod jsonl;
pub mod metrics;
mod report;

pub use aggregate::{PhaseAggregator, PhaseStat};
pub use console::ConsoleReporter;
pub use jsonl::{
    event_from_json, event_to_json, parse_line, parse_trace, schedule_of, JsonlSink, TraceLine,
};
pub use report::render_report;
