//! JSONL trace encoding: one JSON object per line, one line per event.
//!
//! The format is deliberately flat and stable — it is the on-disk interface
//! between an instrumented run ([`JsonlSink`]) and offline tooling
//! (`btreport`, future regression diffing). A trace file holds one or more
//! runs, each bracketed by a `run_start` and a `run_end` record:
//!
//! ```text
//! {"kind":"run_start","n":4,"seed":7}
//! {"kind":"start","pid":0}
//! {"kind":"send","step":0,"from":0,"to":1}
//! {"kind":"deliver","step":1,"to":1,"from":0,"index":0}
//! {"kind":"phase_entered","step":1,"pid":1,"phase":1}
//! {"kind":"decide","step":9,"pid":1,"value":1}
//! {"kind":"run_end","status":"stopped","steps":9,"decided":true,"max_phase":2}
//! ```
//!
//! Encoding then decoding any [`Event`] is the identity (tested), so a
//! trace replays exactly.

use simnet::{Event, ProcessId, ProtocolEvent, RunReport, RunStatus, Selection, Subscriber, Value};

use crate::json::{Json, JsonError};

/// One parsed line of a JSONL trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceLine {
    /// A run began: `n` processes under `seed`.
    RunStart {
        /// Number of processes.
        n: usize,
        /// The run's seed.
        seed: u64,
    },
    /// An event within the current run.
    Event(Event),
    /// The current run finished.
    RunEnd {
        /// Why it ended (`stopped` / `quiescent` / `step_limit`).
        status: String,
        /// Total atomic steps taken.
        steps: u64,
        /// Whether every correct process decided.
        decided: bool,
        /// Highest phase any process reached.
        max_phase: u64,
        /// Deliveries replayed from a WAL during crash recovery. Written
        /// only when nonzero (simulated runs never recover), so simulator
        /// traces are byte-identical to those of earlier versions.
        recovered: u64,
        /// Equivocation attempts observed on the wire. Written only when
        /// nonzero, like `recovered`.
        equivocations: u64,
    },
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn value_json(v: Value) -> Json {
    Json::num(v.index() as u64)
}

fn pid_json(p: ProcessId) -> Json {
    Json::num(p.index() as u64)
}

/// Encodes one event as a single-line JSON object.
#[must_use]
pub fn event_to_json(event: &Event) -> Json {
    match *event {
        Event::Start { pid } => obj(vec![("kind", Json::str("start")), ("pid", pid_json(pid))]),
        Event::Send { step, from, to } => obj(vec![
            ("kind", Json::str("send")),
            ("step", Json::num(step)),
            ("from", pid_json(from)),
            ("to", pid_json(to)),
        ]),
        Event::Deliver {
            step,
            to,
            from,
            index,
        } => obj(vec![
            ("kind", Json::str("deliver")),
            ("step", Json::num(step)),
            ("to", pid_json(to)),
            ("from", pid_json(from)),
            ("index", Json::num(index as u64)),
        ]),
        Event::Decide { step, pid, value } => obj(vec![
            ("kind", Json::str("decide")),
            ("step", Json::num(step)),
            ("pid", pid_json(pid)),
            ("value", value_json(value)),
        ]),
        Event::Halt { step, pid } => obj(vec![
            ("kind", Json::str("halt")),
            ("step", Json::num(step)),
            ("pid", pid_json(pid)),
        ]),
        Event::Recover {
            step,
            pid,
            replayed,
        } => obj(vec![
            ("kind", Json::str("recover")),
            ("step", Json::num(step)),
            ("pid", pid_json(pid)),
            ("replayed", Json::num(replayed)),
        ]),
        Event::Protocol { step, pid, event } => {
            let mut pairs = vec![
                ("kind", Json::str(protocol_kind(&event))),
                ("step", Json::num(step)),
                ("pid", pid_json(pid)),
            ];
            match event {
                ProtocolEvent::PhaseEntered { phase } => {
                    pairs.push(("phase", Json::num(phase)));
                }
                ProtocolEvent::WitnessReached {
                    phase,
                    value,
                    cardinality,
                } => {
                    pairs.push(("phase", Json::num(phase)));
                    pairs.push(("value", value_json(value)));
                    pairs.push(("cardinality", Json::num(cardinality as u64)));
                }
                ProtocolEvent::EchoAccepted {
                    phase,
                    subject,
                    value,
                    echoes,
                } => {
                    pairs.push(("phase", Json::num(phase)));
                    pairs.push(("subject", pid_json(subject)));
                    pairs.push(("value", value_json(value)));
                    pairs.push(("echoes", Json::num(echoes as u64)));
                }
                ProtocolEvent::ValueFlipped { phase, from, to } => {
                    pairs.push(("phase", Json::num(phase)));
                    pairs.push(("from_value", value_json(from)));
                    pairs.push(("to_value", value_json(to)));
                }
                ProtocolEvent::CoinFlipped { phase, value } => {
                    pairs.push(("phase", Json::num(phase)));
                    pairs.push(("value", value_json(value)));
                }
                ProtocolEvent::Decided { phase, value } => {
                    pairs.push(("phase", Json::num(phase)));
                    pairs.push(("value", value_json(value)));
                }
                ProtocolEvent::Halted { phase } => {
                    pairs.push(("phase", Json::num(phase)));
                }
            }
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }
    }
}

fn protocol_kind(event: &ProtocolEvent) -> &'static str {
    match event {
        ProtocolEvent::PhaseEntered { .. } => "phase_entered",
        ProtocolEvent::WitnessReached { .. } => "witness_reached",
        ProtocolEvent::EchoAccepted { .. } => "echo_accepted",
        ProtocolEvent::ValueFlipped { .. } => "value_flipped",
        ProtocolEvent::CoinFlipped { .. } => "coin_flipped",
        ProtocolEvent::Decided { .. } => "decided",
        ProtocolEvent::Halted { .. } => "halted",
    }
}

fn field_u64(j: &Json, key: &str) -> Result<u64, JsonError> {
    j.get(key).and_then(Json::as_u64).ok_or_else(|| JsonError {
        message: format!("missing or non-integer field `{key}`"),
        offset: 0,
    })
}

fn field_pid(j: &Json, key: &str) -> Result<ProcessId, JsonError> {
    Ok(ProcessId::new(field_u64(j, key)? as usize))
}

fn field_value(j: &Json, key: &str) -> Result<Value, JsonError> {
    match field_u64(j, key)? {
        0 => Ok(Value::Zero),
        1 => Ok(Value::One),
        other => Err(JsonError {
            message: format!("field `{key}` must be 0 or 1, got {other}"),
            offset: 0,
        }),
    }
}

/// Decodes one event from its JSON object form.
///
/// # Errors
///
/// Returns a [`JsonError`] when the object's `kind` is unknown or a field
/// is missing or of the wrong type.
pub fn event_from_json(j: &Json) -> Result<Event, JsonError> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError {
            message: "missing `kind`".into(),
            offset: 0,
        })?;
    let event = match kind {
        "start" => Event::Start {
            pid: field_pid(j, "pid")?,
        },
        "send" => Event::Send {
            step: field_u64(j, "step")?,
            from: field_pid(j, "from")?,
            to: field_pid(j, "to")?,
        },
        "deliver" => Event::Deliver {
            step: field_u64(j, "step")?,
            to: field_pid(j, "to")?,
            from: field_pid(j, "from")?,
            // Traces written before the buffer index was recorded lack the
            // field; default to slot 0 so they still parse (they just can't
            // drive an exact scripted replay).
            index: j.get("index").and_then(Json::as_u64).unwrap_or(0) as usize,
        },
        "decide" => Event::Decide {
            step: field_u64(j, "step")?,
            pid: field_pid(j, "pid")?,
            value: field_value(j, "value")?,
        },
        "halt" => Event::Halt {
            step: field_u64(j, "step")?,
            pid: field_pid(j, "pid")?,
        },
        "recover" => Event::Recover {
            step: field_u64(j, "step")?,
            pid: field_pid(j, "pid")?,
            replayed: field_u64(j, "replayed")?,
        },
        _ => {
            let step = field_u64(j, "step")?;
            let pid = field_pid(j, "pid")?;
            let phase = field_u64(j, "phase")?;
            let protocol = match kind {
                "phase_entered" => ProtocolEvent::PhaseEntered { phase },
                "witness_reached" => ProtocolEvent::WitnessReached {
                    phase,
                    value: field_value(j, "value")?,
                    cardinality: field_u64(j, "cardinality")? as usize,
                },
                "echo_accepted" => ProtocolEvent::EchoAccepted {
                    phase,
                    subject: field_pid(j, "subject")?,
                    value: field_value(j, "value")?,
                    echoes: field_u64(j, "echoes")? as usize,
                },
                "value_flipped" => ProtocolEvent::ValueFlipped {
                    phase,
                    from: field_value(j, "from_value")?,
                    to: field_value(j, "to_value")?,
                },
                "coin_flipped" => ProtocolEvent::CoinFlipped {
                    phase,
                    value: field_value(j, "value")?,
                },
                "decided" => ProtocolEvent::Decided {
                    phase,
                    value: field_value(j, "value")?,
                },
                "halted" => ProtocolEvent::Halted { phase },
                other => {
                    return Err(JsonError {
                        message: format!("unknown event kind `{other}`"),
                        offset: 0,
                    })
                }
            };
            Event::Protocol {
                step,
                pid,
                event: protocol,
            }
        }
    };
    Ok(event)
}

fn status_name(status: RunStatus) -> &'static str {
    match status {
        RunStatus::Stopped => "stopped",
        RunStatus::Quiescent => "quiescent",
        RunStatus::StepLimitReached => "step_limit",
    }
}

/// Extracts the delivery schedule of a parsed single-run trace: one
/// [`Selection`] per `deliver` line, in delivery order.
///
/// Together with the recorded seed this is the bridge back into the
/// simulator's scripted-replay path: feed the result to
/// [`ScriptedScheduler::exact`](simnet::scheduler::ScriptedScheduler::exact)
/// on an identically configured [`Sim`](simnet::Sim) and the original
/// execution replays step for step. Traces written before the buffer index
/// was recorded parse with `index: 0` and can only replay faithfully when
/// every buffer held a single message at each delivery.
#[must_use]
pub fn schedule_of(lines: &[TraceLine]) -> Vec<Selection> {
    lines
        .iter()
        .filter_map(|line| match line {
            TraceLine::Event(Event::Deliver { to, index, .. }) => Some(Selection {
                to: *to,
                index: *index,
            }),
            _ => None,
        })
        .collect()
}

/// Parses a full JSONL trace (empty lines ignored).
///
/// # Errors
///
/// Returns the first [`JsonError`] hit, with the offending line number in
/// the message.
pub fn parse_trace(text: &str) -> Result<Vec<TraceLine>, JsonError> {
    let mut lines = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_line(line).map_err(|e| JsonError {
            message: format!("line {}: {}", lineno + 1, e.message),
            offset: e.offset,
        })?;
        lines.push(parsed);
    }
    Ok(lines)
}

/// Parses one line of a JSONL trace.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or an unknown record shape.
pub fn parse_line(line: &str) -> Result<TraceLine, JsonError> {
    let j = Json::parse(line)?;
    match j.get("kind").and_then(Json::as_str) {
        Some("run_start") => Ok(TraceLine::RunStart {
            n: field_u64(&j, "n")? as usize,
            seed: field_u64(&j, "seed")?,
        }),
        Some("run_end") => Ok(TraceLine::RunEnd {
            status: j
                .get("status")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            steps: field_u64(&j, "steps")?,
            decided: matches!(j.get("decided"), Some(Json::Bool(true))),
            max_phase: field_u64(&j, "max_phase")?,
            // Optional — absent in simulator traces and traces predating
            // crash recovery; absence means zero.
            recovered: j.get("recovered").and_then(Json::as_u64).unwrap_or(0),
            equivocations: j.get("equivocations").and_then(Json::as_u64).unwrap_or(0),
        }),
        _ => event_from_json(&j).map(TraceLine::Event),
    }
}

/// A [`Subscriber`] that accumulates the run as JSONL text.
///
/// The sink is deterministic: identical runs produce byte-identical
/// contents. It buffers in memory; call [`JsonlSink::contents`] for the
/// text or [`JsonlSink::write_to_file`] to persist it. Several runs may be
/// recorded back to back — each is bracketed by `run_start`/`run_end`.
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Vec<String>,
}

impl JsonlSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// The recorded lines, in order.
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole trace as newline-terminated text.
    #[must_use]
    pub fn contents(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.contents())
    }
}

impl Subscriber for JsonlSink {
    fn on_run_start(&mut self, n: usize, seed: u64) {
        self.lines.push(
            obj(vec![
                ("kind", Json::str("run_start")),
                ("n", Json::num(n as u64)),
                ("seed", Json::num(seed)),
            ])
            .render(),
        );
    }

    fn on_event(&mut self, event: &Event) {
        self.lines.push(event_to_json(event).render());
    }

    fn on_run_end(&mut self, report: &RunReport) {
        let mut pairs = vec![
            ("kind", Json::str("run_end")),
            ("status", Json::str(status_name(report.status))),
            ("steps", Json::num(report.steps)),
            ("decided", Json::Bool(report.all_correct_decided())),
            ("max_phase", Json::num(report.max_phase)),
        ];
        // Only networked runs recover or witness equivocation; omitting
        // the zeros keeps simulator traces byte-identical across versions.
        if report.metrics.recovered > 0 {
            pairs.push(("recovered", Json::num(report.metrics.recovered)));
        }
        if report.metrics.equivocations > 0 {
            pairs.push(("equivocations", Json::num(report.metrics.equivocations)));
        }
        self.lines.push(obj(pairs).render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let p = ProcessId::new;
        vec![
            Event::Start { pid: p(0) },
            Event::Send {
                step: 1,
                from: p(0),
                to: p(2),
            },
            Event::Deliver {
                step: 2,
                to: p(2),
                from: p(0),
                index: 3,
            },
            Event::Decide {
                step: 3,
                pid: p(2),
                value: Value::One,
            },
            Event::Halt { step: 4, pid: p(2) },
            Event::Recover {
                step: 7,
                pid: p(1),
                replayed: 3,
            },
            Event::Protocol {
                step: 5,
                pid: p(1),
                event: ProtocolEvent::PhaseEntered { phase: 2 },
            },
            Event::Protocol {
                step: 6,
                pid: p(1),
                event: ProtocolEvent::WitnessReached {
                    phase: 2,
                    value: Value::Zero,
                    cardinality: 3,
                },
            },
            Event::Protocol {
                step: 7,
                pid: p(1),
                event: ProtocolEvent::EchoAccepted {
                    phase: 2,
                    subject: p(0),
                    value: Value::One,
                    echoes: 5,
                },
            },
            Event::Protocol {
                step: 8,
                pid: p(1),
                event: ProtocolEvent::ValueFlipped {
                    phase: 2,
                    from: Value::Zero,
                    to: Value::One,
                },
            },
            Event::Protocol {
                step: 9,
                pid: p(1),
                event: ProtocolEvent::CoinFlipped {
                    phase: 3,
                    value: Value::Zero,
                },
            },
            Event::Protocol {
                step: 10,
                pid: p(1),
                event: ProtocolEvent::Decided {
                    phase: 3,
                    value: Value::One,
                },
            },
            Event::Protocol {
                step: 11,
                pid: p(1),
                event: ProtocolEvent::Halted { phase: 3 },
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in sample_events() {
            let line = event_to_json(&event).render();
            let back = event_from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(event, back, "round trip of {line}");
        }
    }

    #[test]
    fn trace_lines_parse_including_run_markers() {
        let text = "\n{\"kind\":\"run_start\",\"n\":3,\"seed\":9}\n\
                    {\"kind\":\"start\",\"pid\":0}\n\
                    {\"kind\":\"run_end\",\"status\":\"stopped\",\"steps\":5,\"decided\":true,\"max_phase\":2}\n";
        let lines = parse_trace(text).unwrap();
        assert_eq!(
            lines,
            vec![
                TraceLine::RunStart { n: 3, seed: 9 },
                TraceLine::Event(Event::Start {
                    pid: ProcessId::new(0)
                }),
                TraceLine::RunEnd {
                    status: "stopped".into(),
                    steps: 5,
                    decided: true,
                    max_phase: 2,
                    recovered: 0,
                    equivocations: 0
                },
            ]
        );
    }

    #[test]
    fn legacy_deliver_lines_default_to_slot_zero() {
        let j = Json::parse(r#"{"kind":"deliver","step":4,"to":1,"from":2}"#).unwrap();
        assert_eq!(
            event_from_json(&j).unwrap(),
            Event::Deliver {
                step: 4,
                to: ProcessId::new(1),
                from: ProcessId::new(2),
                index: 0,
            }
        );
    }

    #[test]
    fn schedule_extraction_keeps_order_and_slots() {
        let text = "{\"kind\":\"run_start\",\"n\":2,\"seed\":1}\n\
                    {\"kind\":\"deliver\",\"step\":1,\"to\":1,\"from\":0,\"index\":2}\n\
                    {\"kind\":\"send\",\"step\":1,\"from\":1,\"to\":0}\n\
                    {\"kind\":\"deliver\",\"step\":2,\"to\":0,\"from\":1,\"index\":0}\n";
        let lines = parse_trace(text).unwrap();
        assert_eq!(
            schedule_of(&lines),
            vec![
                Selection {
                    to: ProcessId::new(1),
                    index: 2
                },
                Selection {
                    to: ProcessId::new(0),
                    index: 0
                },
            ]
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("{\"kind\":\"start\",\"pid\":0}\nnot json\n").unwrap_err();
        assert!(err.message.contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let j = Json::parse(r#"{"kind":"teleport","step":1,"pid":0,"phase":0}"#).unwrap();
        assert!(event_from_json(&j).is_err());
    }
}
