//! A zero-dependency runtime metrics registry: counters, gauges, and
//! log-linear histograms with mergeable snapshots.
//!
//! The paper's §4–§6 claims are all *rates* — expected phases to decision,
//! messages per phase — so a live runtime needs a measurement substrate
//! cheap enough to leave on. This module provides one:
//!
//! * [`Registry`] — a named collection of metrics. Registration (the
//!   get-or-create lookup) takes a mutex; the returned handles are
//!   lock-free `Arc`'d atomics, so hot paths never contend.
//! * [`Counter`] — a monotonically increasing `u64`.
//! * [`Gauge`] — a current-value `u64` (queue depths, watermarks).
//! * [`Histogram`] — a log-linear bucket histogram: values below 2⁴ get
//!   exact buckets, every power-of-two octave above is split into 16
//!   linear sub-buckets, so any recorded value lands in a bucket whose
//!   width is at most 1/16 (6.25 %) of its lower bound. Percentiles read
//!   from bucket boundaries therefore bound the true percentiles within
//!   that relative error.
//! * [`Snapshot`] — a point-in-time copy of a whole registry, mergeable
//!   across nodes (merge is associative and commutative), renderable as
//!   Prometheus text exposition format or as JSON (round-trippable, for
//!   scraping over the admin endpoint).
//!
//! Labels give metrics per-peer / per-protocol dimensions: the same family
//! name with different label sets forms distinct series, exactly as in
//! Prometheus.
//!
//! A registry can also be constructed *disabled* ([`Registry::disabled`]):
//! handles still exist but every mutation is a no-op behind one predictable
//! branch. The committed `BENCH_metrics.json` overhead bench compares the
//! two modes on the frame hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::json::Json;

/// Linear sub-buckets per octave, as a power of two: 2⁴ = 16 sub-buckets,
/// bounding the relative bucket error at 1/16.
const SUB_BITS: u32 = 4;
/// 2^SUB_BITS.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: `SUB` exact buckets for values `< SUB`, then 16
/// sub-buckets for each of the `64 - SUB_BITS` octaves above.
const NBUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// The bucket index a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
    SUB as usize + octave * SUB as usize + sub
}

/// The `[lo, hi]` value range of bucket `idx` (inclusive on both ends).
#[must_use]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < NBUCKETS, "bucket index out of range");
    if idx < SUB as usize {
        return (idx as u64, idx as u64);
    }
    let octave = ((idx - SUB as usize) / SUB as usize) as u32;
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    let lo = (SUB + sub) << octave;
    let hi = lo + ((1u64 << octave) - 1);
    (lo, hi)
}

/// What a metric family is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// A current value.
    Gauge,
    /// A value distribution in log-linear buckets.
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    /// Parses an exposition-format kind name (`"counter"` / `"gauge"` /
    /// `"histogram"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// Sorted `(key, value)` label pairs identifying one series of a family.
pub type Labels = Vec<(String, String)>;

/// A monotonically increasing counter handle. Cloning is cheap; all clones
/// share the same cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    on: bool,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A current-value gauge handle (non-negative). Cloning is cheap; all
/// clones share the same cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    on: bool,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.on {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if it is higher (a watermark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.on {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`. The caller keeps adds and subs balanced; gauges do
    /// not go negative in the long run.
    #[inline]
    pub fn sub(&self, n: u64) {
        if self.on {
            // One wrapping fetch_sub, not a CAS loop: an observer racing
            // between paired add/sub calls can catch a transient underflow
            // (a huge wrapped value), which reads clamp back to zero.
            self.cell.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        clamp_gauge(self.cell.load(Ordering::Relaxed))
    }
}

/// Reads a gauge cell, treating a transiently wrapped-negative value (a
/// `sub` observed before its matching `add`) as zero. Legitimate gauge
/// values (queue depths, byte backlogs) never approach 2⁶³.
#[inline]
fn clamp_gauge(v: u64) -> u64 {
    if v > i64::MAX as u64 {
        0
    } else {
        v
    }
}

/// Shared storage of one histogram.
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-linear histogram handle. Cloning is cheap; all clones share the
/// same buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    on: bool,
}

impl Histogram {
    /// Whether recording does anything — call sites that must pay for a
    /// clock read to produce the value can skip it when the registry is
    /// disabled.
    #[must_use]
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.on {
            return;
        }
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        // No count cell: the observation count is the sum of the buckets.
        // fetch_max has no native instruction on x86 (it compiles to a CAS
        // loop), so guard it with a plain load — almost every observation
        // is below the running maximum.
        if v > self.core.max.load(Ordering::Relaxed) {
            self.core.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records a duration in microseconds.
    #[inline]
    pub fn record_us(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of this histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let v = b.load(Ordering::Relaxed);
                (v > 0).then_some((i, v))
            })
            .collect();
        HistogramSnapshot {
            count: buckets.iter().map(|&(_, c)| c).sum(),
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: sparse nonzero buckets plus count/sum/max.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// `(bucket index, count)` for every nonzero bucket, index-ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing the `q`-quantile
    /// observation (`0.0 ≤ q ≤ 1.0`), or `None` when empty. Because bucket
    /// widths are at most 1/16 of their lower bound, the result is within
    /// 6.25 % above the true quantile (and never below it).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(idx).1);
            }
        }
        self.buckets.last().map(|&(idx, _)| bucket_bounds(idx).1)
    }

    /// The mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Folds `other` into `self`. Associative and commutative: merging a
    /// set of node snapshots gives the same totals in any order or
    /// grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        // Wrapping, to match the recording path: the live sum is an atomic
        // fetch_add, which wraps rather than panics if a pathological
        // value stream exceeds u64. Real latency sums never get close.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(idx, c) in &other.buckets {
            *merged.entry(idx).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// One series' frozen value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeriesValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl SeriesValue {
    /// The scalar reading of a counter or gauge (`None` for histograms).
    #[must_use]
    pub fn scalar(&self) -> Option<u64> {
        match self {
            SeriesValue::Counter(v) | SeriesValue::Gauge(v) => Some(*v),
            SeriesValue::Histogram(_) => None,
        }
    }

    fn merge(&mut self, other: &SeriesValue) {
        match (self, other) {
            (SeriesValue::Counter(a), SeriesValue::Counter(b)) => *a += b,
            // Gauges merge by sum: cluster-wide queue depth is the sum of
            // per-node depths. Watermark-style gauges merged across nodes
            // are label-disjoint in practice, so the sum degenerates to
            // the single series.
            (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => *a += b,
            (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => a.merge(b),
            // A kind clash only happens when two nodes disagree on what a
            // family is — keep self, the scrape is best-effort.
            _ => {}
        }
    }
}

/// One metric family in a snapshot: kind, help text, and every series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Family {
    /// What the family is. `None` only for the empty default.
    pub kind: Option<MetricKind>,
    /// One-line description.
    pub help: String,
    /// Series keyed by their sorted label pairs.
    pub series: BTreeMap<Labels, SeriesValue>,
}

/// A point-in-time copy of a registry (or a merge of several).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Families keyed by metric name, name-ascending.
    pub families: BTreeMap<String, Family>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Associative and commutative.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, fam) in &other.families {
            let mine = self.families.entry(name.clone()).or_default();
            if mine.kind.is_none() {
                mine.kind = fam.kind;
                mine.help.clone_from(&fam.help);
            }
            for (labels, value) in &fam.series {
                match mine.series.get_mut(labels) {
                    Some(existing) => existing.merge(value),
                    None => {
                        mine.series.insert(labels.clone(), value.clone());
                    }
                }
            }
        }
    }

    /// The scalar reading of `name`'s series with exactly `labels`
    /// (order-insensitive), if present.
    #[must_use]
    pub fn scalar(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = sorted_labels(labels);
        self.families.get(name)?.series.get(&key)?.scalar()
    }

    /// The sum of every series' scalar reading in `name`'s family.
    #[must_use]
    pub fn scalar_total(&self, name: &str) -> Option<u64> {
        let fam = self.families.get(name)?;
        let mut total = 0u64;
        let mut any = false;
        for v in fam.series.values() {
            if let Some(s) = v.scalar() {
                total += s;
                any = true;
            }
        }
        any.then_some(total)
    }

    /// A merged histogram over every series of `name`'s family.
    #[must_use]
    pub fn histogram_total(&self, name: &str) -> Option<HistogramSnapshot> {
        let fam = self.families.get(name)?;
        let mut total = HistogramSnapshot::default();
        let mut any = false;
        for v in fam.series.values() {
            if let SeriesValue::Histogram(h) = v {
                total.merge(h);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Renders the snapshot in Prometheus text exposition format 0.0.4:
    /// `# HELP` / `# TYPE` headers, then one sample per line. Histograms
    /// use the standard `_bucket{le=...}` / `_sum` / `_count` convention
    /// with cumulative bucket counts and a closing `+Inf` bucket.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, fam) in &self.families {
            let Some(kind) = fam.kind else { continue };
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", fam.help.replace('\n', " "));
            }
            let _ = writeln!(out, "# TYPE {name} {}", kind.name());
            for (labels, value) in &fam.series {
                match value {
                    SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                    }
                    SeriesValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for &(idx, c) in &h.buckets {
                            cumulative += c;
                            let le = bucket_bounds(idx).1.to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, Some("+Inf")),
                            h.count
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum);
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }

    /// Encodes the snapshot as JSON (the admin endpoint's `/metrics.json`);
    /// [`Snapshot::from_json`] inverts it exactly.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let families = self
            .families
            .iter()
            .map(|(name, fam)| {
                let series = fam
                    .series
                    .iter()
                    .map(|(labels, value)| {
                        let labels_json = Json::Obj(
                            labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                                .collect(),
                        );
                        let mut pairs = vec![("labels".to_string(), labels_json)];
                        match value {
                            SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                                pairs.push(("value".into(), Json::num(*v)));
                            }
                            SeriesValue::Histogram(h) => {
                                pairs.push(("count".into(), Json::num(h.count)));
                                pairs.push(("sum".into(), Json::num(h.sum)));
                                pairs.push(("max".into(), Json::num(h.max)));
                                pairs.push((
                                    "buckets".into(),
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(i, c)| {
                                                Json::Arr(vec![Json::num(i as u64), Json::num(c)])
                                            })
                                            .collect(),
                                    ),
                                ));
                            }
                        }
                        Json::Obj(pairs)
                    })
                    .collect();
                (
                    name.clone(),
                    Json::Obj(vec![
                        (
                            "kind".into(),
                            Json::str(fam.kind.map_or("unknown", MetricKind::name)),
                        ),
                        ("help".into(), Json::str(fam.help.clone())),
                        ("series".into(), Json::Arr(series)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![("families".into(), Json::Obj(families))])
    }

    /// Decodes a snapshot encoded by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(j: &Json) -> Result<Snapshot, String> {
        let Some(Json::Obj(families)) = j.get("families") else {
            return Err("snapshot needs a `families` object".into());
        };
        let mut out = Snapshot::default();
        for (name, fam_json) in families {
            let kind = fam_json
                .get("kind")
                .and_then(Json::as_str)
                .and_then(MetricKind::parse);
            let help = fam_json
                .get("help")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let Some(Json::Arr(series_json)) = fam_json.get("series") else {
                return Err(format!("family `{name}` needs a series array"));
            };
            let mut series = BTreeMap::new();
            for s in series_json {
                let labels = match s.get("labels") {
                    Some(Json::Obj(pairs)) => {
                        let mut labels: Labels = pairs
                            .iter()
                            .map(|(k, v)| {
                                v.as_str()
                                    .map(|v| (k.clone(), v.to_string()))
                                    .ok_or_else(|| format!("family `{name}`: non-string label"))
                            })
                            .collect::<Result<_, _>>()?;
                        labels.sort();
                        labels
                    }
                    _ => return Err(format!("family `{name}`: series needs a labels object")),
                };
                let value = if let Some(v) = s.get("value").and_then(Json::as_u64) {
                    match kind {
                        Some(MetricKind::Gauge) => SeriesValue::Gauge(v),
                        _ => SeriesValue::Counter(v),
                    }
                } else {
                    let buckets = match s.get("buckets") {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(|b| match b {
                                Json::Arr(pair) if pair.len() == 2 => {
                                    let idx =
                                        pair[0].as_usize().filter(|&i| i < NBUCKETS).ok_or_else(
                                            || format!("family `{name}`: bad bucket index"),
                                        )?;
                                    let c = pair[1].as_u64().ok_or_else(|| {
                                        format!("family `{name}`: bad bucket count")
                                    })?;
                                    Ok((idx, c))
                                }
                                _ => Err(format!("family `{name}`: bucket must be [idx,count]")),
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err(format!("family `{name}`: series needs value or buckets")),
                    };
                    SeriesValue::Histogram(HistogramSnapshot {
                        count: s.get("count").and_then(Json::as_u64).unwrap_or(0),
                        sum: s.get("sum").and_then(Json::as_u64).unwrap_or(0),
                        max: s.get("max").and_then(Json::as_u64).unwrap_or(0),
                        buckets,
                    })
                };
                series.insert(labels, value);
            }
            out.families
                .insert(name.clone(), Family { kind, help, series });
        }
        Ok(out)
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|&(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

/// One registered metric's shared cell.
#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// The mutable interior of a registry.
#[derive(Debug, Default)]
struct Inner {
    /// `(family, labels)` → cell.
    series: BTreeMap<(String, Labels), Cell>,
    /// family → (kind, help); first registration wins.
    families: BTreeMap<String, (MetricKind, String)>,
}

/// A named collection of metrics.
///
/// Handle creation (get-or-create by `(name, labels)`) takes the registry
/// mutex; the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are
/// lock-free and cheap to clone, so instrumented hot paths never lock.
/// Registering the same `(name, labels)` twice returns handles to the same
/// cell — which is what lets a restarted component keep counting where its
/// predecessor left off.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<Inner>,
    on: bool,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            on: true,
        }
    }

    /// A disabled registry: handles work but record nothing — the "off"
    /// arm of the overhead bench.
    #[must_use]
    pub fn disabled() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            on: false,
        }
    }

    /// Whether handles from this registry record anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.on
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: MetricKind) -> Cell {
        let key = (name.to_string(), sorted_labels(labels));
        let mut inner = self.lock();
        let registered = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| (kind, help.to_string()));
        assert!(
            registered.0 == kind,
            "metric family `{name}` registered as {:?} and {kind:?}",
            registered.0
        );
        let cell = inner.series.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
            MetricKind::Gauge => Cell::Gauge(Arc::new(AtomicU64::new(0))),
            MetricKind::Histogram => Cell::Histogram(Arc::new(HistogramCore::new())),
        });
        match cell {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        }
    }

    /// The counter `name` with `labels`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously registered as a different kind.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter) {
            Cell::Counter(cell) => Counter { cell, on: self.on },
            _ => unreachable!("register returns the requested kind"),
        }
    }

    /// The gauge `name` with `labels`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously registered as a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge) {
            Cell::Gauge(cell) => Gauge { cell, on: self.on },
            _ => unreachable!("register returns the requested kind"),
        }
    }

    /// The histogram `name` with `labels`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously registered as a different kind.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, MetricKind::Histogram) {
            Cell::Histogram(core) => Histogram { core, on: self.on },
            _ => unreachable!("register returns the requested kind"),
        }
    }

    /// A point-in-time copy of every registered series.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut out = Snapshot::default();
        for ((name, labels), cell) in &inner.series {
            let (kind, help) = &inner.families[name];
            let fam = out.families.entry(name.clone()).or_insert_with(|| Family {
                kind: Some(*kind),
                help: help.clone(),
                series: BTreeMap::new(),
            });
            let value = match cell {
                Cell::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                Cell::Gauge(g) => SeriesValue::Gauge(clamp_gauge(g.load(Ordering::Relaxed))),
                Cell::Histogram(h) => SeriesValue::Histogram(
                    Histogram {
                        core: Arc::clone(h),
                        on: true,
                    }
                    .snapshot(),
                ),
            };
            fam.series.insert(labels.clone(), value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for v in (0..2000u64).chain([1 << 20, (1 << 20) + 7, u64::MAX / 3, u64::MAX - 1, u64::MAX])
        {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
            // Relative bucket error bound: width ≤ lo/16 above the exact
            // range.
            if lo >= SUB {
                assert!(hi - lo <= lo / SUB, "v={v} lo={lo} hi={hi}");
            } else {
                assert_eq!(lo, hi, "exact bucket below {SUB}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn counters_gauges_histograms_register_and_read_back() {
        let r = Registry::new();
        let c = r.counter("bt_frames_total", "frames", &[("peer", "2")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) → same cell.
        assert_eq!(r.counter("bt_frames_total", "", &[("peer", "2")]).get(), 5);
        // Different labels → a fresh series.
        assert_eq!(r.counter("bt_frames_total", "", &[("peer", "3")]).get(), 0);

        let g = r.gauge("bt_depth", "queue depth", &[]);
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set_max(5);
        assert_eq!(g.get(), 7, "set_max never lowers");
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.sub(100);
        assert_eq!(g.get(), 0, "saturating");

        let h = r.histogram("bt_lat_us", "latency", &[]);
        for v in [1, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.5), Some(2));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let c = r.counter("c", "", &[]);
        let g = r.gauge("g", "", &[]);
        let h = r.histogram("h", "", &[]);
        c.inc();
        g.set(9);
        h.record(1);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.enabled());
    }

    #[test]
    fn snapshot_renders_prometheus_exposition() {
        let r = Registry::new();
        r.counter("bt_sent_total", "messages sent", &[("peer", "1")])
            .add(3);
        r.gauge("bt_depth", "queue depth", &[]).set(2);
        let h = r.histogram("bt_lat_us", "latency", &[]);
        h.record(5);
        h.record(100);
        let text = r.snapshot().render_prometheus();
        for needle in [
            "# TYPE bt_sent_total counter",
            "bt_sent_total{peer=\"1\"} 3",
            "# TYPE bt_depth gauge",
            "bt_depth 2",
            "# TYPE bt_lat_us histogram",
            "bt_lat_us_bucket{le=\"5\"} 1",
            "bt_lat_us_bucket{le=\"+Inf\"} 2",
            "bt_lat_us_sum 105",
            "bt_lat_us_count 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = Registry::new();
        r.counter(
            "c_total",
            "a counter",
            &[("peer", "0"), ("proto", "malicious")],
        )
        .add(42);
        r.gauge("g", "a gauge", &[]).set(7);
        let h = r.histogram("h_us", "a histogram", &[("peer", "1")]);
        for v in [0, 1, 17, 300, 70_000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("round trip parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn merge_combines_and_totals_read_across_series() {
        let a = Registry::new();
        a.counter("c_total", "", &[("peer", "0")]).add(2);
        a.histogram("h_us", "", &[]).record(10);
        let b = Registry::new();
        b.counter("c_total", "", &[("peer", "0")]).add(3);
        b.counter("c_total", "", &[("peer", "1")]).add(5);
        b.histogram("h_us", "", &[]).record(1000);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.scalar("c_total", &[("peer", "0")]), Some(5));
        assert_eq!(merged.scalar("c_total", &[("peer", "1")]), Some(5));
        assert_eq!(merged.scalar_total("c_total"), Some(10));
        let h = merged.histogram_total("h_us").expect("histogram family");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.max, 1000);
    }
}
