//! Property tests for the metrics registry's log-linear histograms and
//! snapshot merging.
//!
//! The two guarantees the observability layer leans on:
//!
//! * **Quantile bounds** — a histogram quantile is never below the true
//!   quantile of the recorded values, and never more than one bucket
//!   width above it (bucket widths are at most 1/16 of their lower bound,
//!   so the relative error is ≤ 6.25 %). Dashboards can over-report a
//!   latency slightly; they can never under-report it.
//! * **Merge algebra** — `Snapshot::merge` (and histogram merging under
//!   it) is associative and commutative, so a cluster-wide scrape
//!   assembles to the same totals regardless of the order nodes answer.

use proptest::collection::vec;
use proptest::prelude::*;

use obs::metrics::{bucket_bounds, Histogram, HistogramSnapshot, Registry, Snapshot};

/// Builds a recorded histogram snapshot from raw values.
fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let registry = Registry::new();
    let h: Histogram = registry.histogram("h_test_us", "test data", &[]);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The true `q`-quantile under the same rank convention the histogram
/// uses: the `ceil(q·count)`-th smallest value, rank clamped to
/// `[1, count]`.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let count = sorted.len() as f64;
    let rank = ((q * count).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Values spanning the interesting bucket regimes: the exact region
/// (< 16), small octaves, and large magnitudes near the top buckets.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        16u64..4096,
        4096u64..1_000_000,
        (0u32..63).prop_map(|shift| 1u64 << shift),
        any::<u64>(),
    ]
}

/// Builds a snapshot with a mixed family population derived from `vals`,
/// tagged by `node` so merging across "nodes" exercises both the
/// same-series and disjoint-series paths.
fn snapshot_of(node: &str, vals: &[u64]) -> Snapshot {
    let registry = Registry::new();
    let shared: &[(&str, &str)] = &[("node", "shared")];
    let own: &[(&str, &str)] = &[("node", node)];
    let c = registry.counter("m_count_total", "test counter", shared);
    let g = registry.gauge("m_gauge", "test gauge", own);
    let h = registry.histogram("m_lat_us", "test histogram", shared);
    for &v in vals {
        c.add(v % 1000);
        g.add(v % 97);
        h.record(v);
    }
    registry.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn quantiles_bound_true_quantiles_within_bucket_error(
        values in vec(arb_value(), 1..200),
        qx in 0u32..101,
    ) {
        let q = f64::from(qx) / 100.0;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = true_quantile(&sorted, q);

        let snap = hist_of(&values);
        let got = snap.quantile(q).expect("non-empty histogram");

        prop_assert!(
            got >= truth,
            "histogram quantile {got} under-reports true quantile {truth} (q={q})"
        );
        // The result is the upper bound of the bucket holding the true
        // quantile; that bucket's width is at most ⌊lo/16⌋, so the
        // overshoot is bounded by the bucket error.
        let (lo, hi) = bucket_bounds_containing(truth);
        prop_assert!(
            got <= hi,
            "histogram quantile {got} beyond the bucket [{lo}, {hi}] of the \
             true quantile {truth} (q={q})"
        );
        prop_assert!(
            hi - lo <= lo / 16,
            "bucket [{lo}, {hi}] wider than lo/16"
        );
    }

    #[test]
    fn histogram_count_sum_max_are_exact(values in vec(arb_value(), 1..200)) {
        let snap = hist_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(
            snap.sum,
            values.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        );
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn histogram_merge_is_commutative_and_order_free(
        a in vec(arb_value(), 0..100),
        b in vec(arb_value(), 0..100),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge is commutative");

        // Merging equals recording the concatenation directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = hist_of(&all);
        prop_assert_eq!(
            &ab, &direct,
            "merge of parts equals histogram of the whole"
        );
    }

    #[test]
    fn histogram_merge_is_associative(
        a in vec(arb_value(), 0..60),
        b in vec(arb_value(), 0..60),
        c in vec(arb_value(), 0..60),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn snapshot_merge_is_commutative_and_associative(
        a in vec(arb_value(), 1..50),
        b in vec(arb_value(), 1..50),
        c in vec(arb_value(), 1..50),
    ) {
        let (sa, sb, sc) = (
            snapshot_of("a", &a),
            snapshot_of("b", &b),
            snapshot_of("c", &c),
        );

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "Snapshot::merge is commutative");

        let mut left = ab.clone();
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "Snapshot::merge is associative");

        // Totals add: the merged counter equals the sum of the parts'.
        let total = |s: &Snapshot| s.scalar_total("m_count_total").unwrap_or(0);
        prop_assert_eq!(total(&left), total(&sa) + total(&sb) + total(&sc));
    }
}

/// The `[lo, hi]` bounds of the bucket that would hold `v`.
fn bucket_bounds_containing(v: u64) -> (u64, u64) {
    // Probe via a single-value histogram: its only nonzero bucket is the
    // one containing v.
    let snap = hist_of(&[v]);
    let (idx, _) = snap.buckets[0];
    bucket_bounds(idx)
}
