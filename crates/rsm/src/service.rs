//! The client-facing service: a TCP API accepting proposals and reads,
//! with a bounded admission queue in front of the replica.
//!
//! # Client protocol
//!
//! Same framing as the inter-replica transport — a 4-byte big-endian
//! length prefix followed by a [`Wire`] body — carrying [`ClientReq`]
//! requests and [`ClientResp`] responses, one response per request, in
//! order, per connection:
//!
//! ```text
//! request  = propose | read | info
//! propose  = 0x00 client:varint request:varint op
//! read     = 0x01 key:bytes
//! info     = 0x02
//! response = committed | busy | timeout | value | info
//! committed= 0x00 client:varint request:varint log_len:varint
//! busy     = 0x01                      ; admission queue full, retry later
//! timeout  = 0x02                      ; accepted but not committed in time
//! value    = 0x03 present:u8 [bytes]   ; read result (local, committed state)
//! info     = 0x04 applied:varint digest:varint applied_cmds:varint
//!            deduped_cmds:varint kv_len:varint pending:varint
//! ```
//!
//! # Backpressure
//!
//! `Propose` first passes a bounded admission queue
//! ([`ServiceOptions::queue_depth`]); when full the service sheds with
//! [`ClientResp::Busy`] immediately instead of buffering without bound. A
//! batcher thread drains the queue and hands batches to the **gateway**,
//! which injects them into the replica as [`RsmMsg::Submit`] frames
//! through the node's *own* TCP listener — so client commands are
//! journaled, deduplicated, acked, and crash-replayed by exactly the
//! machinery every peer message already uses. The service answers
//! [`ClientResp::Committed`] only once the command's effect is visible in
//! the replica's applied state (via [`LogView::wait_complete`]), i.e.
//! after the slot carrying it committed.
//!
//! Reads are served from the local committed prefix: sequentially
//! consistent (they never see unapplied state) but not linearizable
//! across replicas — a read through a lagging replica can be stale.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use netstack::{read_frame, write_frame, Frame, MAX_FRAME_LEN};
use obs::metrics::{Counter, Gauge, Histogram, Registry};
use simnet::{ProcessId, Wire, WireError, WireReader};

use crate::command::{Command, Op};
use crate::msg::RsmMsg;
use crate::state::LogView;

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientReq {
    /// Propose one operation for commitment.
    Propose {
        /// The issuing client's id.
        client: u64,
        /// The client's request sequence number (increasing from 1).
        request: u64,
        /// The operation.
        op: Op,
    },
    /// Read a key from the local committed state.
    Read {
        /// The key to look up.
        key: Vec<u8>,
    },
    /// Ask for replica progress (applied slots, log digest, counters).
    Info,
}

impl Wire for ClientReq {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientReq::Propose {
                client,
                request,
                op,
            } => {
                out.push(0);
                client.encode(out);
                request.encode(out);
                op.encode(out);
            }
            ClientReq::Read { key } => {
                out.push(1);
                key.encode(out);
            }
            ClientReq::Info => out.push(2),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(ClientReq::Propose {
                client: u64::decode(r)?,
                request: u64::decode(r)?,
                op: Op::decode(r)?,
            }),
            1 => Ok(ClientReq::Read {
                key: Vec::decode(r)?,
            }),
            2 => Ok(ClientReq::Info),
            _ => Err(WireError::Invalid {
                what: "client request discriminant",
                offset,
            }),
        }
    }

    fn validate(&self, n: usize) -> bool {
        match self {
            ClientReq::Propose { request, op, .. } => *request >= 1 && op.validate(n),
            ClientReq::Read { key } => key.len() <= crate::command::MAX_KEY,
            ClientReq::Info => true,
        }
    }
}

/// One service response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientResp {
    /// The proposal committed; its effect is applied on this replica.
    Committed {
        /// Echo of the proposing client id.
        client: u64,
        /// Echo of the request id.
        request: u64,
        /// The replica's applied log length after commitment.
        log_len: u64,
    },
    /// The admission queue is full; retry after a backoff.
    Busy,
    /// Accepted but not committed within the service's patience; the
    /// client should retry (the request id makes the retry idempotent).
    Timeout,
    /// A read result.
    Value {
        /// The bound value, or `None` if the key is unbound.
        value: Option<Vec<u8>>,
    },
    /// Replica progress.
    Info {
        /// Applied log length (slots).
        applied: u64,
        /// Chained digest of the applied log.
        digest: u64,
        /// Commands applied (duplicates excluded).
        applied_commands: u64,
        /// Commands skipped as duplicates.
        deduped_commands: u64,
        /// Keys currently bound.
        kv_len: u64,
        /// Commands sitting in this service's admission queue.
        pending: u64,
    },
}

impl Wire for ClientResp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientResp::Committed {
                client,
                request,
                log_len,
            } => {
                out.push(0);
                client.encode(out);
                request.encode(out);
                log_len.encode(out);
            }
            ClientResp::Busy => out.push(1),
            ClientResp::Timeout => out.push(2),
            ClientResp::Value { value } => {
                out.push(3);
                value.encode(out);
            }
            ClientResp::Info {
                applied,
                digest,
                applied_commands,
                deduped_commands,
                kv_len,
                pending,
            } => {
                out.push(4);
                applied.encode(out);
                digest.encode(out);
                applied_commands.encode(out);
                deduped_commands.encode(out);
                kv_len.encode(out);
                pending.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(ClientResp::Committed {
                client: u64::decode(r)?,
                request: u64::decode(r)?,
                log_len: u64::decode(r)?,
            }),
            1 => Ok(ClientResp::Busy),
            2 => Ok(ClientResp::Timeout),
            3 => Ok(ClientResp::Value {
                value: Option::decode(r)?,
            }),
            4 => Ok(ClientResp::Info {
                applied: u64::decode(r)?,
                digest: u64::decode(r)?,
                applied_commands: u64::decode(r)?,
                deduped_commands: u64::decode(r)?,
                kv_len: u64::decode(r)?,
                pending: u64::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                what: "client response discriminant",
                offset,
            }),
        }
    }
}

/// Writes one length-prefixed client-protocol message.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidInput` for oversized bodies.
pub fn write_client_msg<T: Wire>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let body = msg.to_bytes();
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "client message exceeds frame cap",
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one length-prefixed client-protocol message.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` for malformed bodies.
pub fn read_client_msg<T: Wire>(r: &mut impl Read) -> io::Result<T> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "peer announced an oversized client message",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    T::from_bytes(&body).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad client message: {e}"),
        )
    })
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Admission-queue capacity; a full queue sheds with
    /// [`ClientResp::Busy`].
    pub queue_depth: usize,
    /// Largest number of queued commands one [`RsmMsg::Submit`] carries.
    pub submit_batch: usize,
    /// How long a `Propose` waits for commitment before answering
    /// [`ClientResp::Timeout`].
    pub propose_timeout: Duration,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            queue_depth: 1024,
            submit_batch: 256,
            propose_timeout: Duration::from_secs(10),
        }
    }
}

/// How the gateway reaches its replica: the node's own listener address,
/// this node's id (for the `Hello`), and the sequence number to resume
/// frame numbering from ([`netstack::NodeHandle::next_expected_from`]
/// with the node's own id — after a crash this skips everything the WAL
/// already holds, so re-injections land as fresh deliveries, never as
/// equivocations).
#[derive(Clone, Copy, Debug)]
pub struct GatewayConfig {
    /// This node's process id.
    pub me: ProcessId,
    /// The node's peer-facing listener address.
    pub node_addr: SocketAddr,
    /// First frame sequence number to use.
    pub initial_seq: u64,
}

/// Service-side telemetry, labelled `{node}`.
#[derive(Clone, Debug)]
struct ServiceMetrics {
    /// End-to-end client-operation latency (request read → response
    /// written), labelled further by op kind.
    op_us: Histogram,
    read_us: Histogram,
    /// Proposals shed with `Busy`.
    busy: Counter,
    /// Proposals that timed out waiting for commitment.
    timeouts: Counter,
    /// Commands currently sitting in the admission queue.
    queue: Gauge,
    /// Client connections accepted.
    connections: Counter,
}

impl ServiceMetrics {
    fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        ServiceMetrics {
            op_us: registry.histogram(
                "rsm_client_op_us",
                "client operation latency, request read to response written (microseconds)",
                &[("node", &node), ("op", "propose")],
            ),
            read_us: registry.histogram(
                "rsm_client_op_us",
                "client operation latency, request read to response written (microseconds)",
                &[("node", &node), ("op", "read")],
            ),
            busy: registry.counter(
                "rsm_client_busy_total",
                "proposals shed because the admission queue was full",
                &[("node", &node)],
            ),
            timeouts: registry.counter(
                "rsm_client_timeout_total",
                "proposals that did not commit within the service patience",
                &[("node", &node)],
            ),
            queue: registry.gauge(
                "rsm_admission_queue",
                "commands waiting in the admission queue",
                &[("node", &node)],
            ),
            connections: registry.counter(
                "rsm_client_connections_total",
                "client connections accepted",
                &[("node", &node)],
            ),
        }
    }
}

/// The gateway: one reliable, resumable frame stream into the replica's
/// own listener. Tracks its unacked backlog exactly like a peer link (an
/// ack-drain thread retires frames; a reconnect replays the backlog in
/// order, which the node's seq-dedup makes idempotent).
#[derive(Debug)]
struct Gateway {
    cfg: GatewayConfig,
    stream: Option<TcpStream>,
    next_seq: u64,
    /// Unacked frames `(seq, payload)`, oldest first.
    backlog: Mutex<std::collections::VecDeque<(u64, Vec<u8>)>>,
    /// Highest cumulative ack seen by the drain thread.
    acked: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    drainers: Vec<JoinHandle<()>>,
}

impl Gateway {
    fn new(cfg: GatewayConfig, shutdown: Arc<AtomicBool>) -> Self {
        Gateway {
            cfg,
            stream: None,
            next_seq: cfg.initial_seq,
            backlog: Mutex::new(std::collections::VecDeque::new()),
            acked: Arc::new(AtomicU64::new(cfg.initial_seq)),
            shutdown,
            drainers: Vec::new(),
        }
    }

    /// Dials the node, says `Hello`, replays the unacked backlog, and
    /// starts an ack-drain thread for the new connection.
    fn connect(&mut self) -> io::Result<()> {
        let mut stream = TcpStream::connect(self.cfg.node_addr)?;
        stream.set_nodelay(true).ok();
        write_frame(&mut stream, &Frame::Hello { from: self.cfg.me })?;
        {
            let backlog = self.backlog.lock().unwrap_or_else(PoisonError::into_inner);
            for (seq, payload) in backlog.iter() {
                write_frame(
                    &mut stream,
                    &Frame::Msg {
                        seq: *seq,
                        payload: payload.clone(),
                    },
                )?;
            }
        }
        // Acks must be drained or the node's reader eventually blocks
        // writing them; the drainer also retires backlog entries.
        let mut ack_stream = stream.try_clone()?;
        let acked = Arc::clone(&self.acked);
        let shutdown = Arc::clone(&self.shutdown);
        let drainer = thread::Builder::new()
            .name(format!("rsm-gateway-ack-p{}", self.cfg.me.index()))
            .spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match read_frame(&mut ack_stream) {
                        Ok(Frame::Ack { next }) => {
                            acked.fetch_max(next, Ordering::Release);
                        }
                        Ok(_) => {}
                        Err(_) => return,
                    }
                }
            })
            .expect("spawning the gateway ack drainer");
        self.drainers.push(drainer);
        self.stream = Some(stream);
        Ok(())
    }

    /// Queues `commands` as one durable Submit frame, reconnecting and
    /// replaying as needed. Returns once the frame is written (commitment
    /// is observed via the log view, not here).
    fn submit(&mut self, commands: Vec<Command>) -> io::Result<()> {
        let payload = RsmMsg::Submit { commands }.to_bytes();
        let seq = self.next_seq;
        self.next_seq += 1;
        {
            let acked = self.acked.load(Ordering::Acquire);
            let mut backlog = self.backlog.lock().unwrap_or_else(PoisonError::into_inner);
            while let Some((s, _)) = backlog.front() {
                if *s < acked {
                    backlog.pop_front();
                } else {
                    break;
                }
            }
            backlog.push_back((seq, payload.clone()));
        }
        let frame = Frame::Msg { seq, payload };
        for attempt in 0..40u32 {
            if self.stream.is_none() {
                if let Err(e) = self.connect() {
                    if attempt == 39 {
                        return Err(e);
                    }
                    thread::sleep(Duration::from_millis(50));
                    continue;
                }
            }
            let stream = self.stream.as_mut().expect("connected above");
            match write_frame(stream, &frame) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // Connection died (most likely the node restarting):
                    // drop it and redial; the backlog replay on reconnect
                    // re-offers this frame too.
                    self.stream = None;
                }
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "shutting down"));
            }
            thread::sleep(Duration::from_millis(50));
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "gateway could not reach its replica",
        ))
    }

    fn shutdown(&mut self) {
        if let Some(s) = &self.stream {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in self.drainers.drain(..) {
            let _ = t.join();
        }
    }
}

/// A running client service: acceptor + per-connection handlers + the
/// batcher/gateway pipeline. Shuts down (and joins its threads) on drop.
#[derive(Debug)]
pub struct RsmService {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    conn_streams: Arc<Mutex<Vec<TcpStream>>>,
}

impl RsmService {
    /// Boots the service on `listener`: client frames in, [`RsmMsg::Submit`]
    /// injections out through `gateway`, completions observed via `view`.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn spawn(
        listener: TcpListener,
        gateway: GatewayConfig,
        view: LogView,
        opts: ServiceOptions,
        registry: &Registry,
    ) -> io::Result<RsmService> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = ServiceMetrics::new(registry, gateway.me);
        let conn_streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();

        // Admission queue: bounded handoff from connection handlers to
        // the batcher. `try_send` failure is the shed signal.
        let (admit_tx, admit_rx) = mpsc::sync_channel::<Command>(opts.queue_depth);

        // Batcher: drains the queue, packs Submit frames, drives the
        // gateway.
        {
            let shutdown_flag = Arc::clone(&shutdown);
            let queue_gauge = metrics.queue.clone();
            let mut gw = Gateway::new(gateway, Arc::clone(&shutdown));
            let max = opts.submit_batch.max(1);
            let handle = thread::Builder::new()
                .name(format!("rsm-batcher-p{}", gateway.me.index()))
                .spawn(move || {
                    loop {
                        // Block for the first command, then sweep
                        // whatever else queued behind it into one frame.
                        let first = match admit_rx.recv_timeout(Duration::from_millis(100)) {
                            Ok(c) => c,
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                if shutdown_flag.load(Ordering::Relaxed) {
                                    break;
                                }
                                continue;
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        };
                        let mut batch = vec![first];
                        while batch.len() < max {
                            match admit_rx.try_recv() {
                                Ok(c) => batch.push(c),
                                Err(_) => break,
                            }
                        }
                        queue_gauge.sub(batch.len() as u64);
                        if gw.submit(batch).is_err() && shutdown_flag.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    gw.shutdown();
                })
                .expect("spawning the rsm batcher thread");
            threads.push(handle);
        }

        // Acceptor: one handler thread per client connection.
        {
            let shutdown_flag = Arc::clone(&shutdown);
            let streams = Arc::clone(&conn_streams);
            let me = gateway.me;
            let handle = thread::Builder::new()
                .name(format!("rsm-accept-p{}", me.index()))
                .spawn(move || {
                    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                    while !shutdown_flag.load(Ordering::Relaxed) {
                        handlers.retain(|h| !h.is_finished());
                        match listener.accept() {
                            Ok((stream, _)) => {
                                metrics.connections.inc();
                                let _ = stream.set_nodelay(true);
                                if stream.set_nonblocking(false).is_err() {
                                    continue;
                                }
                                if let Ok(clone) = stream.try_clone() {
                                    streams
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .push(clone);
                                }
                                let conn = ClientConn {
                                    stream,
                                    view: view.clone(),
                                    admit: admit_tx.clone(),
                                    metrics: metrics.clone(),
                                    opts,
                                    shutdown: Arc::clone(&shutdown_flag),
                                };
                                if let Ok(h) = thread::Builder::new()
                                    .name(format!("rsm-client-p{}", me.index()))
                                    .spawn(move || conn.run())
                                {
                                    handlers.push(h);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    drop(admit_tx);
                    for h in handlers {
                        let _ = h.join();
                    }
                })
                .expect("spawning the rsm acceptor thread");
            threads.push(handle);
        }

        Ok(RsmService {
            local_addr,
            shutdown,
            threads,
            conn_streams,
        })
    }

    /// The address clients dial.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the acceptor, unblocks handlers, and joins all threads.
    /// Safe to call more than once.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for s in self
            .conn_streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RsmService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client connection: request frames in, response frames out, one at
/// a time (pipelining across requests belongs to multiple connections).
struct ClientConn {
    stream: TcpStream,
    view: LogView,
    admit: mpsc::SyncSender<Command>,
    metrics: ServiceMetrics,
    opts: ServiceOptions,
    shutdown: Arc<AtomicBool>,
}

impl ClientConn {
    fn run(mut self) {
        while !self.shutdown.load(Ordering::Relaxed) {
            let req: ClientReq = match read_client_msg(&mut self.stream) {
                Ok(r) => r,
                Err(_) => return, // EOF, reset, or garbage: hang up
            };
            if !req.validate(usize::MAX) {
                return; // hostile contents: hang up rather than serve
            }
            let started = Instant::now();
            let (resp, histogram) = match req {
                ClientReq::Propose {
                    client,
                    request,
                    op,
                } => (self.propose(client, request, op), &self.metrics.op_us),
                ClientReq::Read { key } => (
                    ClientResp::Value {
                        value: self.view.with(|a| a.kv.get(&key).cloned()),
                    },
                    &self.metrics.read_us,
                ),
                ClientReq::Info => (
                    self.view.with(|a| ClientResp::Info {
                        applied: a.next_slot(),
                        digest: a.digest(),
                        applied_commands: a.applied_commands,
                        deduped_commands: a.deduped_commands,
                        kv_len: a.kv.len() as u64,
                        pending: self.metrics.queue.get(),
                    }),
                    &self.metrics.read_us,
                ),
            };
            histogram.record_us(started.elapsed());
            if write_client_msg(&mut self.stream, &resp).is_err() {
                return;
            }
        }
    }

    fn propose(&self, client: u64, request: u64, op: Op) -> ClientResp {
        // Idempotent fast path: an already-committed request id answers
        // immediately (the retry path after a timeout or failover).
        if self.view.with(|a| a.is_complete(client, request)) {
            return ClientResp::Committed {
                client,
                request,
                log_len: self.view.with(super::state::AppliedState::next_slot),
            };
        }
        let cmd = Command {
            client,
            request,
            op,
        };
        match self.admit.try_send(cmd) {
            Ok(()) => self.metrics.queue.add(1),
            Err(mpsc::TrySendError::Full(_)) => {
                self.metrics.busy.inc();
                return ClientResp::Busy;
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return ClientResp::Busy,
        }
        if self
            .view
            .wait_complete(client, request, self.opts.propose_timeout)
        {
            ClientResp::Committed {
                client,
                request,
                log_len: self.view.with(super::state::AppliedState::next_slot),
            }
        } else {
            self.metrics.timeouts.inc();
            ClientResp::Timeout
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_protocol_round_trips() {
        let reqs = [
            ClientReq::Propose {
                client: 3,
                request: 9,
                op: Op::Put {
                    key: b"k".to_vec(),
                    value: b"v".to_vec(),
                },
            },
            ClientReq::Read { key: b"k".to_vec() },
            ClientReq::Info,
        ];
        for r in reqs {
            assert_eq!(ClientReq::from_bytes(&r.to_bytes()), Ok(r));
        }
        let resps = [
            ClientResp::Committed {
                client: 3,
                request: 9,
                log_len: 4,
            },
            ClientResp::Busy,
            ClientResp::Timeout,
            ClientResp::Value { value: None },
            ClientResp::Value {
                value: Some(b"v".to_vec()),
            },
            ClientResp::Info {
                applied: 5,
                digest: u64::MAX,
                applied_commands: 9,
                deduped_commands: 1,
                kv_len: 3,
                pending: 0,
            },
        ];
        for r in resps {
            assert_eq!(ClientResp::from_bytes(&r.to_bytes()), Ok(r));
        }
    }

    #[test]
    fn zero_request_id_rejected() {
        let req = ClientReq::Propose {
            client: 1,
            request: 0,
            op: Op::Noop,
        };
        assert!(!req.validate(4));
    }
}
