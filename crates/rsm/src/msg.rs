//! The replica-to-replica wire protocol: client injections, slot
//! announcements, and slot-tagged consensus traffic.

use bt_core::MultiMsg;
use simnet::{Wire, WireError, WireReader};

use crate::command::{Command, MAX_BATCH_WIRE};

/// One message of the multi-decree protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RsmMsg {
    /// Client gateway → its own replica: enqueue `commands` for
    /// announcement. Only ever accepted from the replica itself (the
    /// gateway injects it through the node's own listener so it is
    /// journaled, deduplicated, and replayed like any other delivery);
    /// a copy arriving from a remote peer is dropped.
    Submit {
        /// The commands to enqueue, in submission order.
        commands: Vec<Command>,
    },
    /// Slot leader → all: the batch proposed for `slot`. The batch
    /// travels beside consensus (which orders only the slot's *winner*),
    /// so every replica learns what to apply once the slot decides.
    Announce {
        /// The slot being announced.
        slot: u64,
        /// The proposed batch (possibly empty, for gap-fill no-ops).
        commands: Vec<Command>,
    },
    /// Slot-tagged Figure 2 traffic for `slot`'s consensus instance.
    Decree {
        /// The slot whose instance this message belongs to.
        slot: u64,
        /// The bit-tagged inner message.
        msg: MultiMsg,
    },
}

impl Wire for RsmMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RsmMsg::Submit { commands } => {
                out.push(0);
                commands.encode(out);
            }
            RsmMsg::Announce { slot, commands } => {
                out.push(1);
                slot.encode(out);
                commands.encode(out);
            }
            RsmMsg::Decree { slot, msg } => {
                out.push(2);
                slot.encode(out);
                msg.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(RsmMsg::Submit {
                commands: Vec::decode(r)?,
            }),
            1 => Ok(RsmMsg::Announce {
                slot: u64::decode(r)?,
                commands: Vec::decode(r)?,
            }),
            2 => Ok(RsmMsg::Decree {
                slot: u64::decode(r)?,
                msg: MultiMsg::decode(r)?,
            }),
            _ => Err(WireError::Invalid {
                what: "rsm message discriminant",
                offset,
            }),
        }
    }

    fn validate(&self, n: usize) -> bool {
        match self {
            RsmMsg::Submit { commands } | RsmMsg::Announce { commands, .. } => {
                commands.len() <= MAX_BATCH_WIRE && commands.iter().all(|c| c.validate(n))
            }
            RsmMsg::Decree { msg, .. } => msg.validate(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Op;
    use bt_core::MaliciousMsg;
    use simnet::{ProcessId, Value};

    fn cmd(client: u64, request: u64) -> Command {
        Command {
            client,
            request,
            op: Op::Put {
                key: vec![1, 2],
                value: vec![3],
            },
        }
    }

    #[test]
    fn round_trips() {
        let msgs = [
            RsmMsg::Submit {
                commands: vec![cmd(1, 1), cmd(2, 9)],
            },
            RsmMsg::Announce {
                slot: 17,
                commands: vec![cmd(1, 2)],
            },
            RsmMsg::Announce {
                slot: 0,
                commands: Vec::new(),
            },
            RsmMsg::Decree {
                slot: 3,
                msg: (1, MaliciousMsg::initial(ProcessId::new(2), Value::One, 0)),
            },
        ];
        for m in msgs {
            assert_eq!(RsmMsg::from_bytes(&m.to_bytes()), Ok(m));
        }
    }

    #[test]
    fn validate_guards_contents() {
        // A decree carrying an out-of-range process id is rejected.
        let bad = RsmMsg::Decree {
            slot: 0,
            msg: (0, MaliciousMsg::initial(ProcessId::new(9), Value::One, 0)),
        };
        assert!(!bad.validate(4));
        assert!(bad.validate(10));

        let fat = RsmMsg::Submit {
            commands: vec![cmd(1, 1); MAX_BATCH_WIRE + 1],
        };
        assert!(!fat.validate(4));
    }

    #[test]
    fn bad_discriminant_rejected() {
        assert!(RsmMsg::from_bytes(&[7]).is_err());
    }
}
