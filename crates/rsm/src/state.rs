//! The applied side of the log: committed entries, the KV state machine,
//! and the shared view handles read by services, tests, and tooling.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use simnet::Wire;

use crate::command::{Command, Op};

/// FNV-1a over `bytes`, seeded with `state` so digests chain.
#[must_use]
pub fn fnv1a64_chain(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// The FNV-1a offset basis — the digest of the empty log.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One committed log position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The slot index.
    pub slot: u64,
    /// The consensus winner for the slot (the slot leader's id, or an
    /// out-of-range word for a defensively no-op'd slot).
    pub winner: u64,
    /// The commands the slot carried, in announcement order. Empty for
    /// gap-fill and no-op slots.
    pub commands: Vec<Command>,
}

impl Wire for LogEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slot.encode(out);
        self.winner.encode(out);
        self.commands.encode(out);
    }

    fn decode(r: &mut simnet::WireReader<'_>) -> Result<Self, simnet::WireError> {
        Ok(LogEntry {
            slot: u64::decode(r)?,
            winner: u64::decode(r)?,
            commands: Vec::decode(r)?,
        })
    }

    fn validate(&self, n: usize) -> bool {
        self.commands.iter().all(|c| c.validate(n))
    }
}

/// The materialized state machine: the committed log prefix and the KV
/// map it folds into, plus the per-client exactly-once watermarks.
///
/// Everything here is a pure function of the committed entry sequence, so
/// two replicas whose [`AppliedState::digest`] match hold byte-identical
/// logs *and* identical KV maps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedState {
    /// Committed entries, in slot order, no gaps.
    pub log: Vec<LogEntry>,
    /// The KV map after applying every entry in `log`.
    pub kv: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Per-client highest applied request id (commands at or below their
    /// client's watermark were skipped as duplicates).
    pub watermarks: BTreeMap<u64, u64>,
    /// Chained FNV-1a digest over the wire encodings of `log`'s entries.
    pub digest: u64,
    /// Commands actually applied (duplicates excluded).
    pub applied_commands: u64,
    /// Commands skipped as duplicates of an already-applied request id.
    pub deduped_commands: u64,
}

impl AppliedState {
    /// The next slot to apply (== the number of committed entries).
    #[must_use]
    pub fn next_slot(&self) -> u64 {
        self.log.len() as u64
    }

    /// The chained digest, [`DIGEST_SEED`] for an empty log.
    #[must_use]
    pub fn digest(&self) -> u64 {
        if self.log.is_empty() {
            DIGEST_SEED
        } else {
            self.digest
        }
    }

    /// Whether `(client, request)` has already been applied (or skipped
    /// as a duplicate) — the completion predicate services wait on.
    #[must_use]
    pub fn is_complete(&self, client: u64, request: u64) -> bool {
        self.watermarks.get(&client).copied().unwrap_or(0) >= request
    }

    /// Appends one committed entry: applies its commands all-or-nothing
    /// in order (each either mutates the KV and advances its client's
    /// watermark, or is skipped as a duplicate), then folds the entry
    /// into the chained digest.
    ///
    /// # Panics
    ///
    /// Panics if `entry.slot` is not the next slot — gaps are a replica
    /// logic bug, never valid input.
    pub fn apply(&mut self, entry: LogEntry) {
        assert_eq!(entry.slot, self.next_slot(), "log entries apply in order");
        for cmd in &entry.commands {
            let watermark = self.watermarks.entry(cmd.client).or_insert(0);
            if cmd.request <= *watermark {
                self.deduped_commands += 1;
                continue;
            }
            *watermark = cmd.request;
            self.applied_commands += 1;
            match &cmd.op {
                Op::Put { key, value } => {
                    self.kv.insert(key.clone(), value.clone());
                }
                Op::Del { key } => {
                    self.kv.remove(key);
                }
                Op::Noop => {}
            }
        }
        let seed = self.digest();
        self.digest = fnv1a64_chain(seed, &entry.to_bytes());
        self.log.push(entry);
    }
}

/// A shared, waitable view of one replica's [`AppliedState`].
///
/// The replica mutates it under the mutex as slots commit and signals the
/// condvar; services block on [`LogView::wait_complete`] to turn a commit
/// into a client acknowledgement. Cloning shares the same state.
#[derive(Clone, Debug, Default)]
pub struct LogView {
    inner: Arc<(Mutex<AppliedState>, Condvar)>,
}

impl LogView {
    /// A fresh, empty view.
    #[must_use]
    pub fn new() -> Self {
        LogView::default()
    }

    /// Runs `f` on the current applied state.
    pub fn with<R>(&self, f: impl FnOnce(&AppliedState) -> R) -> R {
        f(&self.inner.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Runs `f` mutably and wakes every waiter. Only the owning replica
    /// should call this.
    pub fn update<R>(&self, f: impl FnOnce(&mut AppliedState) -> R) -> R {
        let r = f(&mut self.inner.0.lock().unwrap_or_else(PoisonError::into_inner));
        self.inner.1.notify_all();
        r
    }

    /// A snapshot clone of the applied state.
    #[must_use]
    pub fn snapshot(&self) -> AppliedState {
        self.with(Clone::clone)
    }

    /// Blocks until `(client, request)` completes or `timeout` elapses;
    /// returns whether it completed.
    #[must_use]
    pub fn wait_complete(&self, client: u64, request: u64, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.0.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.is_complete(client, request) {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (s, _timed_out) = self
                .inner
                .1
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(client: u64, request: u64, key: &[u8], value: &[u8]) -> Command {
        Command {
            client,
            request,
            op: Op::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        }
    }

    #[test]
    fn apply_folds_kv_and_digest() {
        let mut a = AppliedState::default();
        assert_eq!(a.digest(), DIGEST_SEED);
        a.apply(LogEntry {
            slot: 0,
            winner: 0,
            commands: vec![put(1, 1, b"x", b"1"), put(1, 2, b"y", b"2")],
        });
        a.apply(LogEntry {
            slot: 1,
            winner: 1,
            commands: vec![Command {
                client: 1,
                request: 3,
                op: Op::Del { key: b"x".to_vec() },
            }],
        });
        assert_eq!(a.kv.get(b"y".as_slice()), Some(&b"2".to_vec()));
        assert!(!a.kv.contains_key(b"x".as_slice()));
        assert_eq!(a.applied_commands, 3);
        assert_ne!(a.digest(), DIGEST_SEED);

        // Same entries ⇒ same digest; divergent entries ⇒ different digest.
        let mut b = AppliedState::default();
        b.apply(LogEntry {
            slot: 0,
            winner: 0,
            commands: vec![put(1, 1, b"x", b"1"), put(1, 2, b"y", b"2")],
        });
        assert_ne!(a.digest(), b.digest());
        b.apply(LogEntry {
            slot: 1,
            winner: 1,
            commands: vec![Command {
                client: 1,
                request: 3,
                op: Op::Del { key: b"x".to_vec() },
            }],
        });
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn duplicate_request_ids_apply_once() {
        let mut a = AppliedState::default();
        a.apply(LogEntry {
            slot: 0,
            winner: 0,
            commands: vec![put(5, 1, b"k", b"first")],
        });
        a.apply(LogEntry {
            slot: 1,
            winner: 1,
            commands: vec![put(5, 1, b"k", b"retry"), put(5, 2, b"k2", b"v2")],
        });
        assert_eq!(a.kv.get(b"k".as_slice()), Some(&b"first".to_vec()));
        assert_eq!(a.applied_commands, 2);
        assert_eq!(a.deduped_commands, 1);
        assert!(a.is_complete(5, 2));
        assert!(!a.is_complete(5, 3));
    }

    #[test]
    #[should_panic(expected = "log entries apply in order")]
    fn gaps_are_rejected() {
        let mut a = AppliedState::default();
        a.apply(LogEntry {
            slot: 1,
            winner: 0,
            commands: Vec::new(),
        });
    }

    #[test]
    fn view_wait_complete() {
        let view = LogView::new();
        let v2 = view.clone();
        let t =
            std::thread::spawn(move || v2.wait_complete(1, 1, std::time::Duration::from_secs(5)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        view.update(|a| {
            a.apply(LogEntry {
                slot: 0,
                winner: 0,
                commands: vec![put(1, 1, b"a", b"b")],
            });
        });
        assert!(t.join().unwrap());
        assert!(!view.wait_complete(1, 9, std::time::Duration::from_millis(10)));
    }
}
