//! Client commands: the unit of work the replicated log orders and the KV
//! state machine applies.

use simnet::{Wire, WireError, WireReader};

/// Largest key accepted on the wire. Oversized keys are a hostile-client
/// vector (the frame cap alone still allows a 1 MiB key), so validation
/// rejects them before they reach consensus.
pub const MAX_KEY: usize = 1024;

/// Largest value accepted on the wire.
pub const MAX_VALUE: usize = 64 * 1024;

/// Largest number of commands one batch (and hence one wire message) may
/// carry.
pub const MAX_BATCH_WIRE: usize = 4096;

/// One state-machine operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Bind `key` to `value`.
    Put {
        /// The key to write.
        key: Vec<u8>,
        /// The value to store.
        value: Vec<u8>,
    },
    /// Remove `key` if present.
    Del {
        /// The key to remove.
        key: Vec<u8>,
    },
    /// Do nothing (a liveness probe that still consumes a log position).
    Noop,
}

impl Wire for Op {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Op::Put { key, value } => {
                out.push(0);
                key.encode(out);
                value.encode(out);
            }
            Op::Del { key } => {
                out.push(1);
                key.encode(out);
            }
            Op::Noop => out.push(2),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let offset = r.offset();
        match r.byte()? {
            0 => Ok(Op::Put {
                key: Vec::decode(r)?,
                value: Vec::decode(r)?,
            }),
            1 => Ok(Op::Del {
                key: Vec::decode(r)?,
            }),
            2 => Ok(Op::Noop),
            _ => Err(WireError::Invalid {
                what: "op discriminant",
                offset,
            }),
        }
    }

    fn validate(&self, _n: usize) -> bool {
        match self {
            Op::Put { key, value } => key.len() <= MAX_KEY && value.len() <= MAX_VALUE,
            Op::Del { key } => key.len() <= MAX_KEY,
            Op::Noop => true,
        }
    }
}

/// One client command: an operation stamped with the issuing client's id
/// and a per-client monotonically increasing request id.
///
/// The `(client, request)` pair is the exactly-once key: the state machine
/// keeps a per-client watermark of the highest applied request id and
/// skips any command at or below it, so a client retrying through a
/// different replica (or after a reconnect) cannot double-apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Command {
    /// The issuing client's id (chosen by the client, unique per client).
    pub client: u64,
    /// The client's request sequence number, increasing from 1.
    pub request: u64,
    /// The operation to apply.
    pub op: Op,
}

impl Wire for Command {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.request.encode(out);
        self.op.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Command {
            client: u64::decode(r)?,
            request: u64::decode(r)?,
            op: Op::decode(r)?,
        })
    }

    fn validate(&self, n: usize) -> bool {
        self.op.validate(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_and_command_round_trip() {
        let ops = [
            Op::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            Op::Del { key: b"k".to_vec() },
            Op::Noop,
        ];
        for op in ops {
            let cmd = Command {
                client: 7,
                request: 1 << 40,
                op,
            };
            assert_eq!(Command::from_bytes(&cmd.to_bytes()), Ok(cmd));
        }
    }

    #[test]
    fn oversized_contents_fail_validation() {
        let fat = Op::Put {
            key: vec![0; MAX_KEY + 1],
            value: Vec::new(),
        };
        assert!(!fat.validate(4));
        let fat_value = Op::Put {
            key: Vec::new(),
            value: vec![0; MAX_VALUE + 1],
        };
        assert!(!fat_value.validate(4));
        assert!(Op::Noop.validate(4));
    }

    #[test]
    fn bad_discriminant_rejected() {
        assert!(Op::from_bytes(&[9]).is_err());
    }
}
