//! A loopback rsm cluster: `n` replicated-log nodes on 127.0.0.1, each
//! with its WAL, its client-facing service, and its metrics registry —
//! the harness behind the integration tests, the example, and `btload`.
//!
//! Every listener (peer-facing and client-facing) is bound before any
//! node boots and its clone is *retained by the harness*, so a killed
//! node's ports survive it: peers keep redialling the same address, and
//! [`RsmCluster::restart`] boots the replacement on the same sockets. A
//! restart recovers the replica from its WAL (snapshot + replay) before
//! the first frame is accepted, re-attaches the service to the recovered
//! [`LogView`], and resumes the gateway's frame numbering from the WAL's
//! sequence table — so re-injected client commands arrive as fresh
//! journaled deliveries, never as equivocations.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bt_core::Config;
use netstack::{spawn, FaultPlan, NodeConfig, NodeHandle, NodeStatus};
use obs::metrics::Registry;
use simnet::ProcessId;

use crate::replica::{Replica, RsmOptions};
use crate::service::{GatewayConfig, RsmService, ServiceOptions};
use crate::state::LogView;

/// Cluster shape and tuning.
#[derive(Clone, Debug)]
pub struct RsmClusterOptions {
    /// System size (the resilience is `k = ⌊(n−1)/3⌋`).
    pub n: usize,
    /// Base seed; node `i` runs with `seed + i`.
    pub seed: u64,
    /// Replica pipelining/batching knobs.
    pub replica: RsmOptions,
    /// Service admission/batching knobs.
    pub service: ServiceOptions,
    /// Directory holding one `rsm<i>.wal` per node. Created if absent.
    pub wal_dir: PathBuf,
    /// WAL checkpoint cadence (deliveries between snapshots; 0 replays
    /// from genesis).
    pub snapshot_every: u64,
}

impl RsmClusterOptions {
    /// Sensible defaults for an `n`-node cluster journaling under
    /// `wal_dir`.
    #[must_use]
    pub fn new(n: usize, wal_dir: PathBuf) -> Self {
        RsmClusterOptions {
            n,
            seed: 0xb70a_d001,
            replica: RsmOptions::default(),
            service: ServiceOptions::default(),
            wal_dir,
            snapshot_every: 4096,
        }
    }
}

/// One node's slot in the harness: the live handles plus everything
/// needed to rebuild them after a kill.
#[derive(Debug)]
struct NodeSlot {
    node: Option<NodeHandle>,
    service: Option<RsmService>,
    view: LogView,
    registry: Arc<Registry>,
    node_listener: TcpListener,
    client_listener: TcpListener,
    wal: PathBuf,
    incarnation: u32,
}

/// A running loopback cluster. Shuts everything down on drop.
#[derive(Debug)]
pub struct RsmCluster {
    opts: RsmClusterOptions,
    config: Config,
    peers: Vec<SocketAddr>,
    client_addrs: Vec<SocketAddr>,
    slots: Vec<NodeSlot>,
}

impl RsmCluster {
    /// Binds all listeners, creates the WAL directory, and boots every
    /// node and its service.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn/WAL failures.
    ///
    /// # Panics
    ///
    /// Panics if `opts.n` is 0.
    pub fn start(opts: RsmClusterOptions) -> io::Result<RsmCluster> {
        assert!(opts.n >= 1, "a cluster needs at least one node");
        let k = (opts.n - 1) / 3;
        let config = Config::malicious(opts.n, k)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        std::fs::create_dir_all(&opts.wal_dir)?;

        let mut node_listeners = Vec::with_capacity(opts.n);
        let mut client_listeners = Vec::with_capacity(opts.n);
        let mut peers = Vec::with_capacity(opts.n);
        let mut client_addrs = Vec::with_capacity(opts.n);
        for _ in 0..opts.n {
            let nl = TcpListener::bind("127.0.0.1:0")?;
            peers.push(nl.local_addr()?);
            node_listeners.push(nl);
            let cl = TcpListener::bind("127.0.0.1:0")?;
            client_addrs.push(cl.local_addr()?);
            client_listeners.push(cl);
        }

        let mut slots = Vec::with_capacity(opts.n);
        for (i, (nl, cl)) in node_listeners.into_iter().zip(client_listeners).enumerate() {
            slots.push(NodeSlot {
                node: None,
                service: None,
                view: LogView::new(),
                registry: Arc::new(Registry::new()),
                node_listener: nl,
                client_listener: cl,
                wal: opts.wal_dir.join(format!("rsm{i}.wal")),
                incarnation: 0,
            });
        }

        let mut cluster = RsmCluster {
            opts,
            config,
            peers,
            client_addrs,
            slots,
        };
        for i in 0..cluster.slots.len() {
            cluster.boot(i)?;
        }
        Ok(cluster)
    }

    /// Boots (or re-boots) node `i` on its retained listeners: replica
    /// first (recovering from the WAL if it has history), then the
    /// service, with the gateway resuming from the recovered sequence
    /// table.
    fn boot(&mut self, i: usize) -> io::Result<()> {
        let id = ProcessId::new(i);
        let slot = &mut self.slots[i];
        // The replica rebuilds the applied state deterministically during
        // WAL replay. The snapshot path resets the shared view itself, but
        // a from-genesis replay (no checkpoint yet) re-applies from slot 0
        // — which must land on an empty fold, not on the pre-kill state
        // still held by the retained view.
        slot.view
            .update(|a| *a = crate::state::AppliedState::default());
        let replica = Replica::new(self.config, id, self.opts.replica)
            .with_view(slot.view.clone())
            .with_metrics(&slot.registry);
        let cfg = NodeConfig {
            id,
            n: self.opts.n,
            seed: self.opts.seed.wrapping_add(i as u64),
            k: self.config.k(),
            fault: FaultPlan::default(),
            // A restart follows a kill whose WAL journaled at least the
            // boot record — an empty file then means the log was lost.
            expect_history: slot.incarnation > 0,
            wal: Some(slot.wal.clone()),
            snapshot_every: self.opts.snapshot_every,
            metrics: Some(Arc::clone(&slot.registry)),
        };
        slot.incarnation += 1;
        let node = spawn(
            cfg,
            slot.node_listener.try_clone()?,
            self.peers.clone(),
            Box::new(replica),
            None,
        )?;
        let gateway = GatewayConfig {
            me: id,
            node_addr: self.peers[i],
            initial_seq: node.next_expected_from(id),
        };
        let service = RsmService::spawn(
            slot.client_listener.try_clone()?,
            gateway,
            slot.view.clone(),
            self.opts.service,
            &slot.registry,
        )?;
        slot.node = Some(node);
        slot.service = Some(service);
        Ok(())
    }

    /// System size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.opts.n
    }

    /// The client-facing service address of node `i`.
    #[must_use]
    pub fn client_addr(&self, i: usize) -> SocketAddr {
        self.client_addrs[i]
    }

    /// Every node's client-facing service address.
    #[must_use]
    pub fn client_addrs(&self) -> &[SocketAddr] {
        &self.client_addrs
    }

    /// Node `i`'s applied-state view (live even while the node is down).
    #[must_use]
    pub fn view(&self, i: usize) -> LogView {
        self.slots[i].view.clone()
    }

    /// Node `i`'s metrics registry (shared across restarts).
    #[must_use]
    pub fn registry(&self, i: usize) -> Arc<Registry> {
        Arc::clone(&self.slots[i].registry)
    }

    /// Node `i`'s protocol status, if it is up.
    #[must_use]
    pub fn status(&self, i: usize) -> Option<NodeStatus> {
        self.slots[i].node.as_ref().map(NodeHandle::status)
    }

    /// Whether node `i` is currently up.
    #[must_use]
    pub fn is_up(&self, i: usize) -> bool {
        self.slots[i].node.is_some()
    }

    /// Kills node `i`: tears down its service and node threads abruptly
    /// (no protocol goodbye — peers see a dead connection, exactly as
    /// after a crash). The WAL keeps everything the node journaled; the
    /// listeners stay bound for the replacement.
    pub fn kill(&mut self, i: usize) {
        let slot = &mut self.slots[i];
        // Service first: its gateway would otherwise spin redialling the
        // dead node for the whole teardown.
        if let Some(mut s) = slot.service.take() {
            s.shutdown();
        }
        if let Some(mut n) = slot.node.take() {
            n.shutdown();
        }
    }

    /// Restarts a killed node `i` from its WAL on its original ports.
    ///
    /// # Errors
    ///
    /// Propagates spawn/WAL failures.
    pub fn restart(&mut self, i: usize) -> io::Result<()> {
        assert!(
            self.slots[i].node.is_none(),
            "kill node {i} before restarting it"
        );
        self.boot(i)
    }

    /// Polls until every *live* node reports the same applied length and
    /// digest twice in a row with no growth in between (the cluster went
    /// quiescent and identical), or `timeout` elapses. Returns the common
    /// `(applied, digest)` on success.
    #[must_use]
    pub fn await_identical(&self, timeout: Duration) -> Option<(u64, u64)> {
        let deadline = Instant::now() + timeout;
        let mut last: Option<Vec<(u64, u64)>> = None;
        loop {
            let now: Vec<(u64, u64)> = self
                .slots
                .iter()
                .filter(|s| s.node.is_some())
                .map(|s| s.view.with(|a| (a.next_slot(), a.digest())))
                .collect();
            let uniform = now.windows(2).all(|w| w[0] == w[1]);
            if uniform && !now.is_empty() && last.as_ref() == Some(&now) {
                return Some(now[0]);
            }
            if Instant::now() >= deadline {
                return None;
            }
            last = Some(now);
            std::thread::sleep(Duration::from_millis(30));
        }
    }

    /// Shuts every node and service down.
    pub fn shutdown(&mut self) {
        for i in 0..self.slots.len() {
            self.kill(i);
        }
    }
}

impl Drop for RsmCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
