//! The multi-decree replica: a [`Process`] that composes slot-indexed
//! [`MultiValued`] consensus instances into a gap-free replicated log.
//!
//! # Design
//!
//! * **Rotating leadership.** Slot `s` belongs to process `s mod n`. Every
//!   correct replica inputs the *leader's id* to slot `s`'s consensus
//!   instance, so unanimity validity (Figure 2) forces the decided winner
//!   to be the leader whenever the correct replicas participate — the
//!   decision orders *who speaks at slot `s`*, and the leader's
//!   [`RsmMsg::Announce`] carries *what it says* (the command batch).
//!   A decided word that is not the leader's id (impossible without a
//!   protocol violation, but decoded bytes are adversary-controlled) is
//!   applied as a deterministic no-op, preserving agreement.
//! * **Batching.** An announcement drains up to `max_batch` pending
//!   commands into one slot, so one consensus round orders many commands.
//! * **Pipelining.** Up to `window` slots run concurrently: a leader may
//!   announce slot `s+1` before slot `s` decides. Commits still apply in
//!   slot order (the apply loop never skips), so the state machine sees a
//!   gap-free prefix. Messages for slots beyond the window are deferred
//!   and replayed once the window slides — the transport's reliable
//!   in-order delivery is never forfeited.
//! * **Message-driven gap-fill.** There are no timers: on seeing traffic
//!   for slot `s`, a replica first announces every one of its own slots
//!   below `s` it has not yet announced (with whatever commands are
//!   pending, else an empty no-op batch). An idle system is therefore
//!   fully quiescent, while under load every slot below an announced one
//!   is eventually filled and the apply loop never stalls behind an idle
//!   leader.
//! * **Retired instances stay decidable for laggards.** Instances run
//!   with [`Termination::WildcardExit`] (§3.3): a deciding instance
//!   broadcasts its wildcard exit messages before leaving, and the
//!   transport retransmits everything unacknowledged, so a replica that
//!   fell behind (or recovered from its WAL) can finish a slot from the
//!   recorded message history alone even after its peers dropped the
//!   instance.
//!
//! Everything the replica does is a deterministic function of the
//! delivered message sequence (client commands arrive as journaled
//! [`RsmMsg::Submit`] deliveries), which is exactly the property the
//! netstack WAL needs to replay a crashed replica back to byte-identical
//! state without equivocation.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

use bt_core::{Config, MultiMsg, MultiValued, Termination};
use obs::metrics::{Counter, Gauge, Histogram, Registry};
use simnet::{Ctx, Envelope, Process, ProcessId, Value, Wire, WireReader};

use crate::command::Command;
use crate::msg::RsmMsg;
use crate::state::{LogEntry, LogView};

/// The process id that leads (announces the batch for) slot `slot` in a
/// system of `n` processes.
#[must_use]
pub fn leader(slot: u64, n: usize) -> ProcessId {
    ProcessId::new((slot % n as u64) as usize)
}

/// Bits needed to carry a process id of a system of `n` processes through
/// the bitwise consensus reduction.
#[must_use]
pub fn word_width(n: usize) -> u8 {
    let bits = 64 - (n as u64 - 1).leading_zeros();
    bits.max(1) as u8
}

/// Tuning knobs for pipelining and batching.
#[derive(Clone, Copy, Debug)]
pub struct RsmOptions {
    /// Maximum undecided slots in flight (≥ 1). Messages for slots at or
    /// beyond `applied + window` are deferred until the window slides.
    pub window: u64,
    /// Maximum commands one announcement packs into a slot (≥ 1).
    pub max_batch: usize,
}

impl Default for RsmOptions {
    fn default() -> Self {
        RsmOptions {
            window: 8,
            max_batch: 64,
        }
    }
}

/// Replica-side telemetry, labelled `{node}`.
#[derive(Clone, Debug)]
struct RsmMetrics {
    /// Slots committed and applied (no-op slots included).
    slots_committed: Counter,
    /// Commands applied to the KV state machine.
    commands_applied: Counter,
    /// Commands skipped as duplicates at apply time.
    commands_deduped: Counter,
    /// Slots applied as deterministic no-ops (gap-fill announcements
    /// count as ordinary empty batches, not no-ops).
    noop_slots: Counter,
    /// Commands per applied slot.
    batch_commands: Histogram,
    /// Open-to-decide latency per locally observed slot (microseconds).
    commit_latency_us: Histogram,
    /// Consensus instances currently open.
    pipeline_open: Gauge,
    /// Commands accepted but not yet announced.
    pending_queue: Gauge,
    /// Messages parked for slots beyond the pipeline window.
    deferred_msgs: Gauge,
    /// Submit messages refused because they did not come from this
    /// replica's own gateway.
    foreign_submits: Counter,
    /// Messages for already-applied slots (stragglers), dropped.
    late_messages: Counter,
}

impl RsmMetrics {
    fn new(registry: &Registry, me: ProcessId) -> Self {
        let node = me.index().to_string();
        let labels: &[(&str, &str)] = &[("node", &node)];
        RsmMetrics {
            slots_committed: registry.counter(
                "rsm_slots_committed_total",
                "log slots committed and applied, no-op slots included",
                labels,
            ),
            commands_applied: registry.counter(
                "rsm_commands_applied_total",
                "client commands applied to the state machine",
                labels,
            ),
            commands_deduped: registry.counter(
                "rsm_commands_deduped_total",
                "client commands skipped as duplicate request ids",
                labels,
            ),
            noop_slots: registry.counter(
                "rsm_noop_slots_total",
                "slots applied as defensive no-ops (winner was not the leader)",
                labels,
            ),
            batch_commands: registry.histogram(
                "rsm_batch_commands",
                "commands per applied slot",
                labels,
            ),
            commit_latency_us: registry.histogram(
                "rsm_commit_latency_us",
                "slot open-to-decide latency (microseconds)",
                labels,
            ),
            pipeline_open: registry.gauge(
                "rsm_pipeline_open",
                "consensus instances currently open",
                labels,
            ),
            pending_queue: registry.gauge(
                "rsm_pending_queue",
                "commands accepted but not yet announced",
                labels,
            ),
            deferred_msgs: registry.gauge(
                "rsm_deferred_msgs",
                "messages parked for slots beyond the pipeline window",
                labels,
            ),
            foreign_submits: registry.counter(
                "rsm_foreign_submits_total",
                "Submit messages dropped for arriving from a remote peer",
                labels,
            ),
            late_messages: registry.counter(
                "rsm_late_messages_total",
                "messages for already-applied slots, dropped",
                labels,
            ),
        }
    }
}

/// One replica of the multi-decree log. See the module docs for the
/// protocol; construct with [`Replica::new`] and the builder methods,
/// then drive it under `simnet` or hand it to `netstack::spawn`.
#[derive(Debug)]
pub struct Replica {
    config: Config,
    me: ProcessId,
    opts: RsmOptions,
    width: u8,
    /// Commands injected at `on_start` (deterministic workloads for
    /// simulator runs and fuzzing; empty for networked services).
    preload: Vec<Command>,
    /// Accepted commands not yet packed into an announcement.
    pending: VecDeque<Command>,
    /// My lowest led slot not yet announced (always ≡ me mod n).
    announce_floor: u64,
    /// The next slot to apply; everything below is in the log.
    applied: u64,
    /// Open consensus instances, keyed by slot.
    instances: BTreeMap<u64, MultiValued>,
    /// Announced batches awaiting application, keyed by slot.
    batches: BTreeMap<u64, Vec<Command>>,
    /// Decided-but-not-yet-applied slot winners.
    decided: BTreeMap<u64, u64>,
    /// Messages for slots beyond the window, replayed when it slides.
    deferred: BTreeMap<u64, Vec<(ProcessId, RsmMsg)>>,
    deferred_len: u64,
    view: LogView,
    metrics: Option<RsmMetrics>,
    /// Wall-clock instance-open times for live commit-latency samples.
    /// Never part of snapshots and never consulted for protocol
    /// decisions, so replayed runs stay byte-identical.
    opened_at: HashMap<u64, Instant>,
}

impl Replica {
    /// Creates a replica for process `me` of the Figure 2 system in
    /// `config`, with a fresh (unshared) log view.
    #[must_use]
    pub fn new(config: Config, me: ProcessId, opts: RsmOptions) -> Self {
        assert!(opts.window >= 1, "window must be at least 1");
        assert!(opts.max_batch >= 1, "max_batch must be at least 1");
        assert!(me.index() < config.n(), "replica id within the system");
        Replica {
            config,
            me,
            opts,
            width: word_width(config.n()),
            preload: Vec::new(),
            pending: VecDeque::new(),
            announce_floor: me.index() as u64,
            applied: 0,
            instances: BTreeMap::new(),
            batches: BTreeMap::new(),
            decided: BTreeMap::new(),
            deferred: BTreeMap::new(),
            deferred_len: 0,
            view: LogView::new(),
            metrics: None,
            opened_at: HashMap::new(),
        }
    }

    /// Shares `view` as this replica's applied-state sink (services hold
    /// the other clone and block on it for completions).
    #[must_use]
    pub fn with_view(mut self, view: LogView) -> Self {
        self.view = view;
        self
    }

    /// Registers this replica's telemetry in `registry`.
    #[must_use]
    pub fn with_metrics(mut self, registry: &Registry) -> Self {
        self.metrics = Some(RsmMetrics::new(registry, self.me));
        self
    }

    /// Seeds `commands` into the pending queue at `on_start` — the
    /// deterministic workload hook for simulator runs and fuzzing, where
    /// no gateway exists to inject [`RsmMsg::Submit`] deliveries.
    #[must_use]
    pub fn with_preload(mut self, commands: Vec<Command>) -> Self {
        self.preload = commands;
        self
    }

    /// A handle onto this replica's applied state.
    #[must_use]
    pub fn view(&self) -> LogView {
        self.view.clone()
    }

    /// The next slot to apply (the committed, applied prefix length).
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Currently open consensus instances (the live pipeline depth).
    #[must_use]
    pub fn open_instances(&self) -> usize {
        self.instances.len()
    }

    fn n(&self) -> usize {
        self.config.n()
    }

    /// Whether `slot` may have an open instance right now.
    fn in_window(&self, slot: u64) -> bool {
        slot < self.applied + self.opts.window
    }

    /// Runs `f` on `slot`'s instance inside a re-tagging context: the
    /// sends the inner Figure 2 instance performs leave re-wrapped as
    /// [`RsmMsg::Decree`]s for `slot`.
    fn with_slot(
        &mut self,
        slot: u64,
        ctx: &mut Ctx<'_, RsmMsg>,
        f: impl FnOnce(&mut MultiValued, &mut Ctx<'_, MultiMsg>),
    ) {
        let mut inner_out: Vec<(ProcessId, MultiMsg)> = Vec::new();
        {
            let Some(inst) = self.instances.get_mut(&slot) else {
                return;
            };
            let mut inner_ctx = Ctx::new(ctx.me(), ctx.n(), ctx.step(), &mut inner_out, ctx.rng());
            f(inst, &mut inner_ctx);
        }
        for (to, msg) in inner_out {
            ctx.send(to, RsmMsg::Decree { slot, msg });
        }
    }

    /// Opens `slot`'s consensus instance (idempotent; a no-op outside the
    /// window — the slot's announcement re-arrives through the deferred
    /// buffer once the window slides, and opens it then). Every correct
    /// replica inputs the slot leader's id, so unanimity validity pins
    /// the decision to the leader.
    fn open_slot(&mut self, slot: u64, ctx: &mut Ctx<'_, RsmMsg>) {
        if self.instances.contains_key(&slot) || slot < self.applied || !self.in_window(slot) {
            return;
        }
        let input = leader(slot, self.n()).index() as u64;
        let inst = MultiValued::with_termination(
            self.config,
            self.width,
            input,
            Termination::WildcardExit,
        );
        self.instances.insert(slot, inst);
        if ctx.live() {
            if let Some(m) = &self.metrics {
                if m.commit_latency_us.enabled() {
                    self.opened_at.insert(slot, Instant::now());
                }
            }
        }
        self.with_slot(slot, ctx, |inst, c| inst.on_start(c));
        self.note_decision(slot, ctx);
    }

    /// Announces my slot `announce_floor`: drains up to `max_batch`
    /// pending commands into a batch (possibly empty, for gap-fill),
    /// broadcasts it, and opens the instance if the window allows. An
    /// announcement *beyond* the window is legal (and necessary: a
    /// leader whose next led slot lies past the window is exactly what
    /// prompts the leaders of the lower slots to gap-fill them); its
    /// instance opens when its self-broadcast drains from the deferred
    /// buffer.
    fn announce_next(&mut self, ctx: &mut Ctx<'_, RsmMsg>) {
        let slot = self.announce_floor;
        debug_assert_eq!(leader(slot, self.n()), self.me);
        self.announce_floor += self.n() as u64;
        let take = self.pending.len().min(self.opts.max_batch);
        let batch: Vec<Command> = self.pending.drain(..take).collect();
        self.batches.insert(slot, batch.clone());
        ctx.broadcast(RsmMsg::Announce {
            slot,
            commands: batch,
        });
        self.open_slot(slot, ctx);
    }

    /// How far past the applied prefix this replica may announce. The
    /// overhang must cover a full leader stride (`n` slots) on top of the
    /// window: a leader's consecutive led slots are `n` apart, so any
    /// tighter bound can leave its *next* led slot permanently
    /// unannounceable once every other leader has gone idle — the
    /// multi-slot fuzzer found exactly that tail stall at `window = 1`,
    /// `n = 7` (the final short batch never shipped). `window + n` keeps
    /// the next stride reachable while still bounding how many slots a
    /// hostile peer can make a correct replica announce.
    fn announce_horizon(&self) -> u64 {
        self.applied + self.opts.window + self.n() as u64
    }

    /// Gap-fill: announces every led slot of mine below `slot` that is
    /// still unannounced, so the apply loop can never stall behind me.
    /// Capped at the announce horizon — the same overhang bound
    /// spontaneous announcements obey — so a hostile `slot` cannot make
    /// a correct replica announce unboundedly.
    fn announce_up_to(&mut self, slot: u64, ctx: &mut Ctx<'_, RsmMsg>) {
        let target = slot.min(self.announce_horizon());
        while self.announce_floor < target {
            self.announce_next(ctx);
        }
    }

    /// Records `slot`'s decision once its instance completes.
    fn note_decision(&mut self, slot: u64, ctx: &mut Ctx<'_, RsmMsg>) {
        let Some(word) = self
            .instances
            .get(&slot)
            .and_then(MultiValued::decided_word)
        else {
            return;
        };
        if self.decided.contains_key(&slot) {
            return;
        }
        self.decided.insert(slot, word);
        if ctx.live() {
            if let (Some(m), Some(t0)) = (&self.metrics, self.opened_at.remove(&slot)) {
                m.commit_latency_us.record_us(t0.elapsed());
            }
        }
    }

    /// Applies every decided slot at the head of the log, slides the
    /// window, replays newly in-window deferred messages (via `work`),
    /// and keeps the pipeline fed from the pending queue.
    fn progress(&mut self, ctx: &mut Ctx<'_, RsmMsg>, work: &mut VecDeque<(ProcessId, RsmMsg)>) {
        loop {
            let slot = self.applied;
            let Some(&word) = self.decided.get(&slot) else {
                break;
            };
            let lead = leader(slot, self.n());
            let entry = if word == lead.index() as u64 {
                match self.batches.get(&slot) {
                    Some(batch) => LogEntry {
                        slot,
                        winner: word,
                        commands: batch.clone(),
                    },
                    // Decided before the leader's announcement reached us:
                    // the batch is on its way (reliable channel), wait.
                    None => break,
                }
            } else {
                if let Some(m) = &self.metrics {
                    m.noop_slots.inc();
                }
                LogEntry {
                    slot,
                    winner: word,
                    commands: Vec::new(),
                }
            };
            if let Some(m) = &self.metrics {
                m.slots_committed.inc();
                m.batch_commands.record(entry.commands.len() as u64);
            }
            let (applied_delta, deduped_delta) = self.view.update(|a| {
                let before = (a.applied_commands, a.deduped_commands);
                a.apply(entry);
                (a.applied_commands - before.0, a.deduped_commands - before.1)
            });
            if let Some(m) = &self.metrics {
                m.commands_applied.add(applied_delta);
                m.commands_deduped.add(deduped_delta);
            }
            self.decided.remove(&slot);
            self.batches.remove(&slot);
            self.instances.remove(&slot);
            self.opened_at.remove(&slot);
            self.applied += 1;

            // The window slid: park-released messages re-enter the
            // worklist in slot order, ahead of nothing they depend on
            // (their slots are now processable immediately).
            let horizon = self.applied + self.opts.window;
            while let Some((&s, _)) = self.deferred.iter().next() {
                if s >= horizon {
                    break;
                }
                let msgs = self.deferred.remove(&s).unwrap_or_default();
                self.deferred_len -= msgs.len() as u64;
                work.extend(msgs);
            }
        }
        // Parked messages are *standing* traffic: receipt-time gap-fill is
        // capped by the then-current horizon, so a high-slot announcement
        // that arrived early (LIFO schedules do this) would otherwise
        // never be gap-filled toward again and the slots below it stay
        // empty forever — the multi-slot fuzzer caught exactly that stall.
        // Re-aiming at the lowest deferred slot on every window slide
        // keeps the chain reaction going until the slot opens.
        if let Some((&lowest, _)) = self.deferred.iter().next() {
            self.announce_up_to(lowest, ctx);
        }
        // Feed the pipeline: announce as many of my slots as pending
        // commands allow, up to the announce horizon. The overhang keeps
        // a loaded-but-unlucky leader (whose led slots all lie past the
        // window) from deadlocking the system: its out-of-window
        // announcement is the traffic that makes the lower slots' leaders
        // fill them.
        while !self.pending.is_empty() && self.announce_floor < self.announce_horizon() {
            self.announce_next(ctx);
        }
    }

    fn refresh_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.pipeline_open.set(self.instances.len() as u64);
            m.pending_queue.set(self.pending.len() as u64);
            m.deferred_msgs.set(self.deferred_len);
        }
    }

    fn defer(&mut self, slot: u64, from: ProcessId, msg: RsmMsg) {
        self.deferred.entry(slot).or_default().push((from, msg));
        self.deferred_len += 1;
    }

    fn handle(
        &mut self,
        from: ProcessId,
        msg: RsmMsg,
        ctx: &mut Ctx<'_, RsmMsg>,
        work: &mut VecDeque<(ProcessId, RsmMsg)>,
    ) {
        match msg {
            RsmMsg::Submit { commands } => {
                // Only this replica's own gateway may feed it commands
                // (they arrive as journaled self-frames); a Submit from a
                // remote peer is a protocol violation.
                if from != self.me {
                    if let Some(m) = &self.metrics {
                        m.foreign_submits.inc();
                    }
                    return;
                }
                let view = &self.view;
                let fresh = view.with(|a| {
                    commands
                        .into_iter()
                        .filter(|c| !a.is_complete(c.client, c.request))
                        .collect::<Vec<_>>()
                });
                self.pending.extend(fresh);
            }
            RsmMsg::Announce { slot, commands } => {
                if slot < self.applied {
                    if let Some(m) = &self.metrics {
                        m.late_messages.inc();
                    }
                    return;
                }
                if from != leader(slot, self.n()) {
                    return; // only the leader speaks for its slot
                }
                // Gap-fill *before* the window check: traffic for a slot
                // past the window is precisely the signal that the lower
                // slots (some of them mine) need filling so the window
                // can slide far enough to open it.
                self.announce_up_to(slot, ctx);
                if !self.in_window(slot) {
                    self.defer(slot, from, RsmMsg::Announce { slot, commands });
                    return;
                }
                self.batches.entry(slot).or_insert(commands);
                self.open_slot(slot, ctx);
            }
            RsmMsg::Decree { slot, msg } => {
                if slot < self.applied {
                    if let Some(m) = &self.metrics {
                        m.late_messages.inc();
                    }
                    return;
                }
                self.announce_up_to(slot, ctx);
                if !self.in_window(slot) {
                    self.defer(slot, from, RsmMsg::Decree { slot, msg });
                    return;
                }
                self.open_slot(slot, ctx);
                self.with_slot(slot, ctx, |inst, c| {
                    inst.on_receive(Envelope::new(from, msg), c);
                });
                self.note_decision(slot, ctx);
            }
        }
        self.progress(ctx, work);
    }

    /// Canonical encoding of the applied log — the bytes behind the
    /// state-transfer hooks. Entries encode in slot order, so identical
    /// applied prefixes produce identical bytes on every replica.
    fn transfer_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.view.with(|a| a.log.clone()).encode(&mut out);
        out
    }
}

impl Process for Replica {
    type Msg = RsmMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, RsmMsg>) {
        let preload = std::mem::take(&mut self.preload);
        if preload.is_empty() {
            return; // quiescent until a gateway or peer speaks
        }
        self.pending.extend(preload);
        let mut work = VecDeque::new();
        self.progress(ctx, &mut work);
        debug_assert!(work.is_empty(), "nothing can be deferred before slot 0");
        self.refresh_gauges();
    }

    fn on_receive(&mut self, env: Envelope<RsmMsg>, ctx: &mut Ctx<'_, RsmMsg>) {
        let mut work = VecDeque::new();
        work.push_back((env.from, env.msg));
        while let Some((from, msg)) = work.pop_front() {
            self.handle(from, msg, ctx, &mut work);
        }
        self.refresh_gauges();
    }

    /// The one-shot decision facade does not apply to a long-lived log;
    /// always `None`. Read progress through [`Replica::view`].
    fn decision(&self) -> Option<Value> {
        None
    }

    /// The applied-prefix length — the natural progress counter for
    /// status displays built around phase numbers.
    fn phase(&self) -> u64 {
        self.applied
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut instances: Vec<(u64, Vec<u8>)> = Vec::with_capacity(self.instances.len());
        for (&slot, inst) in &self.instances {
            instances.push((slot, inst.snapshot()?));
        }
        let mut out = Vec::new();
        self.applied.encode(&mut out);
        self.announce_floor.encode(&mut out);
        self.view.with(|a| a.log.clone()).encode(&mut out);
        let pending: Vec<Command> = self.pending.iter().cloned().collect();
        pending.encode(&mut out);
        let decided: Vec<(u64, u64)> = self.decided.iter().map(|(&s, &w)| (s, w)).collect();
        decided.encode(&mut out);
        let batches: Vec<(u64, Vec<Command>)> =
            self.batches.iter().map(|(&s, b)| (s, b.clone())).collect();
        batches.encode(&mut out);
        instances.encode(&mut out);
        let deferred: Vec<(u64, Vec<(ProcessId, RsmMsg)>)> = self
            .deferred
            .iter()
            .map(|(&s, msgs)| (s, msgs.clone()))
            .collect();
        deferred.encode(&mut out);
        Some(out)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(applied) = u64::decode(&mut r) else {
            return false;
        };
        let Ok(announce_floor) = u64::decode(&mut r) else {
            return false;
        };
        let Ok(log) = Vec::<LogEntry>::decode(&mut r) else {
            return false;
        };
        let Ok(pending) = Vec::<Command>::decode(&mut r) else {
            return false;
        };
        let Ok(decided) = Vec::<(u64, u64)>::decode(&mut r) else {
            return false;
        };
        let Ok(batches) = Vec::<(u64, Vec<Command>)>::decode(&mut r) else {
            return false;
        };
        let Ok(instances) = Vec::<(u64, Vec<u8>)>::decode(&mut r) else {
            return false;
        };
        let Ok(deferred) = Vec::<(u64, Vec<(ProcessId, RsmMsg)>)>::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() || log.len() as u64 != applied {
            return false;
        }
        if announce_floor % self.n() as u64 != self.me.index() as u64 {
            return false;
        }
        // Rebuild the instances first — a failure must leave self intact.
        let mut restored = BTreeMap::new();
        for (slot, state) in instances {
            let input = leader(slot, self.n()).index() as u64;
            let mut inst = MultiValued::with_termination(
                self.config,
                self.width,
                input,
                Termination::WildcardExit,
            );
            if !inst.restore(&state) {
                return false;
            }
            restored.insert(slot, inst);
        }
        // Re-derive the applied state by folding the log; apply()'s
        // in-order assertion doubles as a structural check.
        if log.iter().enumerate().any(|(i, e)| e.slot != i as u64) {
            return false;
        }
        self.view.update(|a| {
            *a = crate::state::AppliedState::default();
            for entry in log {
                a.apply(entry);
            }
        });
        self.applied = applied;
        self.announce_floor = announce_floor;
        self.pending = pending.into();
        self.decided = decided.into_iter().collect();
        self.batches = batches.into_iter().collect();
        self.instances = restored;
        self.deferred_len = deferred.iter().map(|(_, m)| m.len() as u64).sum();
        self.deferred = deferred.into_iter().collect();
        self.preload.clear();
        self.opened_at.clear();
        self.refresh_gauges();
        true
    }

    /// The replicated portion of a replica's state is exactly the applied
    /// log: every correct replica holding the same prefix encodes the
    /// same bytes, unlike [`Process::snapshot`], whose bytes carry
    /// process-local state (announce floor, open instances, pending
    /// queue) that legitimately differs across replicas.
    fn transfer_digest(&self) -> u64 {
        netstack::fnv1a64(&self.transfer_bytes())
    }

    fn transfer_state(&self) -> Option<Vec<u8>> {
        Some(self.transfer_bytes())
    }

    /// Installs a quorum-confirmed applied log onto a fresh (amnesiac)
    /// replica. Everything process-local restarts from scratch: open
    /// instances, batches and queued commands are rebuilt by the live
    /// protocol, and the announce floor resumes at this replica's first
    /// owned slot at or past the adopted prefix — so the rejoiner can
    /// never re-announce a slot the quorum already filled.
    fn adopt_transfer(&mut self, bytes: &[u8]) -> bool {
        let mut r = WireReader::new(bytes);
        let Ok(log) = Vec::<LogEntry>::decode(&mut r) else {
            return false;
        };
        if r.finish().is_err() {
            return false;
        }
        if log.iter().enumerate().any(|(i, e)| e.slot != i as u64) {
            return false;
        }
        let applied = log.len() as u64;
        self.view.update(|a| {
            *a = crate::state::AppliedState::default();
            for entry in log {
                a.apply(entry);
            }
        });
        self.applied = applied;
        let n = self.n() as u64;
        let me = self.me.index() as u64;
        self.announce_floor = applied + ((me + n - applied % n) % n);
        self.pending.clear();
        self.decided.clear();
        self.batches.clear();
        self.instances.clear();
        self.deferred.clear();
        self.deferred_len = 0;
        self.preload.clear();
        self.opened_at.clear();
        self.refresh_gauges();
        true
    }
}
