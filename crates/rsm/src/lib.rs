//! # rsm — a replicated log service on Bracha-Toueg consensus
//!
//! The rest of the workspace decides *one value per run*; this crate
//! turns those one-shot protocols into a long-lived **replicated state
//! machine**: a slot-indexed log where each slot is an independent
//! [`bt_core::MultiValued`] consensus instance (the Figure 2 malicious
//! protocol, bitwise-composed), with pipelining (a bounded window of
//! undecided slots in flight), batching (many client commands per slot),
//! and an apply loop folding committed entries into a small KV store.
//!
//! The layers, bottom-up:
//!
//! * [`command`] — client [`Command`]s (`Put`/`Del`/`Noop`) with
//!   per-client request ids for exactly-once application;
//! * [`msg`] — the replica-to-replica wire protocol ([`RsmMsg`]);
//! * [`state`] — the applied side: [`LogEntry`], the [`AppliedState`]
//!   KV fold with chained digests, and the waitable [`LogView`];
//! * [`replica`] — the [`Replica`] state machine composing it all, a
//!   [`simnet::Process`] that runs unchanged under the simulator, the
//!   fuzzer, and the `netstack` TCP runtime;
//! * [`service`] — the client-facing TCP API (length-prefixed
//!   [`ClientReq`]/[`ClientResp`] frames, bounded admission queue,
//!   shed-with-`Busy`) and the gateway that injects accepted commands
//!   into the replica as journaled self-deliveries;
//! * [`cluster`] — a loopback harness ([`RsmCluster`]) that boots an
//!   n-node service with WALs and supervised restarts, for integration
//!   tests, the example, and `btload`.
//!
//! See `docs/RSM.md` for the architecture narrative, the client protocol
//! grammar, and the tuning knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod cluster;
pub mod command;
pub mod msg;
pub mod replica;
pub mod service;
pub mod state;

pub use client::RsmClient;
pub use cluster::{RsmCluster, RsmClusterOptions};
pub use command::{Command, Op, MAX_BATCH_WIRE, MAX_KEY, MAX_VALUE};
pub use msg::RsmMsg;
pub use replica::{leader, word_width, Replica, RsmOptions};
pub use service::{ClientReq, ClientResp, GatewayConfig, RsmService, ServiceOptions};
pub use state::{AppliedState, LogEntry, LogView};
